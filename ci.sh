#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the demo spec staying
# clean under qoslint. Mirrors what reviewers run locally.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check (advisory: seed code predates rustfmt.toml)"
cargo fmt --all -- --check || echo "    (formatting drift, not fatal)"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> metrics golden (per-layer metric names must stay stable)"
cargo test -q -p maqs --test metrics_golden

echo "==> chaos (scripted faults vs self-healing client, fixed seed)"
# Reproducible by default; override MAQS_CHAOS_SEED to explore other
# fault interleavings. The test's assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    cargo test -q -p maqs --test fault_injection chaos_script_heals_binding

echo "==> qoslint (committed specs must be clean, warnings denied)"
# Fixtures under crates/qoslint/tests/fixtures are intentionally broken
# inputs for the lint golden tests; every other committed spec must lint
# clean.
find . -name '*.qidl' -not -path './target/*' -not -path './.git/*' \
    -not -path './crates/qoslint/tests/fixtures/*' |
while read -r spec; do
    echo "    $spec"
    cargo run -q -p qoslint --release -- --deny-warnings "$spec"
done

echo "==> OK"
