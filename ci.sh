#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the demo spec staying
# clean under qoslint. Mirrors what reviewers run locally.
#
# Opt-in: MAQS_SANITIZE=1 adds the sanitizer lane (miri over the
# orb::sync wrappers, ThreadSanitizer over the hot-path stress test);
# each tool is skipped with a notice when the toolchain lacks it. The
# conccheck interleaving models always run — they need only stable rust.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check (advisory: seed code predates rustfmt.toml)"
cargo fmt --all -- --check || echo "    (formatting drift, not fatal)"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> forbid(unsafe_code) (every crate root must carry it)"
for root in crates/*/src/lib.rs; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        echo "    $root: missing #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done
echo "    $(ls -d crates/*/src/lib.rs | wc -l | tr -d ' ') crate roots checked"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> metrics golden (per-layer metric names must stay stable)"
cargo test -q -p maqs --test metrics_golden

echo "==> export golden (Prometheus exposition + Chrome trace schema)"
cargo test -q -p maqs --test export_golden

echo "==> introspection (remote metrics/flight/health/bindings over GIOP)"
cargo test -q -p maqs --test introspection

echo "==> chaos (scripted faults vs self-healing client, fixed seed)"
# Reproducible by default; override MAQS_CHAOS_SEED to explore other
# fault interleavings. The test's assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    cargo test -q -p maqs --test fault_injection chaos_script_heals_binding

echo "==> e11 hot-path smoke (--quick) + regression gate"
# Quick closed-loop sweep; writes BENCH_hotpath.json at the repo root.
cargo bench -q -p maqs-bench --bench e11_hotpath -- --quick
# Artifact must be well-formed JSON with all 12 sweep cases, and the
# null-call plain-path p50 must stay within 3x of the committed
# baseline (generous: CI boxes are noisy, a real regression is 10x).
python3 - <<'EOF'
import json, sys

cur = json.load(open("BENCH_hotpath.json"))
base = json.load(open("BENCH_hotpath.baseline.json"))
if len(cur["cases"]) != 12:
    sys.exit(f"BENCH_hotpath.json: expected 12 cases, got {len(cur['cases'])}")

def null_plain_p50(doc):
    for c in doc["cases"]:
        if c["payload"] == "null" and not c["qos"] and c["dispatch_threads"] == 1:
            return c["p50_us"]
    sys.exit("missing null/plain/1-thread case")

got, want = null_plain_p50(cur), null_plain_p50(base)
if got > want * 3:
    sys.exit(f"hot-path regression: null-call p50 {got:.1f}us vs baseline {want:.1f}us (>3x)")
print(f"    null-call p50 {got:.1f}us (baseline {want:.1f}us) -- ok")
EOF

echo "==> wire-transport conformance (netsim + TCP + UDS, loopback sockets)"
# Real sockets can hang; a wall-clock bound keeps the gate un-wedgeable.
timeout 120 cargo test -q -p orb --test wire_conformance

echo "==> wire chaos (fault matrix + failover + stalled reader, fixed seed)"
# Every scripted socket fault x every backend x both backpressure
# policies, plus the mid-load failover and garbage-frame cases. Seeded
# for reproducibility; the assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    timeout 180 cargo test -q -p orb --test wire_conformance fault_

echo "==> two-process smoke (tcp_server serves, maqs_top attaches over TCP)"
cargo build -q --release -p maqs --example tcp_server --example maqs_top
SMOKE_IOR="/tmp/maqs-ci-kv.$$.ior"
rm -f "$SMOKE_IOR"
timeout 90 target/release/examples/tcp_server --ior-file "$SMOKE_IOR" --ttl 60 &
SMOKE_SRV=$!
if timeout 60 target/release/examples/maqs_top --attach "@$SMOKE_IOR"; then
    echo "    two-process attach over loopback TCP -- ok"
else
    kill "$SMOKE_SRV" 2>/dev/null || true
    echo "    two-process smoke failed" >&2
    exit 1
fi
kill "$SMOKE_SRV" 2>/dev/null || true
wait "$SMOKE_SRV" 2>/dev/null || true
rm -f "$SMOKE_IOR"

echo "==> conccheck interleaving models (bounded-preemption exhaustive)"
# The checker's own self-tests, then the four ORB models: pending-table
# accounting, ReplySlot armed-guard (plus the seeded mutation that
# proves the model can fail), breaker probe races, flight-ring flush.
cargo test -q -p conccheck
cargo test -q -p orb --features loom-models --test loom_models

if [ "${MAQS_SANITIZE:-0}" = "1" ]; then
    echo "==> sanitizers (MAQS_SANITIZE=1)"
    # Miri: UB check over the lock-discipline wrappers. The rank checks
    # are pure safe Rust, but miri also validates the thread-local
    # held-stack bookkeeping under its aliasing model.
    if rustup component list --installed 2>/dev/null | grep -q '^miri'; then
        echo "    miri: orb::sync unit tests"
        cargo miri test -p orb --lib sync::
    else
        echo "    miri not installed; skipping (rustup component add miri)"
    fi
    # ThreadSanitizer needs -Z flags, i.e. a nightly toolchain.
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        echo "    tsan: hotpath_stress under ThreadSanitizer"
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            rustup run nightly cargo test -p maqs --test hotpath_stress \
            --target "$(rustc -vV | sed -n 's/^host: //p')" -Zbuild-std
    else
        echo "    nightly toolchain unavailable; skipping TSan lane"
    fi
else
    echo "==> sanitizers skipped (set MAQS_SANITIZE=1 to enable)"
fi

echo "==> qoslint (committed specs must be clean, warnings denied)"
# Fixtures under crates/qoslint/tests/fixtures are intentionally broken
# inputs for the lint golden tests; every other committed spec must lint
# clean.
find . -name '*.qidl' -not -path './target/*' -not -path './.git/*' \
    -not -path './crates/qoslint/tests/fixtures/*' |
while read -r spec; do
    echo "    $spec"
    cargo run -q -p qoslint --release -- --deny-warnings "$spec"
done

echo "==> OK"
