#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the demo spec staying
# clean under qoslint. Mirrors what reviewers run locally.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check (advisory: seed code predates rustfmt.toml)"
cargo fmt --all -- --check || echo "    (formatting drift, not fatal)"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> qoslint (demo spec must be clean, warnings denied)"
cargo run -q -p qoslint --release -- --deny-warnings crates/maqs/src/demo/ticker.qidl

echo "==> OK"
