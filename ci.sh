#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the demo spec staying
# clean under qoslint. Mirrors what reviewers run locally.
#
# Opt-in: MAQS_SANITIZE=1 adds the sanitizer lane (miri over the
# orb::sync wrappers, ThreadSanitizer over the hot-path stress test);
# each tool is skipped with a notice when the toolchain lacks it. The
# conccheck interleaving models always run — they need only stable rust.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check (advisory: seed code predates rustfmt.toml)"
cargo fmt --all -- --check || echo "    (formatting drift, not fatal)"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> forbid(unsafe_code) (every crate root must carry it)"
for root in crates/*/src/lib.rs; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$root"; then
        echo "    $root: missing #![forbid(unsafe_code)]" >&2
        exit 1
    fi
done
echo "    $(ls -d crates/*/src/lib.rs | wc -l | tr -d ' ') crate roots checked"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> metrics golden (per-layer metric names must stay stable)"
cargo test -q -p maqs --test metrics_golden

echo "==> export golden (Prometheus exposition + Chrome trace schema)"
cargo test -q -p maqs --test export_golden

echo "==> introspection (remote metrics/flight/health/bindings over GIOP)"
cargo test -q -p maqs --test introspection

echo "==> cluster telemetry (fleet scrape, histogram merge, SLO burn-rate alerts)"
# The 8-node scenario sleeps real milliseconds on the victim servant; a
# wall-clock bound keeps the lane un-wedgeable if a scrape ever hangs.
timeout 180 cargo test -q -p maqs --test cluster_telemetry

echo "==> chaos (scripted faults vs self-healing client, fixed seed)"
# Reproducible by default; override MAQS_CHAOS_SEED to explore other
# fault interleavings. The test's assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    cargo test -q -p maqs --test fault_injection chaos_script_heals_binding

echo "==> e11 hot-path smoke (--quick) + scaling gate"
# The committed BENCH_hotpath.json is the full-mode reference for the
# *current* workload (pipelined closed loop); preserve it before the
# quick run overwrites it. BENCH_hotpath.baseline.json stays in-tree as
# the historical seed artifact (serial closed loop, pre-sharding) and is
# not comparable latency-wise: a pipelined window queues ~32 calls, so
# per-call p50 follows Little's law, not the serial round-trip.
BENCH_REF="/tmp/maqs-bench-ref.$$.json"
cp BENCH_hotpath.json "$BENCH_REF"
cargo bench -q -p maqs-bench --bench e11_hotpath -- --quick
python3 - "$BENCH_REF" <<'EOF'
import json, sys

ref = json.load(open(sys.argv[1]))       # committed full-mode artifact
cur = json.load(open("BENCH_hotpath.json"))  # fresh --quick run
if len(cur["cases"]) != 12:
    sys.exit(f"BENCH_hotpath.json: expected 12 cases, got {len(cur['cases'])}")

def case(doc, qos, threads):
    for c in doc["cases"]:
        if c["payload"] == "null" and c["qos"] == qos and c["dispatch_threads"] == threads:
            return c
    sys.exit(f"missing null/qos={qos}/{threads}-thread case")

# 1. Committed artifact: null-call throughput must be monotone in
#    dispatch threads, for plain and QoS paths alike. Deterministic —
#    this fails when someone commits an artifact showing negative
#    scaling, which is the regression this PR exists to prevent.
for qos in (False, True):
    rps = [case(ref, qos, t)["throughput_rps"] for t in (1, 2, 4)]
    if not (rps[0] < rps[1] < rps[2]):
        sys.exit(f"committed artifact: null/qos={qos} rps {rps} not monotone in threads")
print(f"    committed artifact: null-call scaling monotone in {{1,2,4}} threads -- ok")

# 2. Fresh run: 4 dispatch threads must not fall below 1 thread on
#    null calls (5% tolerance: quick runs are short and CI boxes are
#    noisy; a genuine funnel regression shows 20%+).
one, four = case(cur, False, 1)["throughput_rps"], case(cur, False, 4)["throughput_rps"]
if four < one * 0.95:
    sys.exit(f"negative scaling: 4-thread null rps {four:.0f} < 1-thread {one:.0f}")
print(f"    fresh run: null-call 4-thread {four:.0f} rps vs 1-thread {one:.0f} -- ok")

# 3. Fresh p50 within 3x of the committed reference (same workload
#    semantics; generous because CI boxes are noisy, a real regression
#    is 10x).
got, want = case(cur, False, 1)["p50_us"], case(ref, False, 1)["p50_us"]
if got > want * 3:
    sys.exit(f"hot-path regression: null-call p50 {got:.1f}us vs committed {want:.1f}us (>3x)")
print(f"    null-call p50 {got:.1f}us (committed {want:.1f}us) -- ok")
EOF
rm -f "$BENCH_REF"

echo "==> wire-transport conformance (netsim + TCP + UDS, loopback sockets)"
# Real sockets can hang; a wall-clock bound keeps the gate un-wedgeable.
timeout 120 cargo test -q -p orb --test wire_conformance

echo "==> wire chaos (fault matrix + failover + stalled reader, fixed seed)"
# Every scripted socket fault x every backend x both backpressure
# policies, plus the mid-load failover and garbage-frame cases. Seeded
# for reproducibility; the assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    timeout 180 cargo test -q -p orb --test wire_conformance fault_

echo "==> two-process smoke (tcp_server serves, maqs_top attaches over TCP)"
cargo build -q --release -p maqs --example tcp_server --example maqs_top
SMOKE_IOR="/tmp/maqs-ci-kv.$$.ior"
rm -f "$SMOKE_IOR"
timeout 90 target/release/examples/tcp_server --ior-file "$SMOKE_IOR" --ttl 60 &
SMOKE_SRV=$!
if timeout 60 target/release/examples/maqs_top --attach "@$SMOKE_IOR"; then
    echo "    two-process attach over loopback TCP -- ok"
else
    kill "$SMOKE_SRV" 2>/dev/null || true
    echo "    two-process smoke failed" >&2
    exit 1
fi
kill "$SMOKE_SRV" 2>/dev/null || true
wait "$SMOKE_SRV" 2>/dev/null || true
rm -f "$SMOKE_IOR"

echo "==> conccheck interleaving models (bounded-preemption exhaustive)"
# The checker's own self-tests, then the five ORB models: pending-table
# accounting, ReplySlot armed-guard (plus the seeded mutation that
# proves the model can fail), breaker probe races, flight-ring flush,
# and the sharded dispatch-queue handoff (exactly-once, key-ordered).
cargo test -q -p conccheck
cargo test -q -p orb --features loom-models --test loom_models

if [ "${MAQS_SANITIZE:-0}" = "1" ]; then
    echo "==> sanitizers (MAQS_SANITIZE=1)"
    # Miri: UB check over the lock-discipline wrappers. The rank checks
    # are pure safe Rust, but miri also validates the thread-local
    # held-stack bookkeeping under its aliasing model.
    if rustup component list --installed 2>/dev/null | grep -q '^miri'; then
        echo "    miri: orb::sync unit tests"
        cargo miri test -p orb --lib sync::
    else
        echo "    miri not installed; skipping (rustup component add miri)"
    fi
    # ThreadSanitizer needs -Z flags, i.e. a nightly toolchain.
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        echo "    tsan: hotpath_stress under ThreadSanitizer"
        RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            rustup run nightly cargo test -p maqs --test hotpath_stress \
            --target "$(rustc -vV | sed -n 's/^host: //p')" -Zbuild-std
    else
        echo "    nightly toolchain unavailable; skipping TSan lane"
    fi
else
    echo "==> sanitizers skipped (set MAQS_SANITIZE=1 to enable)"
fi

echo "==> qoslint (committed specs must be clean, warnings denied)"
# Fixtures under crates/qoslint/tests/fixtures are intentionally broken
# inputs for the lint golden tests; every other committed spec must lint
# clean.
find . -name '*.qidl' -not -path './target/*' -not -path './.git/*' \
    -not -path './crates/qoslint/tests/fixtures/*' |
while read -r spec; do
    echo "    $spec"
    cargo run -q -p qoslint --release -- --deny-warnings "$spec"
done

echo "==> OK"
