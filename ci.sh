#!/usr/bin/env sh
# CI gate: formatting, lints, build, tests, and the demo spec staying
# clean under qoslint. Mirrors what reviewers run locally.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check (advisory: seed code predates rustfmt.toml)"
cargo fmt --all -- --check || echo "    (formatting drift, not fatal)"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> metrics golden (per-layer metric names must stay stable)"
cargo test -q -p maqs --test metrics_golden

echo "==> export golden (Prometheus exposition + Chrome trace schema)"
cargo test -q -p maqs --test export_golden

echo "==> introspection (remote metrics/flight/health/bindings over GIOP)"
cargo test -q -p maqs --test introspection

echo "==> chaos (scripted faults vs self-healing client, fixed seed)"
# Reproducible by default; override MAQS_CHAOS_SEED to explore other
# fault interleavings. The test's assertions hold under any seed.
MAQS_CHAOS_SEED="${MAQS_CHAOS_SEED:-7}" \
    cargo test -q -p maqs --test fault_injection chaos_script_heals_binding

echo "==> e11 hot-path smoke (--quick) + regression gate"
# Quick closed-loop sweep; writes BENCH_hotpath.json at the repo root.
cargo bench -q -p maqs-bench --bench e11_hotpath -- --quick
# Artifact must be well-formed JSON with all 12 sweep cases, and the
# null-call plain-path p50 must stay within 3x of the committed
# baseline (generous: CI boxes are noisy, a real regression is 10x).
python3 - <<'EOF'
import json, sys

cur = json.load(open("BENCH_hotpath.json"))
base = json.load(open("BENCH_hotpath.baseline.json"))
if len(cur["cases"]) != 12:
    sys.exit(f"BENCH_hotpath.json: expected 12 cases, got {len(cur['cases'])}")

def null_plain_p50(doc):
    for c in doc["cases"]:
        if c["payload"] == "null" and not c["qos"] and c["dispatch_threads"] == 1:
            return c["p50_us"]
    sys.exit("missing null/plain/1-thread case")

got, want = null_plain_p50(cur), null_plain_p50(base)
if got > want * 3:
    sys.exit(f"hot-path regression: null-call p50 {got:.1f}us vs baseline {want:.1f}us (>3x)")
print(f"    null-call p50 {got:.1f}us (baseline {want:.1f}us) -- ok")
EOF

echo "==> qoslint (committed specs must be clean, warnings denied)"
# Fixtures under crates/qoslint/tests/fixtures are intentionally broken
# inputs for the lint golden tests; every other committed spec must lint
# clean.
find . -name '*.qidl' -not -path './target/*' -not -path './.git/*' \
    -not -path './crates/qoslint/tests/fixtures/*' |
while read -r spec; do
    echo "    $spec"
    cargo run -q -p qoslint --release -- --deny-warnings "$spec"
done

echo "==> OK"
