//! Allocation accounting for the zero-copy wire path.
//!
//! The tentpole claim of the hot-path rework: a null request costs
//! exactly **one** owned buffer allocation between GIOP encoding and
//! netsim delivery. The single-buffer framing functions write the wire
//! envelope and the CDR body into one `Vec` (sized by a warm
//! thread-local capacity hint), and `NetHandle::send` moves — never
//! copies — that buffer into the shared [`bytes::Bytes`] payload.
//!
//! This file holds exactly one test so no concurrent test pollutes the
//! global allocation counters.

use netsim::{Network, NodeId};
use orb::giop::{frame_plain_request, GiopMessage, Packet, RequestKind, RequestMessage};
use orb::ior::ObjectKey;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Counts heap allocations while `ENABLED`, delegating to the system
/// allocator. `realloc` counts too: a growing frame buffer would be a
/// hidden second allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn null_request_frame_is_one_allocation_to_delivery() {
    let request = RequestMessage {
        request_id: 7,
        reply_to: NodeId(1),
        object_key: ObjectKey("echo".to_string()),
        operation: "ping".to_string(),
        args: Vec::new(),
        response_expected: true,
        kind: RequestKind::ServiceRequest,
        qos: None,
        contexts: Vec::new(),
    };

    // Warm the thread-local frame-capacity hint so we measure steady
    // state, not the first-call growth.
    for _ in 0..4 {
        let _ = frame_plain_request(&request);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    let frame = frame_plain_request(&request);
    ENABLED.store(false, Ordering::SeqCst);
    assert_eq!(
        ALLOCS.load(Ordering::SeqCst),
        1,
        "null request must cost exactly one buffer: envelope + GIOP body in one Vec"
    );

    // The single-buffer frame still decodes to the same request.
    match Packet::from_bytes(&frame).expect("frame decodes") {
        Packet::Plain(body) => match GiopMessage::from_bytes(&body).expect("GIOP decodes") {
            GiopMessage::Request(r) => {
                assert_eq!(r.request_id, 7);
                assert_eq!(r.operation, "ping");
                assert!(r.args.is_empty());
            }
            GiopMessage::Reply(_) => panic!("framed a request, decoded a reply"),
        },
        Packet::Qos { .. } => panic!("plain frame decoded as qos"),
    }

    // …and rides to netsim delivery without being copied: the delivered
    // payload aliases the very buffer the framing layer produced.
    let net = Network::new(1);
    let a = net.attach("a");
    let b = net.attach("b");
    let frame_ptr = frame.as_ptr() as usize;
    a.send(b.id(), frame).unwrap();
    let msg = b.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(
        msg.payload.as_ptr() as usize,
        frame_ptr,
        "send must move the frame into the shared payload, not copy it"
    );
}
