//! Exhaustive interleaving models for the ORB's riskiest concurrent
//! structures, checked with [`conccheck`] under bounded preemption.
//!
//! Each model re-states one production algorithm over the shim
//! primitives so the checker can drive *every* schedule through it (the
//! production code runs on parking_lot locks, which cannot be
//! instrumented). The models are deliberately tiny — two or three
//! threads, a handful of operations — because exhaustive exploration is
//! exponential in decision points; what they lose in scale they gain in
//! covering interleavings no stress test will ever hit.
//!
//! Inventory (see DESIGN.md §6f):
//! 1. [`pending_table`] — sharded pending-reply table: concurrent
//!    match/timeout must account every reply exactly once.
//! 2. [`reply_slot`] — armed rendezvous slot: a late reply to a
//!    previous request is orphaned, never misdelivered. A seeded
//!    mutation (dropping the armed-id guard) proves the model has teeth.
//! 3. [`breaker`] — circuit breaker Closed→Open→HalfOpen: concurrent
//!    probes settle into a single consistent transition chain.
//! 4. [`flight`] — flight-recorder staging flush vs. inline batch
//!    flush: every event reaches the ring exactly once.
//! 5. [`dispatch_queues`] — sharded dispatch handoff: the receive loop
//!    routes batched work into per-dispatcher queues by key hash; every
//!    item is consumed exactly once, on the right dispatcher, in per-key
//!    order, and every dispatcher terminates (no lost shutdown).
//!
//! Run with `cargo test -p orb --features loom-models` (the conccheck CI
//! lane); without the feature this file compiles to nothing.
#![cfg(feature = "loom-models")]

use conccheck::sync::atomic::{AtomicU64, Ordering};
use conccheck::sync::Mutex;
use conccheck::{thread, Builder};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Shared miniature of core.rs's ReplySlot (used by models 1 and 2).
// ---------------------------------------------------------------------

/// Mirror of `core::SlotState`: the request id the slot currently
/// serves (0 = disarmed) plus the queued reply payloads.
struct SlotState {
    armed: u64,
    queue: VecDeque<u64>,
}

/// Mirror of `core::ReplySlot` minus the condvar: waiters poll
/// [`try_pop`](Slot::try_pop), which explores strictly more wake-up
/// orders than a condvar would allow.
struct Slot {
    state: Mutex<SlotState>,
}

impl Slot {
    fn new() -> Slot {
        Slot { state: Mutex::new(SlotState { armed: 0, queue: VecDeque::new() }) }
    }

    fn arm(&self, id: u64) {
        let mut s = self.state.lock();
        s.armed = id;
        s.queue.clear();
    }

    fn disarm(&self) {
        let mut s = self.state.lock();
        s.armed = 0;
        s.queue.clear();
    }

    /// Mirror of `ReplySlot::push`. `guard_armed_id` is the mutation
    /// knob: the production code always checks that the slot is still
    /// armed for `id`; the mutant skips the check, recreating the bug
    /// the guard exists to prevent.
    fn push(&self, id: u64, payload: u64, guard_armed_id: bool) -> bool {
        let mut s = self.state.lock();
        if guard_armed_id && s.armed != id {
            return false;
        }
        s.queue.push_back(payload);
        true
    }

    fn try_pop(&self, id: u64) -> Option<u64> {
        let mut s = self.state.lock();
        if s.armed != id {
            return None;
        }
        s.queue.pop_front()
    }
}

// ---------------------------------------------------------------------
// Model 1: sharded pending table — insert / match / orphan.
// ---------------------------------------------------------------------

/// Caller registers a request then times out; the receive loop
/// concurrently takes the entry and delivers. Mirrors
/// `Orb::register_pending` / `unregister_pending` and the dispatch
/// take-then-push in `core.rs`: the receiver removes the entry from the
/// shard and drops the shard lock *before* delivering into the slot.
///
/// Invariant: the one reply is accounted exactly once — matched or
/// orphaned, never both, never neither — and the shard map ends empty,
/// under every interleaving of the match and the timeout.
#[test]
fn pending_table_accounts_every_reply_exactly_once() {
    let report = Builder::new()
        .preemption_bound(3)
        .check_result(|| {
            let shard: Arc<Mutex<HashMap<u64, Arc<Slot>>>> = Arc::new(Mutex::new(HashMap::new()));
            let matched = Arc::new(AtomicU64::new(0));
            let orphaned = Arc::new(AtomicU64::new(0));

            // Caller: register request 1, poll once, give up (timeout).
            let slot = Arc::new(Slot::new());
            slot.arm(1);
            shard.lock().insert(1, Arc::clone(&slot));

            let receiver = {
                let shard = Arc::clone(&shard);
                let (matched, orphaned) = (Arc::clone(&matched), Arc::clone(&orphaned));
                thread::spawn(move || {
                    // Receive loop: take the entry out of its shard,
                    // drop the shard lock, then deliver.
                    let taken = shard.lock().remove(&1);
                    let delivered = match taken {
                        Some(slot) => slot.push(1, 10, true),
                        None => false,
                    };
                    if delivered {
                        matched.fetch_add(1, Ordering::SeqCst);
                    } else {
                        orphaned.fetch_add(1, Ordering::SeqCst);
                    }
                })
            };

            // Timeout path: one poll, then unregister.
            let got = slot.try_pop(1);
            if got.is_none() {
                shard.lock().remove(&1);
                slot.disarm();
            }

            receiver.join();
            let m = matched.load(Ordering::SeqCst);
            let o = orphaned.load(Ordering::SeqCst);
            assert_eq!(m + o, 1, "reply accounted exactly once (matched={m}, orphaned={o})");
            assert!(shard.lock().is_empty(), "pending entry must not leak");
            if let Some(p) = got {
                assert_eq!(p, 10, "caller can only ever observe its own reply");
                assert_eq!(m, 1, "a consumed reply must be counted matched");
            }
        })
        .expect("pending-table accounting must hold under every schedule");
    assert!(report.complete, "search space must be exhausted");
}

// ---------------------------------------------------------------------
// Model 2: armed ReplySlot — late reply orphaned, never misdelivered.
// ---------------------------------------------------------------------

/// The exhaustive version of core.rs's `late_reply_is_orphaned_never_
/// misdelivered` test: a caller reuses its per-thread slot for request 2
/// after abandoning request 1, while the receive loop delivers both
/// replies late. Under every schedule, whatever the caller pops while
/// armed for request 2 must be reply 2 — reply 1 must be refused by the
/// armed-id guard (orphaned) or cleared by re-arming.
fn reply_slot_model(guard_armed_id: bool) {
    let slot = Arc::new(Slot::new());
    let refused = Arc::new(AtomicU64::new(0));

    // Request 1: armed, then abandoned (timeout) before any delivery.
    slot.arm(1);
    slot.disarm();
    // Request 2 on the same slot.
    slot.arm(2);

    let receiver = {
        let slot = Arc::clone(&slot);
        let refused = Arc::clone(&refused);
        thread::spawn(move || {
            // The receive loop catches up: late reply for the abandoned
            // request 1, then the live reply for request 2.
            if !slot.push(1, 10, guard_armed_id) {
                refused.fetch_add(1, Ordering::SeqCst);
            }
            if !slot.push(2, 20, guard_armed_id) {
                refused.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    // Caller: bounded poll for reply 2 (polling models the condvar wait
    // while exploring more wake-up orders than a condvar would allow).
    let mut got = None;
    for _ in 0..4 {
        got = slot.try_pop(2);
        if got.is_some() {
            break;
        }
        thread::yield_now();
    }
    receiver.join();
    if got.is_none() {
        got = slot.try_pop(2);
    }

    if let Some(p) = got {
        assert_eq!(p, 20, "misdelivery: caller armed for request 2 popped reply {p}");
    }
    // Both replies were sent; the guarded slot must have refused the
    // late one, so the caller can never find two queued replies.
    assert!(slot.state.lock().queue.len() <= 1, "stale reply left queued behind the live one");
}

#[test]
fn late_reply_is_orphaned_never_misdelivered_exhaustive() {
    let report = Builder::new()
        .preemption_bound(3)
        .check_result(|| reply_slot_model(true))
        .expect("armed-id guard must orphan the late reply under every schedule");
    assert!(report.complete, "search space must be exhausted");
}

/// Seeded mutation: dropping the armed-request-id guard MUST make the
/// model fail — this proves the model (and the checker) can actually
/// see the misdelivery the guard prevents.
#[test]
fn mutation_dropping_armed_guard_is_caught() {
    let failure = Builder::new()
        .preemption_bound(3)
        .check_result(|| reply_slot_model(false))
        .expect_err("the unguarded slot must misdeliver on some schedule");
    assert!(
        failure.reason.contains("misdelivery") || failure.reason.contains("stale reply"),
        "expected a misdelivery, got: {}",
        failure.reason
    );
}

// ---------------------------------------------------------------------
// Model 3: circuit breaker — Closed → Open → HalfOpen under racing probes.
// ---------------------------------------------------------------------

/// Mirror of `weaver::resilience::CircuitBreaker` with the time-based
/// cooldown always elapsed (the model explores schedules, not clocks):
/// `consecutive_failures = 1`, `half_open_successes = 1`, no rate window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BState {
    Closed,
    Open,
    HalfOpen,
}

struct BreakerModel {
    state: Mutex<BState>,
    transitions: Mutex<Vec<(BState, BState)>>,
}

impl BreakerModel {
    fn new(initial: BState) -> BreakerModel {
        BreakerModel { state: Mutex::new(initial), transitions: Mutex::new(Vec::new()) }
    }

    fn shift(&self, st: &mut BState, to: BState) {
        let from = *st;
        *st = to;
        self.transitions.lock().push((from, to));
    }

    /// `CircuitBreaker::admit` with the cooldown elapsed.
    fn admit(&self) -> bool {
        let mut st = self.state.lock();
        match *st {
            BState::Closed | BState::HalfOpen => true,
            BState::Open => {
                let to = BState::HalfOpen;
                self.shift(&mut st, to);
                true
            }
        }
    }

    /// `CircuitBreaker::on_success` with `half_open_successes = 1`.
    fn on_success(&self) {
        let mut st = self.state.lock();
        if *st == BState::HalfOpen {
            self.shift(&mut st, BState::Closed);
        }
        // Success in Open (another thread re-tripped mid-call) is ignored.
    }

    /// `CircuitBreaker::on_failure` with `consecutive_failures = 1`.
    fn on_failure(&self) {
        let mut st = self.state.lock();
        match *st {
            BState::Closed | BState::HalfOpen => self.shift(&mut st, BState::Open),
            BState::Open => {}
        }
    }
}

/// Two probes race against an open breaker: one's call succeeds, the
/// other's fails, in any order. Under every schedule the transition log
/// must be a single consistent chain: each transition leaves the state
/// the previous one produced, exactly one probe wins the Open→HalfOpen
/// flip, and the final state is the last transition's target — i.e. the
/// race settles in exactly one of {open, closed}, never a torn state.
#[test]
fn breaker_probe_race_settles_into_one_consistent_chain() {
    let report = Builder::new()
        .preemption_bound(3)
        .check_result(|| {
            let breaker = Arc::new(BreakerModel::new(BState::Open));

            let prober = |ok: bool| {
                let breaker = Arc::clone(&breaker);
                thread::spawn(move || {
                    if breaker.admit() {
                        if ok {
                            breaker.on_success();
                        } else {
                            breaker.on_failure();
                        }
                    }
                })
            };
            let t1 = prober(true);
            let t2 = prober(false);
            t1.join();
            t2.join();

            let transitions = breaker.transitions.lock();
            let mut at = BState::Open;
            for (from, to) in transitions.iter() {
                assert_eq!(*from, at, "torn transition chain: {transitions:?}");
                at = *to;
            }
            assert_eq!(*breaker.state.lock(), at, "final state must match the chain");
            // Each admitted probe flips Open→HalfOpen at most once; a
            // second flip is legal only after the first probe failed and
            // re-opened the circuit (the checker found that schedule —
            // asserting "exactly one flip" here is wrong).
            let probes = transitions
                .iter()
                .filter(|(f, t)| (*f, *t) == (BState::Open, BState::HalfOpen))
                .count();
            assert!((1..=2).contains(&probes), "impossible probe count {probes}: {transitions:?}");
            assert!(
                matches!(at, BState::Open | BState::Closed),
                "both outcomes settled, breaker must not be left half-open"
            );
        })
        .expect("breaker transition chain must be consistent under every schedule");
    assert!(report.complete, "search space must be exhausted");
}

// ---------------------------------------------------------------------
// Model 4: flight recorder — staging flush vs. inline batch flush.
// ---------------------------------------------------------------------

/// Mirror of `flight::Inner::drain_into` and the two paths that call it:
/// the recording thread's inline batch flush (staging buffer reaches
/// `STAGE_BATCH`) and a reader's `flush()`. Capacity-2 ring, batch of 2.
///
/// Invariant: every recorded event lands in the ring exactly once (the
/// two drains must never duplicate or drop a staged event), sequence
/// numbers are unique, and the ring never exceeds capacity.
#[test]
fn flight_staging_flush_delivers_every_event_exactly_once() {
    const CAPACITY: usize = 2;
    const BATCH: usize = 2;
    let report = Builder::new()
        .preemption_bound(3)
        .check_result(|| {
            // Event = (unique id, seq once assigned).
            let buf: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let ring: Arc<Mutex<VecDeque<(u64, u64)>>> = Arc::new(Mutex::new(VecDeque::new()));
            let seq = Arc::new(AtomicU64::new(0));
            // Every (id, seq) that ever entered the ring, including
            // entries later evicted by the capacity limit.
            let landed: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));

            let drain_into = {
                let (seq, landed) = (Arc::clone(&seq), Arc::clone(&landed));
                move |staged: &mut Vec<u64>, ring: &mut VecDeque<(u64, u64)>| {
                    for id in staged.drain(..) {
                        let s = seq.fetch_add(1, Ordering::SeqCst);
                        landed.lock().push((id, s));
                        if ring.len() == CAPACITY {
                            ring.pop_front();
                        }
                        ring.push_back((id, s));
                    }
                }
            };

            // Recorder thread: stage events 1 and 2; the second push
            // reaches the batch size and flushes inline (buf lock held,
            // then ring lock — the production lock order).
            let recorder = {
                let (buf, ring) = (Arc::clone(&buf), Arc::clone(&ring));
                let drain_into = drain_into.clone();
                thread::spawn(move || {
                    for id in [1u64, 2] {
                        let mut b = buf.lock();
                        b.push(id);
                        if b.len() >= BATCH {
                            let mut r = ring.lock();
                            drain_into(&mut b, &mut r);
                        }
                    }
                })
            };

            // Reader thread: `flush()` — drain the slot into a local
            // staging vec, release the buf lock, then land the batch.
            let reader = {
                let (buf, ring) = (Arc::clone(&buf), Arc::clone(&ring));
                let drain_into = drain_into.clone();
                thread::spawn(move || {
                    let mut staged: Vec<u64> = buf.lock().drain(..).collect();
                    let mut r = ring.lock();
                    drain_into(&mut staged, &mut r);
                })
            };

            recorder.join();
            reader.join();

            // Final flush so nothing is left staged.
            let mut staged: Vec<u64> = buf.lock().drain(..).collect();
            drain_into(&mut staged, &mut ring.lock());

            let landed = landed.lock();
            for id in [1u64, 2] {
                let times = landed.iter().filter(|(i, _)| *i == id).count();
                assert_eq!(times, 1, "event {id} must land exactly once, landed {times} times");
            }
            let mut seqs: Vec<u64> = landed.iter().map(|(_, s)| *s).collect();
            seqs.sort_unstable();
            seqs.dedup();
            assert_eq!(seqs.len(), landed.len(), "sequence numbers must be unique");
            assert!(ring.lock().len() <= CAPACITY, "ring must never exceed capacity");
        })
        .expect("staging flush must deliver every event exactly once under every schedule");
    assert!(report.complete, "search space must be exhausted");
}

// ---------------------------------------------------------------------
// Model 5: sharded dispatch queues — batched handoff, exactly-once.
// ---------------------------------------------------------------------

/// One work item or the end-of-stream sentinel, mirroring
/// `core::DispatchCmd` (the model folds `One`/`Batch` into how the
/// producer *flushes* — a batch is several items pushed under one lock
/// hold, exactly like `DispatchCmd::Batch` travels as one send).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Cmd {
    Work { key: u64, seq: u64 },
    Shutdown,
}

/// Mirror of the receive loop → per-dispatcher queue handoff added for
/// sharded delivery: the receive loop stages a burst of decoded frames
/// into per-queue buckets (routing each by key hash), flushes every
/// non-empty bucket as one batch — several items entering the queue
/// under one lock hold, exactly how `DispatchCmd::Batch` travels as one
/// send — and finishes with one sentinel per queue. Each dispatcher
/// drains its own queue only. Dispatchers poll a *bounded* number of
/// times (the idiom from model 2: polling models the channel wait while
/// keeping the search space finite); whatever a dispatcher did not get
/// to is drained afterwards from its queue, so the accounting below
/// still covers every item under every schedule.
///
/// Invariants, under every interleaving of the producer's flush and two
/// concurrently draining dispatchers:
/// * every item is consumed exactly once — the sum over both drain logs
///   is exactly the burst, no duplicate, no loss;
/// * an item is only ever drained by the dispatcher its key hashes to
///   (`key % queues`, mirroring `DispatchRouting::KeyAffinity`);
/// * items sharing a key are drained in production order (the per-key
///   FIFO guarantee that makes key affinity a semantic feature);
/// * a dispatcher that observes the sentinel has already drained every
///   work item of its queue — the sentinel can never overtake work.
#[test]
fn dispatch_queue_handoff_is_exactly_once_in_key_order() {
    const QUEUES: usize = 2;
    const POLLS: usize = 4;
    let report = Builder::new()
        .preemption_bound(3)
        .check_result(|| {
            let queues: Arc<Vec<Mutex<VecDeque<Cmd>>>> =
                Arc::new((0..QUEUES).map(|_| Mutex::new(VecDeque::new())).collect());
            // Per-dispatcher drain logs plus a saw-the-sentinel flag.
            let logs: Arc<Vec<Mutex<(Vec<(u64, u64)>, bool)>>> =
                Arc::new((0..QUEUES).map(|_| Mutex::new((Vec::new(), false))).collect());

            let drain = |i: usize, queues: &[Mutex<VecDeque<Cmd>>], logs: &[Mutex<(Vec<(u64, u64)>, bool)>]| {
                for _ in 0..POLLS {
                    let cmd = queues[i].lock().pop_front();
                    match cmd {
                        Some(Cmd::Work { key, seq }) => logs[i].lock().0.push((key, seq)),
                        Some(Cmd::Shutdown) => {
                            logs[i].lock().1 = true;
                            break;
                        }
                        None => thread::yield_now(),
                    }
                }
            };

            // Producer (the receive loop): one burst of four frames on
            // two keys, staged into buckets then flushed per queue as a
            // batch, then one sentinel per queue.
            let producer = {
                let queues = Arc::clone(&queues);
                thread::spawn(move || {
                    let burst = [(0u64, 0u64), (1, 1), (0, 2), (1, 3)]
                        .map(|(key, seq)| Cmd::Work { key, seq });
                    let mut buckets: Vec<Vec<Cmd>> = (0..QUEUES).map(|_| Vec::new()).collect();
                    for cmd in burst {
                        let Cmd::Work { key, .. } = cmd else { unreachable!() };
                        buckets[(key % QUEUES as u64) as usize].push(cmd);
                    }
                    for (i, bucket) in buckets.into_iter().enumerate() {
                        if !bucket.is_empty() {
                            queues[i].lock().extend(bucket);
                        }
                    }
                    for q in queues.iter() {
                        q.lock().push_back(Cmd::Shutdown);
                    }
                })
            };

            // Dispatcher 0 on its own thread; this thread doubles as
            // dispatcher 1 (their queues are disjoint, so only the
            // producer↔dispatcher race matters, and two spawned threads
            // would only inflate the search space).
            let d0 = {
                let queues = Arc::clone(&queues);
                let logs = Arc::clone(&logs);
                thread::spawn(move || drain(0, &queues, &logs))
            };
            drain(1, &queues, &logs);
            producer.join();
            d0.join();

            // Post-run: finish what the bounded polls left behind, then
            // account for everything.
            let mut consumed: Vec<(u64, u64)> = Vec::new();
            for (i, log) in logs.iter().enumerate() {
                let mut log = log.lock();
                let mut q = queues[i].lock();
                if log.1 {
                    // The producer enqueues the sentinel after all of the
                    // queue's work; FIFO means popping it implies the
                    // queue is already fully drained.
                    assert!(q.is_empty(), "sentinel overtook work on queue {i}: {q:?}");
                }
                while let Some(cmd) = q.pop_front() {
                    if let Cmd::Work { key, seq } = cmd {
                        log.0.push((key, seq));
                    }
                }
                for &(key, seq) in log.0.iter() {
                    assert_eq!(
                        (key % QUEUES as u64) as usize,
                        i,
                        "item (key={key}, seq={seq}) landed on the wrong dispatcher {i}"
                    );
                    consumed.push((key, seq));
                }
                // Per-key order within one dispatcher's drain log.
                for key in 0..2u64 {
                    let seqs: Vec<u64> =
                        log.0.iter().filter(|(k, _)| *k == key).map(|&(_, s)| s).collect();
                    assert!(
                        seqs.windows(2).all(|w| w[0] < w[1]),
                        "key {key} drained out of order: {seqs:?}"
                    );
                }
            }
            consumed.sort_unstable();
            assert_eq!(
                consumed,
                vec![(0, 0), (0, 2), (1, 1), (1, 3)],
                "every item must be consumed exactly once"
            );
        })
        .expect("sharded dispatch handoff must be exactly-once under every schedule");
    assert!(report.complete, "search space must be exhausted");
}
