//! Backend-agnostic conformance suite for the [`WireTransport`]
//! contract (see `orb::wire` module docs):
//!
//! * per-peer frame ordering while a connection lasts,
//! * `poke()` wakes a blocked `recv()` with an empty frame,
//! * `shutdown()` is idempotent and wakes *every* blocked `recv()`,
//! * multi-megabyte frames round-trip whole,
//! * socket backends reconnect after a peer restart,
//! * the **fault matrix**: every scripted [`WireFault`] × every backend
//!   × both [`BackpressurePolicy`]s yields a typed error or recovery —
//!   never a hung caller or a misdelivered frame,
//! * **failover**: a peer registered with an ordered endpoint list
//!   survives its primary endpoint dying mid-load,
//! * garbage on the stream (oversize/torn length prefixes) kills only
//!   the offending connection,
//! * a stalled-reader peer cannot grow the bounded outbox past its caps.
//!
//! Every property runs against the netsim wrapper and both socket
//! backends (TCP, Unix-domain), so a new backend can be dropped into
//! the battery and inherit it whole. The chaos cases take their seed
//! from `MAQS_CHAOS_SEED` (default 7) and are deterministic per seed.

use netsim::{Network, NodeId};
use orb::wire::fault::{FaultyTransport, WireFault, WireFaultScript};
use orb::wire::{
    BackpressurePolicy, Endpoint, NetSimTransport, TcpTransport, UdsTransport, WireConfig,
    WireError, WireTransport,
};
use orb::{Any, FlightEventKind, Orb, OrbConfig, OrbError, Servant};
use std::io::Write;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The seed the chaos cases script their faults from (`MAQS_CHAOS_SEED`,
/// default 7): same seed, same run.
fn chaos_seed() -> u64 {
    std::env::var("MAQS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

/// A connected pair of transports: `a` can reach `b` by node id (and,
/// over sockets, `b` learns the way back from `a`'s hello).
struct Pair {
    a: Arc<dyn WireTransport>,
    b: Arc<dyn WireTransport>,
    // The simulator must outlive netsim-backed handles.
    _net: Option<Network>,
}

fn netsim_pair() -> Pair {
    let net = Network::new(1);
    let a = Arc::new(NetSimTransport::new(net.attach("a")));
    let b = Arc::new(NetSimTransport::new(net.attach("b")));
    Pair { a, b, _net: Some(net) }
}

fn tcp_pair() -> Pair {
    let a = Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap());
    let b = Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

fn uds_path(tag: &str) -> String {
    format!("/tmp/maqs-wireconf-{}-{tag}.sock", std::process::id())
}

fn uds_pair(tag: &str) -> Pair {
    let a = Arc::new(UdsTransport::bind(NodeId(1), &uds_path(&format!("{tag}-a"))).unwrap());
    let b = Arc::new(UdsTransport::bind(NodeId(2), &uds_path(&format!("{tag}-b"))).unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

// ---------------------------------------------------------------------
// the contract checks, written once
// ---------------------------------------------------------------------

/// 100 numbered frames arrive in send order (pokes filtered out — an
/// empty payload is a wakeup, not traffic).
fn check_ordering(pair: &Pair) {
    for i in 0..100u32 {
        pair.a.send(pair.b.node(), i.to_le_bytes().to_vec()).unwrap();
    }
    let mut got = Vec::with_capacity(100);
    while got.len() < 100 {
        let frame = pair.b.recv().unwrap();
        if frame.payload.is_empty() {
            continue;
        }
        assert_eq!(frame.src, pair.a.node());
        got.push(u32::from_le_bytes(frame.payload[..4].try_into().unwrap()));
    }
    assert_eq!(got, (0..100).collect::<Vec<u32>>());
}

/// `poke()` wakes a blocked `recv()` with an empty frame.
fn check_poke_wakes_blocked_recv(pair: &Pair) {
    let b = Arc::clone(&pair.b);
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(b.recv());
    });
    // Give the receiver a moment to block, then wake it.
    std::thread::sleep(Duration::from_millis(30));
    pair.b.poke();
    let frame = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("poke must wake a blocked recv")
        .unwrap();
    assert!(frame.payload.is_empty(), "a poke is an empty frame");
}

/// `shutdown()` wakes every blocked `recv()` with `Closed`, later
/// `recv()` calls keep failing, and calling it again is harmless.
fn check_shutdown_wakes_all(pair: &Pair) {
    let (tx, rx) = mpsc::channel();
    for _ in 0..3 {
        let b = Arc::clone(&pair.b);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = tx.send(b.recv());
        });
    }
    std::thread::sleep(Duration::from_millis(30));
    pair.b.shutdown();
    for _ in 0..3 {
        let res = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("shutdown must wake every blocked recv");
        assert_eq!(res.unwrap_err(), WireError::Closed);
    }
    assert_eq!(pair.b.recv().unwrap_err(), WireError::Closed);
    assert!(matches!(pair.b.send(pair.a.node(), vec![1]), Err(_) | Ok(_)));
    pair.b.shutdown(); // idempotent
    pair.a.shutdown();
}

/// A multi-megabyte frame arrives whole and byte-identical, both ways.
fn check_large_frame_roundtrip(pair: &Pair) {
    let big: Vec<u8> = (0..4 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    pair.a.send(pair.b.node(), big.clone()).unwrap();
    let frame = pair.b.recv().unwrap();
    assert_eq!(frame.payload.len(), big.len());
    assert_eq!(&frame.payload[..], &big[..]);
    // And back over the reply direction.
    pair.b.send(pair.a.node(), big.clone()).unwrap();
    assert_eq!(&pair.a.recv().unwrap().payload[..], &big[..]);
}

// ---------------------------------------------------------------------
// the battery, per backend
// ---------------------------------------------------------------------

#[test]
fn netsim_backend_meets_contract() {
    check_ordering(&netsim_pair());
    check_poke_wakes_blocked_recv(&netsim_pair());
    check_shutdown_wakes_all(&netsim_pair());
    check_large_frame_roundtrip(&netsim_pair());
}

#[test]
fn tcp_backend_meets_contract() {
    check_ordering(&tcp_pair());
    check_poke_wakes_blocked_recv(&tcp_pair());
    check_shutdown_wakes_all(&tcp_pair());
    check_large_frame_roundtrip(&tcp_pair());
}

#[test]
fn uds_backend_meets_contract() {
    check_ordering(&uds_pair("order"));
    check_poke_wakes_blocked_recv(&uds_pair("poke"));
    check_shutdown_wakes_all(&uds_pair("shut"));
    check_large_frame_roundtrip(&uds_pair("large"));
}

// ---------------------------------------------------------------------
// reconnect after a peer restart (socket backends)
// ---------------------------------------------------------------------

/// Wait (bounded) until one non-poke frame lands on `t`, retrying the
/// send: right after a peer restart the sender may still hold a pooled
/// connection to the dead incarnation, and the first write's failure is
/// what triggers the redial.
fn pump_until_delivered(sender: &Arc<dyn WireTransport>, receiver: &Arc<dyn WireTransport>) -> Vec<u8> {
    let (tx, rx) = mpsc::channel();
    let receiver = Arc::clone(receiver);
    std::thread::spawn(move || loop {
        match receiver.recv() {
            Ok(f) if f.payload.is_empty() => continue,
            other => {
                let _ = tx.send(other);
                break;
            }
        }
    });
    for _ in 0..100 {
        let _ = sender.send(NodeId(2), b"after-restart".to_vec());
        if let Ok(res) = rx.recv_timeout(Duration::from_millis(50)) {
            return res.unwrap().payload.to_vec();
        }
    }
    panic!("frame never delivered after peer restart");
}

#[test]
fn tcp_reconnects_after_peer_restart() {
    // A restarted TCP peer comes back on a fresh port (no SO_REUSEADDR
    // in std); re-registering the new endpoint drops the stale pooled
    // connection, so the next send redials.
    let pair = tcp_pair();
    pair.a.send(pair.b.node(), vec![1]).unwrap();
    assert_eq!(&pair.b.recv().unwrap().payload[..], &[1]);
    pair.b.shutdown();
    let b2: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    pair.a.register_peer(NodeId(2), &[b2.local_endpoint()]).unwrap();
    assert_eq!(pump_until_delivered(&pair.a, &b2), b"after-restart");
    pair.a.shutdown();
    b2.shutdown();
}

#[test]
fn uds_reconnects_after_peer_restart_same_path() {
    // A Unix-socket peer restarts on the *same* path (bind reaps the
    // stale file); no re-registration needed — the failed write on the
    // dead pooled connection triggers the redial to the new listener.
    let path_b = uds_path("restart-b");
    let a: Arc<dyn WireTransport> =
        Arc::new(UdsTransport::bind(NodeId(1), &uds_path("restart-a")).unwrap());
    let b: Arc<dyn WireTransport> = Arc::new(UdsTransport::bind(NodeId(2), &path_b).unwrap());
    a.register_peer(NodeId(2), &[b.local_endpoint()]).unwrap();
    a.send(NodeId(2), vec![1]).unwrap();
    assert_eq!(&b.recv().unwrap().payload[..], &[1]);
    b.shutdown();
    let b2: Arc<dyn WireTransport> = Arc::new(UdsTransport::bind(NodeId(2), &path_b).unwrap());
    assert_eq!(pump_until_delivered(&a, &b2), b"after-restart");
    a.shutdown();
    b2.shutdown();
}

// ---------------------------------------------------------------------
// a full ORB invocation over real sockets
// ---------------------------------------------------------------------

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args[0].clone()),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

#[test]
fn socket_backed_orbs_invoke_end_to_end() {
    let wire_s: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(10), "127.0.0.1:0").unwrap());
    let wire_c: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(11), "127.0.0.1:0").unwrap());
    let server = Orb::start_wire(wire_s, "tcp-server", OrbConfig::default());
    let client = Orb::start_wire(wire_c, "tcp-client", OrbConfig::default());
    assert!(!server.is_sim_backed());

    // The IOR carries the server's listener as a tagged profile; the
    // client's invoke registers it automatically, so no out-of-band
    // address book is needed.
    let ior = server.activate("echo", Box::new(Echo));
    assert!(matches!(ior.endpoint(), Some(Endpoint::Tcp(_))));

    let reply = client.invoke(&ior, "echo", &[Any::from("over real tcp")]).unwrap();
    assert_eq!(reply.as_str(), Some("over real tcp"));

    // A second call reuses the pooled connection.
    let reply = client.invoke(&ior, "echo", &[Any::LongLong(7)]).unwrap();
    assert_eq!(reply.as_i64(), Some(7));

    server.shutdown();
    client.shutdown();
}

// ---------------------------------------------------------------------
// the fault matrix: every fault × every backend × both policies
// ---------------------------------------------------------------------

fn tcp_pair_with(config: WireConfig) -> Pair {
    let a = Arc::new(TcpTransport::bind_with(NodeId(1), "127.0.0.1:0", config.clone()).unwrap());
    let b = Arc::new(TcpTransport::bind_with(NodeId(2), "127.0.0.1:0", config).unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

fn uds_pair_with(tag: &str, config: WireConfig) -> Pair {
    let a = Arc::new(
        UdsTransport::bind_with(NodeId(1), &uds_path(&format!("{tag}-a")), config.clone()).unwrap(),
    );
    let b =
        Arc::new(UdsTransport::bind_with(NodeId(2), &uds_path(&format!("{tag}-b")), config).unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

/// Drain `t` into a channel from a background thread, poke frames
/// filtered out; the thread exits when the transport closes.
fn spawn_collector(t: &Arc<dyn WireTransport>) -> mpsc::Receiver<Vec<u8>> {
    let (tx, rx) = mpsc::channel();
    let t = Arc::clone(t);
    std::thread::spawn(move || loop {
        match t.recv() {
            Ok(f) if f.payload.is_empty() => continue,
            Ok(f) => {
                if tx.send(f.payload.to_vec()).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    });
    rx
}

/// One cell of the fault matrix: wrap `pair.a` in a [`FaultyTransport`]
/// scripted to inject `fault` on exactly send #2, push five frames
/// through, and check the contract — every send returns promptly with
/// `Ok` or a *typed* error, the delivered sequence is exactly what the
/// fault semantics predict (no misdelivery, no reorder, no phantom
/// frames), and the transport still works afterwards.
fn check_fault_cell(pair: Pair, fault: WireFault) {
    let dst = pair.b.node();
    let script = WireFaultScript::seeded(chaos_seed()).on_send(2, fault);
    let faulty = FaultyTransport::new(Arc::clone(&pair.a), script);
    let inbox = spawn_collector(&pair.b);

    let sent: Vec<Vec<u8>> = (1..=5u8).map(|i| vec![i; 8]).collect();
    let mut typed_errors = 0;
    for frame in &sent {
        let started = Instant::now();
        let res = faulty.send(dst, frame.clone());
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "send hung under {fault:?} ({:?} elapsed)",
            started.elapsed()
        );
        match res {
            Ok(()) => {}
            Err(
                WireError::Unreachable(_)
                | WireError::Io(_)
                | WireError::Backpressure(_)
                | WireError::Frame(_),
            ) => typed_errors += 1,
            Err(other) => panic!("untyped failure under {fault:?}: {other}"),
        }
    }
    assert_eq!(faulty.injected(), 1, "exactly one fault must fire");

    // What the receiver must see, exactly, in order.
    let expect: Vec<Vec<u8>> = match fault {
        // The faulted send never reaches the backend.
        WireFault::DialRefused | WireFault::ConnReset | WireFault::DropFrame => {
            vec![sent[0].clone(), sent[1].clone(), sent[3].clone(), sent[4].clone()]
        }
        // The faulted frame arrives torn in half, detectably short.
        WireFault::TornFrame => vec![
            sent[0].clone(),
            sent[1].clone(),
            sent[2][..4].to_vec(),
            sent[3].clone(),
            sent[4].clone(),
        ],
        // Delayed, not lost.
        WireFault::SlowDrip(_) => sent.clone(),
    };
    let expect_errors =
        matches!(fault, WireFault::DialRefused | WireFault::ConnReset) as usize;
    assert_eq!(typed_errors, expect_errors, "wrong error count under {fault:?}");

    let mut got = Vec::new();
    while got.len() < expect.len() {
        match inbox.recv_timeout(Duration::from_secs(3)) {
            Ok(frame) => got.push(frame),
            Err(_) => panic!("only {}/{} frames arrived under {fault:?}", got.len(), expect.len()),
        }
    }
    assert_eq!(got, expect, "delivered sequence wrong under {fault:?}");

    // Recovery: the transport must still carry traffic after the fault.
    faulty.send(dst, b"recovery".to_vec()).unwrap();
    assert_eq!(
        inbox.recv_timeout(Duration::from_secs(3)).expect("no recovery frame after fault"),
        b"recovery".to_vec()
    );

    faulty.shutdown();
    pair.b.shutdown();
}

/// All faults × both backpressure policies against one backend family.
fn run_fault_matrix(make: &dyn Fn(BackpressurePolicy, &str) -> Pair) {
    let policies = [
        ("block", BackpressurePolicy::Block { deadline: Duration::from_millis(500) }),
        ("shed", BackpressurePolicy::Shed),
    ];
    let faults = [
        ("refuse", WireFault::DialRefused),
        ("reset", WireFault::ConnReset),
        ("torn", WireFault::TornFrame),
        ("drop", WireFault::DropFrame),
        ("drip", WireFault::SlowDrip(Duration::from_millis(25))),
    ];
    for (pname, policy) in policies {
        for (fname, fault) in faults {
            check_fault_cell(make(policy, &format!("{pname}-{fname}")), fault);
        }
    }
}

#[test]
fn fault_matrix_netsim() {
    // The simulator backend has no outbox config; the policy dimension
    // degenerates but the fault semantics must hold identically.
    run_fault_matrix(&|_policy, _tag| netsim_pair());
}

#[test]
fn fault_matrix_tcp() {
    run_fault_matrix(&|policy, _tag| {
        tcp_pair_with(WireConfig { backpressure: policy, ..WireConfig::default() })
    });
}

#[test]
fn fault_matrix_uds() {
    run_fault_matrix(&|policy, tag| {
        uds_pair_with(&format!("fm-{tag}"), WireConfig {
            backpressure: policy,
            ..WireConfig::default()
        })
    });
}

/// Seeded probabilistic chaos: under `MAQS_CHAOS_SEED`, random silent
/// drops are injected; exactly the non-dropped frames arrive, in order.
#[test]
fn fault_chaos_probabilistic_drops_are_seed_deterministic() {
    let pair = netsim_pair();
    let dst = pair.b.node();
    let script =
        WireFaultScript::seeded(chaos_seed()).with_probability(300, WireFault::DropFrame);
    let faulty = FaultyTransport::new(Arc::clone(&pair.a), script);
    let inbox = spawn_collector(&pair.b);
    for i in 0..50u32 {
        faulty.send(dst, i.to_le_bytes().to_vec()).unwrap();
    }
    let survivors = 50 - faulty.injected() as usize;
    assert!(faulty.injected() > 0, "p=0.3 over 50 sends must drop something");
    assert!(survivors > 0, "p=0.3 over 50 sends must deliver something");
    let mut got = Vec::new();
    while got.len() < survivors {
        got.push(
            u32::from_le_bytes(
                inbox
                    .recv_timeout(Duration::from_secs(3))
                    .expect("surviving frame missing")[..4]
                    .try_into()
                    .unwrap(),
            ),
        );
    }
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(got, sorted, "survivors must keep send order");
    faulty.shutdown();
    pair.b.shutdown();
}

// ---------------------------------------------------------------------
// multi-endpoint failover
// ---------------------------------------------------------------------

/// A client with an ordered two-endpoint route survives the primary
/// endpoint dying mid-load: the writer's redial walks to the secondary,
/// queued frames follow it, and nothing is misdelivered — every frame
/// that arrives anywhere is one we sent, at most twice (the documented
/// at-most-once retry window for the single in-flight frame).
#[test]
fn fault_tcp_failover_survives_primary_death_mid_load() {
    let a = Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap());
    let b1: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    let b2: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    a.register_peer(NodeId(2), &[b1.local_endpoint(), b2.local_endpoint()]).unwrap();
    let inbox1 = spawn_collector(&b1);
    let inbox2 = spawn_collector(&b2);

    // Block-policy sends may surface Backpressure or Io while the
    // writer is mid-redial; both are typed, retryable outcomes — retry.
    let send_one = |i: u32| {
        let frame = i.to_le_bytes().to_vec();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match a.send(NodeId(2), frame.clone()) {
                Ok(()) => return,
                Err(WireError::Backpressure(_)) | Err(WireError::Io(_))
                    if Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(other) => panic!("send {i} failed hard: {other}"),
            }
        }
    };

    // Burst some load, killing the primary mid-stream. Tiny frames can
    // all land in the dead socket's kernel buffer before its RST comes
    // back, so the burst alone may not trip the writer — that is why
    // the trickle phase below keeps talking, like a real client would.
    let mut next: u32 = 0;
    while next < 120 {
        if next == 40 {
            b1.shutdown(); // primary dies mid-load
        }
        send_one(next);
        next += 1;
    }

    // Keep a trickle going until the failover lands traffic on the
    // secondary; every write into the dead socket brings the RST (and
    // with it the redial walk) closer.
    let mut seen: Vec<u32> = Vec::new();
    let mut on_secondary = 0usize;
    let deadline = Instant::now() + Duration::from_secs(15);
    while on_secondary == 0 {
        assert!(
            Instant::now() < deadline,
            "no frame ever reached the secondary endpoint ({} delivered to the primary)",
            seen.len()
        );
        send_one(next);
        next += 1;
        while let Ok(f) = inbox1.recv_timeout(Duration::from_millis(5)) {
            seen.push(u32::from_le_bytes(f[..4].try_into().unwrap()));
        }
        while let Ok(f) = inbox2.recv_timeout(Duration::from_millis(5)) {
            on_secondary += 1;
            seen.push(u32::from_le_bytes(f[..4].try_into().unwrap()));
        }
    }

    // Zero misdelivery: everything seen is something we sent, at most
    // twice (the one ambiguous in-flight frame may be retried).
    for &v in &seen {
        assert!(v < next, "phantom frame {v}");
        let copies = seen.iter().filter(|&&x| x == v).count();
        assert!(copies <= 2, "frame {v} delivered {copies} times");
    }
    a.shutdown();
    b2.shutdown();
}

/// The same failover at full ORB level: two server ORBs share a node
/// identity and servant, the client's IOR lists both endpoints, and the
/// primary dies mid-run. Every reply that comes back must match its own
/// request (zero misdelivered replies), and calls keep succeeding after
/// the death.
#[test]
fn fault_orb_failover_survives_primary_death_mid_load() {
    let wire1: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(20), "127.0.0.1:0").unwrap());
    let wire2: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(20), "127.0.0.1:0").unwrap());
    let wire_c: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(21), "127.0.0.1:0").unwrap());
    let server1 = Orb::start_wire(wire1, "primary", OrbConfig::default());
    let server2 = Orb::start_wire(wire2, "secondary", OrbConfig::default());
    let client = Orb::start_wire(
        wire_c,
        "failover-client",
        OrbConfig { request_timeout: Duration::from_millis(1500), ..OrbConfig::default() },
    );

    let ior1 = server1.activate("echo", Box::new(Echo));
    let ior2 = server2.activate("echo", Box::new(Echo));
    // One reference, both endpoints, primary first.
    let ior = ior1.clone().with_endpoints(ior2.endpoints.iter().cloned());
    assert_eq!(ior.endpoints.len(), 2);

    let mut ok_after_death = 0;
    for i in 0..30i64 {
        if i == 10 {
            server1.shutdown();
        }
        match client.invoke(&ior, "echo", &[Any::LongLong(i)]) {
            // Zero misdelivery: a reply must answer its own request.
            Ok(reply) => {
                assert_eq!(reply.as_i64(), Some(i), "reply for call {i} answered something else");
                if i >= 10 {
                    ok_after_death += 1;
                }
            }
            // The transition window may time out or surface a comm
            // failure; both are typed and retryable, never wrong data.
            Err(OrbError::Timeout(_) | OrbError::CommFailure(_) | OrbError::Transient(_)) => {}
            Err(other) => panic!("call {i} failed with untyped error: {other}"),
        }
    }
    assert!(ok_after_death > 0, "no call ever succeeded after the primary died");

    client.shutdown();
    server2.shutdown();
}

// ---------------------------------------------------------------------
// garbage on the stream: typed frame errors kill only one connection
// ---------------------------------------------------------------------

/// A peer speaking a valid hello and then garbage — an oversize length
/// prefix, or a frame torn mid-body — triggers a typed frame error
/// that kills *that* connection only; the transport keeps serving and
/// counts the violation.
#[test]
fn fault_garbage_frames_kill_only_their_connection() {
    let victim = Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap());
    let addr = match WireTransport::local_endpoint(&*victim) {
        Endpoint::Tcp(addr) => addr,
        other => panic!("expected tcp endpoint, got {other}"),
    };
    let hello = |node: u32| {
        let mut h = Vec::with_capacity(9);
        h.extend_from_slice(b"MAQW");
        h.push(1);
        h.extend_from_slice(&node.to_le_bytes());
        h
    };

    // Oversize length prefix: 4 GiB-1 is far over the 64 MiB frame cap.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(&hello(99)).unwrap();
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while victim.frame_errors() < 1 {
        assert!(Instant::now() < deadline, "oversize prefix never became a frame error");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Torn frame: a 100-byte body promised, 10 delivered, then EOF.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.write_all(&hello(98)).unwrap();
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 10]).unwrap();
    drop(s);
    let deadline = Instant::now() + Duration::from_secs(5);
    while victim.frame_errors() < 2 {
        assert!(Instant::now() < deadline, "torn body never became a frame error");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The transport survives both: a healthy peer still gets through.
    let peer: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    peer.register_peer(NodeId(1), &[WireTransport::local_endpoint(&*victim)]).unwrap();
    peer.send(NodeId(1), b"still alive".to_vec()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        assert!(Instant::now() < deadline, "healthy peer blocked after garbage");
        let f = victim.recv().unwrap();
        if &f.payload[..] == b"still alive" {
            break;
        }
    }
    victim.shutdown();
    peer.shutdown();
}

// ---------------------------------------------------------------------
// bounded outbox vs a stalled reader
// ---------------------------------------------------------------------

/// A peer that accepts the connection and never reads cannot grow the
/// sender's memory: once the socket buffer and the bounded outbox fill,
/// Block-policy sends fail the deadline with a typed error and the
/// outbox stays at its caps.
#[test]
fn fault_stalled_reader_holds_outbox_memory_flat() {
    let config = WireConfig {
        outbox_frames: 4,
        outbox_bytes: 256 * 1024,
        backpressure: BackpressurePolicy::Block { deadline: Duration::from_millis(200) },
        ..WireConfig::default()
    };
    let a = Arc::new(TcpTransport::bind_with(NodeId(1), "127.0.0.1:0", config).unwrap());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let stalled = std::thread::spawn(move || {
        // Accept, then sit on the stream without reading a byte.
        let conn = listener.accept().map(|(s, _)| s);
        std::thread::sleep(Duration::from_secs(6));
        drop(conn);
    });
    a.register_peer(NodeId(2), &[Endpoint::Tcp(addr)]).unwrap();

    // Loopback kernel buffers can absorb several megabytes before the
    // writer stalls; push enough 64 KiB frames to fill them AND the
    // 4-frame outbox. Only blocked sends cost wall time (200 ms each).
    let mut backpressured = 0;
    let overall = Instant::now() + Duration::from_secs(8);
    for _ in 0..4096 {
        let started = Instant::now();
        match a.send(NodeId(2), vec![0u8; 64 * 1024]) {
            Ok(()) => {}
            Err(WireError::Backpressure(_)) => {
                backpressured += 1;
                // The block deadline bounds the stall; give scheduling
                // slack but not much.
                assert!(
                    started.elapsed() < Duration::from_secs(2),
                    "blocked send overshot its deadline"
                );
                if backpressured >= 3 {
                    break;
                }
            }
            Err(other) => panic!("expected backpressure, got {other}"),
        }
        let (frames, bytes) = a.outbox_depth(NodeId(2));
        assert!(frames <= 4, "outbox frames past cap: {frames}");
        assert!(bytes <= 256 * 1024, "outbox bytes past cap: {bytes}");
        assert!(Instant::now() < overall, "stalled-reader loop ran away");
    }
    assert!(backpressured >= 3, "stalled reader never triggered backpressure");
    let (frames, bytes) = a.outbox_depth(NodeId(2));
    assert!(frames <= 4 && bytes <= 256 * 1024, "outbox grew past its caps");
    a.shutdown();
    let _ = stalled.join();
}

// ---------------------------------------------------------------------
// wire lifecycle events land in the flight recorder
// ---------------------------------------------------------------------

/// Starting an ORB attaches its flight recorder to the wire; after an
/// injected fault and a peer death, `flight_tail` shows the wire's own
/// story: the dial, the injected fault tick, the reset and the redial
/// attempts.
#[test]
fn fault_wire_lifecycle_events_reach_flight_tail() {
    let wire_s: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(30), "127.0.0.1:0").unwrap());
    let server = Orb::start_wire(wire_s, "flight-server", OrbConfig::default());
    let ior = server.activate("echo", Box::new(Echo));

    let inner = Arc::new(TcpTransport::bind(NodeId(31), "127.0.0.1:0").unwrap());
    let script = WireFaultScript::seeded(chaos_seed()).on_send(1, WireFault::ConnReset);
    let faulty: Arc<dyn WireTransport> = Arc::new(FaultyTransport::new(inner, script));
    let client = Orb::start_wire(
        faulty,
        "flight-client",
        OrbConfig { request_timeout: Duration::from_millis(800), ..OrbConfig::default() },
    );

    // Call 1 dials; call 2 hits the injected mid-frame reset.
    assert!(client.invoke(&ior, "echo", &[Any::LongLong(1)]).is_ok());
    assert!(client.invoke(&ior, "echo", &[Any::LongLong(2)]).is_err());

    let flight = client.flight();
    assert!(flight.count(FlightEventKind::WireDial) > 0, "dial not recorded");
    assert!(flight.count(FlightEventKind::FaultTick) > 0, "injected fault not recorded");

    // Kill the server; the writer's failed send must leave a conn-reset
    // and backoff-annotated redial attempts in the ring.
    server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(15);
    while flight.count(FlightEventKind::WireConnReset) == 0
        || flight.count(FlightEventKind::WireRedial) == 0
    {
        assert!(
            Instant::now() < deadline,
            "conn-reset/redial never reached the flight ring (resets {}, redials {})",
            flight.count(FlightEventKind::WireConnReset),
            flight.count(FlightEventKind::WireRedial),
        );
        let _ = client.invoke(&ior, "echo", &[Any::LongLong(9)]);
    }

    // And the events carry the wire layer tag in the visible tail.
    let tail = flight.tail(256);
    assert!(
        tail.iter().any(|e| matches!(
            e.kind,
            FlightEventKind::WireDial
                | FlightEventKind::WireRedial
                | FlightEventKind::WireConnReset
        )),
        "no wire lifecycle event in the tail"
    );
    client.shutdown();
}
