//! Backend-agnostic conformance suite for the [`WireTransport`]
//! contract (see `orb::wire` module docs):
//!
//! * per-peer frame ordering while a connection lasts,
//! * `poke()` wakes a blocked `recv()` with an empty frame,
//! * `shutdown()` is idempotent and wakes *every* blocked `recv()`,
//! * multi-megabyte frames round-trip whole,
//! * socket backends reconnect after a peer restart.
//!
//! Every property runs against the netsim wrapper and both socket
//! backends (TCP, Unix-domain), so a new backend can be dropped into
//! `run_contract_suite` and inherit the whole battery.

use netsim::{Network, NodeId};
use orb::wire::{Endpoint, NetSimTransport, TcpTransport, UdsTransport, WireError, WireTransport};
use orb::{Any, Orb, OrbConfig, OrbError, Servant};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A connected pair of transports: `a` can reach `b` by node id (and,
/// over sockets, `b` learns the way back from `a`'s hello).
struct Pair {
    a: Arc<dyn WireTransport>,
    b: Arc<dyn WireTransport>,
    // The simulator must outlive netsim-backed handles.
    _net: Option<Network>,
}

fn netsim_pair() -> Pair {
    let net = Network::new(1);
    let a = Arc::new(NetSimTransport::new(net.attach("a")));
    let b = Arc::new(NetSimTransport::new(net.attach("b")));
    Pair { a, b, _net: Some(net) }
}

fn tcp_pair() -> Pair {
    let a = Arc::new(TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap());
    let b = Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

fn uds_path(tag: &str) -> String {
    format!("/tmp/maqs-wireconf-{}-{tag}.sock", std::process::id())
}

fn uds_pair(tag: &str) -> Pair {
    let a = Arc::new(UdsTransport::bind(NodeId(1), &uds_path(&format!("{tag}-a"))).unwrap());
    let b = Arc::new(UdsTransport::bind(NodeId(2), &uds_path(&format!("{tag}-b"))).unwrap());
    a.register_peer(b.node(), &[b.local_endpoint()]).unwrap();
    b.register_peer(a.node(), &[WireTransport::local_endpoint(&*a)]).unwrap();
    Pair { a, b, _net: None }
}

// ---------------------------------------------------------------------
// the contract checks, written once
// ---------------------------------------------------------------------

/// 100 numbered frames arrive in send order (pokes filtered out — an
/// empty payload is a wakeup, not traffic).
fn check_ordering(pair: &Pair) {
    for i in 0..100u32 {
        pair.a.send(pair.b.node(), i.to_le_bytes().to_vec()).unwrap();
    }
    let mut got = Vec::with_capacity(100);
    while got.len() < 100 {
        let frame = pair.b.recv().unwrap();
        if frame.payload.is_empty() {
            continue;
        }
        assert_eq!(frame.src, pair.a.node());
        got.push(u32::from_le_bytes(frame.payload[..4].try_into().unwrap()));
    }
    assert_eq!(got, (0..100).collect::<Vec<u32>>());
}

/// `poke()` wakes a blocked `recv()` with an empty frame.
fn check_poke_wakes_blocked_recv(pair: &Pair) {
    let b = Arc::clone(&pair.b);
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(b.recv());
    });
    // Give the receiver a moment to block, then wake it.
    std::thread::sleep(Duration::from_millis(30));
    pair.b.poke();
    let frame = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("poke must wake a blocked recv")
        .unwrap();
    assert!(frame.payload.is_empty(), "a poke is an empty frame");
}

/// `shutdown()` wakes every blocked `recv()` with `Closed`, later
/// `recv()` calls keep failing, and calling it again is harmless.
fn check_shutdown_wakes_all(pair: &Pair) {
    let (tx, rx) = mpsc::channel();
    for _ in 0..3 {
        let b = Arc::clone(&pair.b);
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = tx.send(b.recv());
        });
    }
    std::thread::sleep(Duration::from_millis(30));
    pair.b.shutdown();
    for _ in 0..3 {
        let res = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("shutdown must wake every blocked recv");
        assert_eq!(res.unwrap_err(), WireError::Closed);
    }
    assert_eq!(pair.b.recv().unwrap_err(), WireError::Closed);
    assert!(matches!(pair.b.send(pair.a.node(), vec![1]), Err(_) | Ok(_)));
    pair.b.shutdown(); // idempotent
    pair.a.shutdown();
}

/// A multi-megabyte frame arrives whole and byte-identical, both ways.
fn check_large_frame_roundtrip(pair: &Pair) {
    let big: Vec<u8> = (0..4 * 1024 * 1024u32).map(|i| (i % 251) as u8).collect();
    pair.a.send(pair.b.node(), big.clone()).unwrap();
    let frame = pair.b.recv().unwrap();
    assert_eq!(frame.payload.len(), big.len());
    assert_eq!(&frame.payload[..], &big[..]);
    // And back over the reply direction.
    pair.b.send(pair.a.node(), big.clone()).unwrap();
    assert_eq!(&pair.a.recv().unwrap().payload[..], &big[..]);
}

// ---------------------------------------------------------------------
// the battery, per backend
// ---------------------------------------------------------------------

#[test]
fn netsim_backend_meets_contract() {
    check_ordering(&netsim_pair());
    check_poke_wakes_blocked_recv(&netsim_pair());
    check_shutdown_wakes_all(&netsim_pair());
    check_large_frame_roundtrip(&netsim_pair());
}

#[test]
fn tcp_backend_meets_contract() {
    check_ordering(&tcp_pair());
    check_poke_wakes_blocked_recv(&tcp_pair());
    check_shutdown_wakes_all(&tcp_pair());
    check_large_frame_roundtrip(&tcp_pair());
}

#[test]
fn uds_backend_meets_contract() {
    check_ordering(&uds_pair("order"));
    check_poke_wakes_blocked_recv(&uds_pair("poke"));
    check_shutdown_wakes_all(&uds_pair("shut"));
    check_large_frame_roundtrip(&uds_pair("large"));
}

// ---------------------------------------------------------------------
// reconnect after a peer restart (socket backends)
// ---------------------------------------------------------------------

/// Wait (bounded) until one non-poke frame lands on `t`, retrying the
/// send: right after a peer restart the sender may still hold a pooled
/// connection to the dead incarnation, and the first write's failure is
/// what triggers the redial.
fn pump_until_delivered(sender: &Arc<dyn WireTransport>, receiver: &Arc<dyn WireTransport>) -> Vec<u8> {
    let (tx, rx) = mpsc::channel();
    let receiver = Arc::clone(receiver);
    std::thread::spawn(move || loop {
        match receiver.recv() {
            Ok(f) if f.payload.is_empty() => continue,
            other => {
                let _ = tx.send(other);
                break;
            }
        }
    });
    for _ in 0..100 {
        let _ = sender.send(NodeId(2), b"after-restart".to_vec());
        if let Ok(res) = rx.recv_timeout(Duration::from_millis(50)) {
            return res.unwrap().payload.to_vec();
        }
    }
    panic!("frame never delivered after peer restart");
}

#[test]
fn tcp_reconnects_after_peer_restart() {
    // A restarted TCP peer comes back on a fresh port (no SO_REUSEADDR
    // in std); re-registering the new endpoint drops the stale pooled
    // connection, so the next send redials.
    let pair = tcp_pair();
    pair.a.send(pair.b.node(), vec![1]).unwrap();
    assert_eq!(&pair.b.recv().unwrap().payload[..], &[1]);
    pair.b.shutdown();
    let b2: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap());
    pair.a.register_peer(NodeId(2), &[b2.local_endpoint()]).unwrap();
    assert_eq!(pump_until_delivered(&pair.a, &b2), b"after-restart");
    pair.a.shutdown();
    b2.shutdown();
}

#[test]
fn uds_reconnects_after_peer_restart_same_path() {
    // A Unix-socket peer restarts on the *same* path (bind reaps the
    // stale file); no re-registration needed — the failed write on the
    // dead pooled connection triggers the redial to the new listener.
    let path_b = uds_path("restart-b");
    let a: Arc<dyn WireTransport> =
        Arc::new(UdsTransport::bind(NodeId(1), &uds_path("restart-a")).unwrap());
    let b: Arc<dyn WireTransport> = Arc::new(UdsTransport::bind(NodeId(2), &path_b).unwrap());
    a.register_peer(NodeId(2), &[b.local_endpoint()]).unwrap();
    a.send(NodeId(2), vec![1]).unwrap();
    assert_eq!(&b.recv().unwrap().payload[..], &[1]);
    b.shutdown();
    let b2: Arc<dyn WireTransport> = Arc::new(UdsTransport::bind(NodeId(2), &path_b).unwrap());
    assert_eq!(pump_until_delivered(&a, &b2), b"after-restart");
    a.shutdown();
    b2.shutdown();
}

// ---------------------------------------------------------------------
// a full ORB invocation over real sockets
// ---------------------------------------------------------------------

struct Echo;
impl Servant for Echo {
    fn interface_id(&self) -> &str {
        "IDL:Echo:1.0"
    }
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "echo" => Ok(args[0].clone()),
            _ => Err(OrbError::BadOperation(op.to_string())),
        }
    }
}

#[test]
fn socket_backed_orbs_invoke_end_to_end() {
    let wire_s: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(10), "127.0.0.1:0").unwrap());
    let wire_c: Arc<dyn WireTransport> =
        Arc::new(TcpTransport::bind(NodeId(11), "127.0.0.1:0").unwrap());
    let server = Orb::start_wire(wire_s, "tcp-server", OrbConfig::default());
    let client = Orb::start_wire(wire_c, "tcp-client", OrbConfig::default());
    assert!(!server.is_sim_backed());

    // The IOR carries the server's listener as a tagged profile; the
    // client's invoke registers it automatically, so no out-of-band
    // address book is needed.
    let ior = server.activate("echo", Box::new(Echo));
    assert!(matches!(ior.endpoint(), Some(Endpoint::Tcp(_))));

    let reply = client.invoke(&ior, "echo", &[Any::from("over real tcp")]).unwrap();
    assert_eq!(reply.as_str(), Some("over real tcp"));

    // A second call reuses the pooled connection.
    let reply = client.invoke(&ior, "echo", &[Any::LongLong(7)]).unwrap();
    assert_eq!(reply.as_i64(), Some(7));

    server.shutdown();
    client.shutdown();
}
