//! Coarse ticker clock: one `Instant::now` per tick instead of per call.
//!
//! The request path used to call `Instant::now` once per flight event and
//! once per telemetry sample; each call is a vDSO `clock_gettime`, cheap
//! but not free at hundreds of thousands of events per second (ROADMAP
//! item 2). This module amortizes those reads behind a single background
//! ticker: a daemon thread samples the monotonic clock every
//! [`RESOLUTION_US`] microseconds into an atomic, and [`coarse_now_us`]
//! is a plain relaxed load.
//!
//! The trade is precision for cost: two events recorded within one tick
//! share a timestamp. Consumers that need the coarse reading are the ones
//! that only *order* or *window* events — flight-recorder timestamps
//! (ordering is carried by the ring sequence number anyway) and the
//! telemetry plane's scrape sampling. Latency *measurements*
//! (`orb.dispatch_us`, roundtrip histograms, retry deadlines) keep their
//! paired `Instant::now` reads: a 500 µs quantum would swallow the very
//! values they exist to measure.
//!
//! The reading is monotone by construction — only `fetch_max` ever
//! stores — and the ticker thread is spawned lazily on first use, so
//! processes that never record pay nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Ticker period: the coarse clock advances in steps of (about) this
/// many microseconds. The unit test bounds the *observed* resolution.
pub const RESOLUTION_US: u64 = 500;

// Callers may treat coarse timestamps as ~ms-accurate; keep the
// declared quantum sub-millisecond.
const _: () = assert!(RESOLUTION_US <= 1_000, "coarse quantum grew past 1ms");

struct CoarseClock {
    epoch: Instant,
    cached_us: AtomicU64,
}

impl CoarseClock {
    /// Fold a fresh reading into the cache, keeping it monotone even if
    /// several threads refresh concurrently.
    fn refresh(&self) -> u64 {
        let now = self.epoch.elapsed().as_micros() as u64;
        self.cached_us.fetch_max(now, Ordering::Relaxed).max(now)
    }
}

fn clock() -> &'static CoarseClock {
    static CLOCK: OnceLock<CoarseClock> = OnceLock::new();
    CLOCK.get_or_init(|| {
        let clock = CoarseClock { epoch: Instant::now(), cached_us: AtomicU64::new(0) };
        std::thread::Builder::new()
            .name("maqs-coarse-clock".to_string())
            .spawn(|| loop {
                // `CLOCK` is initialized before the spawn returns a
                // handle anyone can observe, and never dropped.
                if let Some(c) = CLOCK.get() {
                    c.refresh();
                }
                std::thread::sleep(Duration::from_micros(RESOLUTION_US));
            })
            .expect("spawn coarse-clock ticker");
        clock
    })
}

/// Microseconds since the process's coarse-clock epoch (first use),
/// quantized to roughly [`RESOLUTION_US`]. Monotone non-decreasing
/// across threads; a single atomic load on the caller's side.
pub fn coarse_now_us() -> u64 {
    clock().cached_us.load(Ordering::Relaxed)
}

/// Force a fresh reading (one real `Instant::now`) and return it. For
/// callers about to timestamp something *after* a long blocking gap,
/// where a tick's worth of staleness would be visible.
pub fn coarse_refresh_us() -> u64 {
    clock().refresh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_stays_within_bounds() {
        let before = coarse_refresh_us();
        std::thread::sleep(Duration::from_millis(50));
        let after = coarse_now_us();
        let advanced = after.saturating_sub(before);
        // The ticker must have advanced the cache on its own (no
        // refresh on this side). Bounds are generous: CI boxes stall,
        // but a 50ms sleep observed as <10ms means the ticker is dead,
        // and >10s means the epoch arithmetic is broken.
        assert!(advanced >= 10_000, "coarse clock advanced only {advanced}us over a 50ms sleep");
        assert!(advanced <= 10_000_000, "coarse clock jumped {advanced}us over a 50ms sleep");
    }

    #[test]
    fn readings_are_monotone_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut prev = coarse_now_us();
                    for i in 0..2_000 {
                        let next =
                            if i % 64 == 0 { coarse_refresh_us() } else { coarse_now_us() };
                        assert!(next >= prev, "coarse clock went backwards: {prev} -> {next}");
                        prev = next;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn refresh_is_at_least_as_fresh_as_the_cache() {
        let cached = coarse_now_us();
        let fresh = coarse_refresh_us();
        assert!(fresh >= cached);
    }
}
