//! Wire transports — the ORB's pluggable network boundary.
//!
//! The paper's separation argument (§3, Fig. 3) only holds if the layer
//! that moves framed bytes between nodes is swappable behind a stable
//! boundary: QoS modules transform GIOP bodies, the ORB core correlates
//! requests and replies, and *neither* may care whether the bytes travel
//! over the deterministic simulator or a real socket. [`WireTransport`]
//! is that boundary.
//!
//! Three backends ship with the crate, plus one decorator:
//!
//! * [`NetSimTransport`] — wraps a [`netsim::NetHandle`]; the
//!   deterministic default every test and bench runs on.
//! * [`TcpTransport`] — real loopback/LAN TCP with a listener thread,
//!   per-peer pooled connections and reconnect-on-failure.
//! * [`UdsTransport`] — the same engine over Unix-domain sockets.
//! * [`fault::FaultyTransport`] — a decorator over any backend that
//!   injects deterministic, scripted socket-level faults, the socket
//!   analogue of netsim's `FaultScript`.
//!
//! A transport moves opaque *frames* (the single-allocation buffers the
//! `giop::frame_*` path produces) and addresses peers by [`NodeId`]. How
//! a `NodeId` maps onto a dialable address is the job of [`Endpoint`]:
//! socket backends carry **ordered endpoint lists** in IOR tagged
//! profiles and learn the reverse mapping from a 9-byte hello each
//! dialer sends, so replies can travel back over the pooled connection
//! the request arrived on. Dialing walks the list with health-scored
//! selection: the endpoint with the fewest recent failures wins, list
//! order breaks ties, and switching endpoints is a *failover* surfaced
//! through the flight recorder and wire observers.
//!
//! # Backpressure and recovery
//!
//! Socket sends never write under a lock. Each pooled connection owns a
//! **bounded outbox** drained by a dedicated writer thread; `send`
//! enqueues and returns. When the outbox is full the configured
//! [`BackpressurePolicy`] decides: block with a deadline, or shed
//! immediately with a typed [`WireError::Backpressure`] — either way a
//! stalled peer can neither wedge callers forever nor OOM the sender.
//! A failed write triggers **redial with capped exponential backoff and
//! jitter** (the [`crate::retry::RetryPolicy`] shape) across the peer's
//! endpoint list; per-peer [`ConnHealth`] (up/draining/down) is
//! observable via [`WireTransport::peer_health`].
//!
//! # Contract
//!
//! * `send` delivers one frame, whole or not at all; per-peer order is
//!   preserved while a connection lasts.
//! * `recv` blocks; an **empty payload is a wakeup**, not traffic
//!   (the netsim `poke()` convention, kept backend-independent).
//! * `shutdown` is idempotent and wakes every blocked `recv`, which
//!   then returns [`WireError::Closed`].
//! * A corrupt length prefix or a frame torn mid-body kills *only* the
//!   connection it arrived on ([`WireError::Frame`] in the flight
//!   recorder); the transport keeps serving every other peer.
//!
//! The conformance suite in `crates/orb/tests/wire_conformance.rs`
//! checks these properties — and a fault matrix over the injectable
//! failures — against every backend.

pub mod fault;

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use crate::flight::{FlightEventKind, FlightRecorder};
use crate::retry::RetryPolicy;
use crate::sync::{LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::{NetHandle, NodeId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Magic prefix of the socket-backend hello (`b"MAQW"`).
pub const WIRE_MAGIC: [u8; 4] = *b"MAQW";
/// Version byte of the socket-backend hello.
pub const WIRE_VERSION: u8 = 1;
/// Upper bound accepted for one length-prefixed frame, a defence
/// against corrupt or hostile prefixes (matches [`crate::cdr::MAX_LEN`]).
pub const MAX_WIRE_FRAME: usize = 64 * 1024 * 1024;

/// How a peer can be reached, carried in IOR tagged profiles.
///
/// `NodeId` stays the ORB's *identity* and correlation key; an
/// `Endpoint` is the *address* a wire backend dials to reach that
/// identity. The simulator needs no address beyond the identity itself
/// ([`Endpoint::Sim`]); socket backends publish the listener they bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A node on the deterministic simulator (no dialable address).
    Sim(NodeId),
    /// A TCP listener, `host:port`.
    Tcp(String),
    /// A Unix-domain-socket listener, filesystem path.
    Uds(String),
}

impl Endpoint {
    /// Parse the `Display` form (`sim:3`, `tcp:127.0.0.1:9443`,
    /// `uds:/tmp/maqs.sock`).
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] on an unknown scheme or malformed address.
    pub fn parse(s: &str) -> Result<Endpoint, OrbError> {
        if let Some(rest) = s.strip_prefix("sim:") {
            let id = rest
                .parse::<u32>()
                .map_err(|e| OrbError::BadParam(format!("bad sim endpoint {s:?}: {e}")))?;
            return Ok(Endpoint::Sim(NodeId(id)));
        }
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(OrbError::BadParam("empty tcp endpoint".to_string()));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("uds:") {
            if rest.is_empty() {
                return Err(OrbError::BadParam("empty uds endpoint".to_string()));
            }
            return Ok(Endpoint::Uds(rest.to_string()));
        }
        Err(OrbError::BadParam(format!("unknown endpoint scheme in {s:?}")))
    }

    /// Encode onto a CDR stream (tag octet + address).
    pub fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            Endpoint::Sim(node) => {
                enc.put_u8(0);
                enc.put_u32(node.0);
            }
            Endpoint::Tcp(addr) => {
                enc.put_u8(1);
                enc.put_string(addr);
            }
            Endpoint::Uds(path) => {
                enc.put_u8(2);
                enc.put_string(path);
            }
        }
    }

    /// Decode from a CDR stream.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on a truncated stream or unknown tag.
    pub fn decode(dec: &mut CdrDecoder<'_>) -> Result<Endpoint, OrbError> {
        match dec.get_u8()? {
            0 => Ok(Endpoint::Sim(NodeId(dec.get_u32()?))),
            1 => Ok(Endpoint::Tcp(dec.get_string()?)),
            2 => Ok(Endpoint::Uds(dec.get_string()?)),
            tag => Err(OrbError::Marshal(format!("unknown endpoint tag {tag}"))),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Sim(node) => write!(f, "sim:{}", node.0),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{path}"),
        }
    }
}

/// One framed message delivered by [`WireTransport::recv`].
#[derive(Debug, Clone)]
pub struct WireFrame {
    /// The sending node.
    pub src: NodeId,
    /// The frame body; **empty means wakeup poke**, not traffic.
    pub payload: Bytes,
    /// Modelled wire transit in virtual µs (simulator backends only;
    /// socket backends report `0` — wall-clock cost shows up in the
    /// roundtrip histograms instead).
    pub transit_us: u64,
}

/// Errors surfaced by a wire transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// No route to the destination node (never registered, or the
    /// backend cannot dial any of its endpoints).
    Unreachable(String),
    /// The transport has been shut down.
    Closed,
    /// A socket-level failure that persisted across a reconnect attempt.
    Io(String),
    /// The endpoint kind is not supported by this backend.
    Unsupported(String),
    /// The peer's bounded outbox is full and the configured
    /// [`BackpressurePolicy`] shed the frame (or the block deadline
    /// passed). The frame was **not** sent; callers may retry.
    Backpressure(String),
    /// A framing-protocol violation on the receive path (oversize or
    /// zero length prefix, a frame torn mid-body). Kills only the
    /// connection it arrived on.
    Frame(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Unreachable(s) => write!(f, "peer unreachable: {s}"),
            WireError::Closed => write!(f, "wire transport closed"),
            WireError::Io(s) => write!(f, "wire i/o error: {s}"),
            WireError::Unsupported(s) => write!(f, "unsupported endpoint: {s}"),
            WireError::Backpressure(s) => write!(f, "wire backpressure: {s}"),
            WireError::Frame(s) => write!(f, "wire framing error: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for OrbError {
    fn from(e: WireError) -> OrbError {
        match e {
            WireError::Closed => OrbError::Shutdown,
            // A shed frame is the definition of a transient failure: the
            // peer exists, the queue was momentarily full. Map it to the
            // retryable class so retry/resilience policies apply.
            WireError::Backpressure(s) => OrbError::Transient(format!("wire backpressure: {s}")),
            other => OrbError::CommFailure(other.to_string()),
        }
    }
}

/// What a full outbox does to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the caller until space frees up, at most `deadline`; then
    /// fail with [`WireError::Backpressure`].
    Block {
        /// Longest a `send` may wait for outbox space.
        deadline: Duration,
    },
    /// Never block: fail immediately with [`WireError::Backpressure`]
    /// when the outbox is full (load-shedding for latency-sensitive
    /// callers that have their own retry budget).
    Shed,
}

impl Default for BackpressurePolicy {
    /// Block with a 2 s deadline.
    fn default() -> BackpressurePolicy {
        BackpressurePolicy::Block { deadline: Duration::from_secs(2) }
    }
}

/// Tuning knobs of the socket engine (outbox bounds, backpressure,
/// redial backoff). The defaults suit tests and LAN traffic; servers
/// under heavy fan-in may want larger outboxes and `Shed`.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Max frames queued per connection before backpressure applies.
    pub outbox_frames: usize,
    /// Max queued bytes per connection before backpressure applies. A
    /// single frame larger than this is still accepted when the outbox
    /// is empty (the 64 MiB frame cap is the hard bound).
    pub outbox_bytes: usize,
    /// What a full outbox does to the sender.
    pub backpressure: BackpressurePolicy,
    /// Redial schedule after a failed write: `max_attempts` dial walks
    /// over the peer's endpoint list with capped exponential backoff
    /// between them (the [`RetryPolicy`] shape, reused as data).
    pub redial: RetryPolicy,
    /// Randomize each redial backoff to 50–100 % of the scheduled value
    /// so restarting fleets do not thunder in lockstep.
    pub redial_jitter: bool,
    /// Seed for the (deterministic) jitter sequence; `0` derives one
    /// from the node id.
    pub jitter_seed: u64,
}

impl Default for WireConfig {
    fn default() -> WireConfig {
        WireConfig {
            outbox_frames: 1024,
            outbox_bytes: 16 * 1024 * 1024,
            backpressure: BackpressurePolicy::default(),
            redial: RetryPolicy {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(20),
                backoff_factor: 2,
                max_backoff: Duration::from_millis(500),
            },
            redial_jitter: true,
            jitter_seed: 0,
        }
    }
}

/// Health of the pooled connection to one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnHealth {
    /// A live connection is pooled (or was, and nothing failed since).
    Up,
    /// The last write failed; a writer thread is redialing with backoff.
    Draining,
    /// Redial exhausted every endpoint; the next send re-dials from
    /// scratch (or fails [`WireError::Unreachable`]).
    Down,
}

impl ConnHealth {
    /// Stable lowercase name (`up` / `draining` / `down`).
    pub fn name(self) -> &'static str {
        match self {
            ConnHealth::Up => "up",
            ConnHealth::Draining => "draining",
            ConnHealth::Down => "down",
        }
    }
}

impl fmt::Display for ConnHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One wire lifecycle event, delivered to registered observers (the
/// resilience layer taps these so circuit/ladder decisions see
/// wire-level causes; see `ResilienceMediator::wire_observer` in the
/// weaver crate).
#[derive(Debug, Clone)]
pub struct WireEvent {
    /// Which lifecycle step (one of the `Wire*` flight kinds).
    pub kind: FlightEventKind,
    /// The peer the event concerns.
    pub peer: NodeId,
    /// Human-readable detail (endpoint, error, backoff…).
    pub detail: String,
}

/// Callback invoked on every wire lifecycle event. Called with **no
/// wire locks held**, so observers may take locks of any rank.
pub type WireObserver = Arc<dyn Fn(&WireEvent) + Send + Sync>;

/// The ORB's pluggable network boundary; see the [module docs](self).
pub trait WireTransport: Send + Sync {
    /// This transport's node identity.
    fn node(&self) -> NodeId;

    /// The endpoint remote peers can dial to reach this transport
    /// (published in IOR tagged profiles by `Orb::activate`).
    fn local_endpoint(&self) -> Endpoint;

    /// Teach the transport how to reach `node`. Socket backends keep
    /// the **whole ordered list** of dialable endpoints and fail over
    /// across it; re-registering with a *different* list drops any
    /// pooled connection so the next send re-dials (how a restarted
    /// peer at a new address is re-bound).
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] if no listed endpoint kind is dialable
    /// by this backend.
    fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError>;

    /// Send one frame to `dst`, whole or not at all. Socket backends
    /// enqueue into the peer's bounded outbox and return; delivery is
    /// asynchronous, with redial-on-failure handled by the writer.
    ///
    /// # Errors
    ///
    /// [`WireError::Unreachable`] without a route, [`WireError::Io`] on
    /// a persistent socket failure, [`WireError::Backpressure`] when
    /// the outbox bound rejects the frame, [`WireError::Closed`] after
    /// shutdown.
    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError>;

    /// Block until a frame arrives. An empty payload is a wakeup poke.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] once the transport is shut down.
    fn recv(&self) -> Result<WireFrame, WireError>;

    /// Take one already-queued frame without blocking; `Ok(None)` when
    /// the inbox is empty right now. The ORB's receive loop uses this
    /// to drain bursts after a blocking `recv` woke it, so dispatchers
    /// get one wakeup per burst instead of one per frame. Backends
    /// without a pollable inbox keep the default (always empty), which
    /// degrades to frame-at-a-time delivery.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] once the transport is shut down.
    fn try_recv(&self) -> Result<Option<WireFrame>, WireError> {
        Ok(None)
    }

    /// Wake one blocked [`WireTransport::recv`] with an empty frame.
    fn poke(&self);

    /// Stop the transport: close connections and listeners, wake every
    /// blocked `recv`. Idempotent.
    fn shutdown(&self);

    /// Land wire lifecycle events (dial, redial, failover,
    /// backpressure-shed, conn-reset) in `flight`. The ORB attaches its
    /// own recorder at start; backends without lifecycle events ignore
    /// this. First attachment wins.
    fn attach_flight(&self, _flight: &FlightRecorder) {}

    /// Per-peer connection health, sorted by node id. Backends without
    /// pooled connections report nothing.
    fn peer_health(&self) -> Vec<(NodeId, ConnHealth)> {
        Vec::new()
    }

    /// Register an observer for wire lifecycle events. Backends without
    /// lifecycle events ignore this.
    fn add_wire_observer(&self, _obs: WireObserver) {}
}

// ---------------------------------------------------------------------
// netsim backend
// ---------------------------------------------------------------------

/// The deterministic default backend: a [`netsim::NetHandle`] behind the
/// [`WireTransport`] boundary. Frames ride simulator messages unchanged,
/// so link models, loss, fault injection and the virtual clock all apply
/// exactly as before the wire boundary existed.
pub struct NetSimTransport {
    handle: NetHandle,
    closed: AtomicBool,
}

impl NetSimTransport {
    /// Wrap an attached simulator handle.
    pub fn new(handle: NetHandle) -> NetSimTransport {
        NetSimTransport { handle, closed: AtomicBool::new(false) }
    }

    /// The wrapped handle (virtual clock, name, …).
    pub fn handle(&self) -> &NetHandle {
        &self.handle
    }
}

impl WireTransport for NetSimTransport {
    fn node(&self) -> NodeId {
        self.handle.id()
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::Sim(self.handle.id())
    }

    fn register_peer(&self, _node: NodeId, _endpoints: &[Endpoint]) -> Result<(), WireError> {
        // The simulator routes by NodeId; every attached node is
        // reachable by identity alone.
        Ok(())
    }

    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        self.handle.send(dst, frame).map_err(|e| WireError::Unreachable(e.to_string()))
    }

    fn recv(&self) -> Result<WireFrame, WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let msg = self.handle.recv().map_err(|_| WireError::Closed)?;
        if self.closed.load(Ordering::SeqCst) {
            // Chain the wakeup: another receiver may still be blocked on
            // the one poke shutdown() sent.
            self.handle.poke();
            return Err(WireError::Closed);
        }
        Ok(WireFrame {
            src: msg.src,
            transit_us: msg.transit().as_micros(),
            payload: msg.payload,
        })
    }

    fn try_recv(&self) -> Result<Option<WireFrame>, WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        match self.handle.try_recv() {
            Ok(msg) => Ok(Some(WireFrame {
                src: msg.src,
                transit_us: msg.transit().as_micros(),
                payload: msg.payload,
            })),
            Err(netsim::RecvError::Empty) => Ok(None),
            Err(_) => Err(WireError::Closed),
        }
    }

    fn poke(&self) {
        self.handle.poke();
    }

    fn shutdown(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.handle.poke();
        }
    }
}

// ---------------------------------------------------------------------
// socket backends (TCP + Unix-domain)
// ---------------------------------------------------------------------

/// A connected stream of either address family.
enum SocketStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
            SocketStream::Uds(s) => s.try_clone().map(SocketStream::Uds),
        }
    }

    fn shutdown_both(&self) {
        match self {
            SocketStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            SocketStream::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Uds(s) => s.flush(),
        }
    }
}

enum SocketListener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl SocketListener {
    fn accept(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketListener::Tcp(l) => l.accept().map(|(s, _)| {
                // Replies ride back over accepted streams; without
                // NODELAY they stall ~40ms on Nagle + delayed ACK.
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }),
            SocketListener::Uds(l) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
        }
    }
}

/// Why an enqueue did not accept the frame.
enum EnqueueFail {
    /// The connection closed under us; the caller may retry on a fresh
    /// one (the frame is handed back).
    ConnClosed,
    /// Shed policy, outbox full.
    Shed,
    /// Block policy, deadline passed without space.
    Deadline,
}

/// The bounded frame queue between senders and one writer thread.
struct Outbox {
    q: VecDeque<Vec<u8>>,
    bytes: usize,
    /// Cleared by [`Conn::close`]; the writer drains out and exits.
    open: bool,
}

/// One pooled connection: the bounded outbox senders enqueue into, the
/// condvars pairing it with the writer thread, and a control clone of
/// the current stream so `close()` can unblock a writer stuck in
/// `write_all`. The read half lives on a reader thread holding its own
/// stream clone; all halves share the OS socket, so shutting one down
/// unblocks the others.
struct Conn {
    peer: NodeId,
    outbox: OrderedMutex<Outbox>,
    /// Signalled when a frame lands in the outbox (writer waits here).
    data: OrderedCondvar,
    /// Signalled when the writer frees space (blocked senders wait here).
    space: OrderedCondvar,
    /// Clone of the *current* stream, for shutdown from other threads;
    /// the writer replaces it after a successful redial.
    ctl: OrderedMutex<Option<SocketStream>>,
    closed: AtomicBool,
}

impl Conn {
    fn new(peer: NodeId) -> Conn {
        Conn {
            peer,
            outbox: OrderedMutex::new(
                LockRank::WireOutbox,
                Outbox { q: VecDeque::new(), bytes: 0, open: true },
            ),
            data: OrderedCondvar::new(),
            space: OrderedCondvar::new(),
            ctl: OrderedMutex::new(LockRank::WireConn, None),
            closed: AtomicBool::new(false),
        }
    }

    fn set_ctl(&self, stream: SocketStream) {
        *self.ctl.lock() = Some(stream);
    }

    /// Close the connection: mark the outbox closed (waking the writer
    /// and any blocked senders) and shut the socket down so a writer
    /// stuck mid-`write_all` unblocks. Idempotent.
    fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut ob = self.outbox.lock();
            ob.open = false;
        }
        self.data.notify_all();
        self.space.notify_all();
        if let Some(stream) = self.ctl.lock().as_ref() {
            stream.shutdown_both();
        }
    }

    /// Queue `frame` for the writer thread, applying the outbox bounds
    /// and backpressure policy. A frame larger than the byte bound is
    /// still accepted when the queue is empty (MAX_WIRE_FRAME is the
    /// hard cap). On failure the frame is handed back untouched.
    fn enqueue(&self, frame: Vec<u8>, cfg: &WireConfig) -> Result<(), (Vec<u8>, EnqueueFail)> {
        let deadline = match cfg.backpressure {
            BackpressurePolicy::Block { deadline } => Some(Instant::now() + deadline),
            BackpressurePolicy::Shed => None,
        };
        let mut ob = self.outbox.lock();
        loop {
            if !ob.open {
                return Err((frame, EnqueueFail::ConnClosed));
            }
            let fits = ob.q.is_empty()
                || (ob.q.len() < cfg.outbox_frames
                    && ob.bytes.saturating_add(frame.len()) <= cfg.outbox_bytes);
            if fits {
                break;
            }
            match deadline {
                None => return Err((frame, EnqueueFail::Shed)),
                Some(deadline) => {
                    if self.space.wait_until(&mut ob, deadline) {
                        return Err((frame, EnqueueFail::Deadline));
                    }
                }
            }
        }
        ob.bytes += frame.len();
        ob.q.push_back(frame);
        drop(ob);
        self.data.notify_one();
        Ok(())
    }

    /// Writer side: block until a frame is queued or the connection
    /// closes. Frees space (and wakes blocked senders) on pop.
    fn next_frame(&self) -> Option<Vec<u8>> {
        let mut ob = self.outbox.lock();
        loop {
            if let Some(frame) = ob.q.pop_front() {
                ob.bytes -= frame.len();
                drop(ob);
                self.space.notify_all();
                return Some(frame);
            }
            if !ob.open {
                return None;
            }
            self.data.wait(&mut ob);
        }
    }

    /// Current queue depth, `(frames, bytes)`.
    fn depth(&self) -> (usize, usize) {
        let ob = self.outbox.lock();
        (ob.q.len(), ob.bytes)
    }
}

/// Route to one peer: the ordered endpoint list from its IOR, a
/// consecutive-failure score per endpoint, and which one is active.
struct PeerRoute {
    endpoints: Vec<Endpoint>,
    fails: Vec<u32>,
    active: usize,
}

/// Peer registry + connection pool + health map, under
/// [`LockRank::WireState`].
struct WireState {
    peers: HashMap<NodeId, PeerRoute>,
    conns: HashMap<NodeId, Arc<Conn>>,
    health: HashMap<NodeId, ConnHealth>,
}

struct SocketInner {
    node: NodeId,
    local: Endpoint,
    config: WireConfig,
    state: OrderedRwLock<WireState>,
    inbox_tx: Sender<WireFrame>,
    inbox_rx: Receiver<WireFrame>,
    closed: AtomicBool,
    flight: OnceLock<FlightRecorder>,
    observers: OrderedMutex<Vec<WireObserver>>,
    jitter: AtomicU64,
    frame_errors: AtomicU64,
}

impl SocketInner {
    /// Record a lifecycle event in the attached flight recorder and fan
    /// it out to observers. Must be called with **no wire locks held**
    /// (observers may take locks of any rank).
    fn emit(&self, kind: FlightEventKind, peer: NodeId, detail: String) {
        if let Some(flight) = self.flight.get() {
            flight.record_detail(kind, "wire", None, detail.clone());
        }
        let observers: Vec<WireObserver> = self.observers.lock().clone();
        if !observers.is_empty() {
            let event = WireEvent { kind, peer, detail };
            for obs in &observers {
                obs(&event);
            }
        }
    }

    /// Drop `conn` from the pool — but only if the slot still holds this
    /// very connection (a racing redial may already have replaced it) —
    /// and close it either way. Marks the peer `Down` when the slot was
    /// actually vacated.
    fn drop_conn(&self, node: NodeId, conn: &Arc<Conn>) {
        let removed = {
            let mut state = self.state.write();
            let removed = match state.conns.get(&node) {
                Some(current) if Arc::ptr_eq(current, conn) => {
                    state.conns.remove(&node);
                    true
                }
                _ => false,
            };
            if removed {
                state.health.insert(node, ConnHealth::Down);
            }
            removed
        };
        conn.close();
        let _ = removed;
    }

    /// Deterministic jitter: scale `d` to 50–100 % using an xorshift
    /// sequence (data races on the seed are harmless — any interleaving
    /// is still a valid sequence).
    fn jittered(&self, d: Duration) -> Duration {
        let mut x = self.jitter.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter.store(x, Ordering::Relaxed);
        let percent = 50 + (x % 51) as u32; // 50..=100
        d * percent / 100
    }
}

/// The engine shared by [`TcpTransport`] and [`UdsTransport`]: a
/// listener ("reactor") thread accepting peers, one reader thread per
/// connection feeding a common inbox, and per-peer pooled connections
/// each drained by a writer thread from a bounded outbox
/// ([`WireConfig`], [`BackpressurePolicy`]). Failed writes redial with
/// capped exponential backoff + jitter across the peer's registered
/// endpoint list (health-scored failover).
///
/// Framing on the stream is a `u32` little-endian length prefix followed
/// by exactly the bytes the ORB's `giop::frame_*` path produced — the
/// single-allocation frame *is* the wire payload, no re-encode. A new
/// connection opens with a 9-byte hello (`MAQW`, version, dialer's
/// `NodeId`) so the acceptor learns which identity the stream speaks
/// for and can route replies back over it.
pub struct SocketTransport {
    inner: Arc<SocketInner>,
}

impl SocketTransport {
    /// Bind a TCP listener on `addr` (e.g. `127.0.0.1:0`) and start the
    /// accept thread, with default [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn tcp(node: NodeId, addr: &str) -> Result<SocketTransport, WireError> {
        SocketTransport::tcp_with(node, addr, WireConfig::default())
    }

    /// Bind a TCP listener with explicit [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn tcp_with(
        node: NodeId,
        addr: &str,
        config: WireConfig,
    ) -> Result<SocketTransport, WireError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| WireError::Io(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| WireError::Io(e.to_string()))?
            .to_string();
        SocketTransport::start(node, Endpoint::Tcp(local), SocketListener::Tcp(listener), config)
    }

    /// Bind a Unix-domain listener on `path` and start the accept
    /// thread, with default [`WireConfig`]. A stale socket file from a
    /// previous run is removed first, which is what lets a restarted
    /// peer rebind the same endpoint.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn uds(node: NodeId, path: &str) -> Result<SocketTransport, WireError> {
        SocketTransport::uds_with(node, path, WireConfig::default())
    }

    /// Bind a Unix-domain listener with explicit [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn uds_with(
        node: NodeId,
        path: &str,
        config: WireConfig,
    ) -> Result<SocketTransport, WireError> {
        if std::fs::metadata(path).is_ok() {
            let _ = std::fs::remove_file(path);
        }
        let listener =
            UnixListener::bind(path).map_err(|e| WireError::Io(format!("bind {path}: {e}")))?;
        SocketTransport::start(
            node,
            Endpoint::Uds(path.to_string()),
            SocketListener::Uds(listener),
            config,
        )
    }

    fn start(
        node: NodeId,
        local: Endpoint,
        listener: SocketListener,
        config: WireConfig,
    ) -> Result<SocketTransport, WireError> {
        let (inbox_tx, inbox_rx) = unbounded::<WireFrame>();
        let seed = if config.jitter_seed != 0 {
            config.jitter_seed
        } else {
            // Any nonzero value works; mix the node id so two nodes with
            // default config do not share a jitter sequence.
            0x9E37_79B9_7F4A_7C15 ^ u64::from(node.0)
        };
        let inner = Arc::new(SocketInner {
            node,
            local,
            config,
            state: OrderedRwLock::new(
                LockRank::WireState,
                WireState { peers: HashMap::new(), conns: HashMap::new(), health: HashMap::new() },
            ),
            inbox_tx,
            inbox_rx,
            closed: AtomicBool::new(false),
            flight: OnceLock::new(),
            observers: OrderedMutex::new(LockRank::WireObservers, Vec::new()),
            jitter: AtomicU64::new(seed),
            frame_errors: AtomicU64::new(0),
        });
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("wire-accept-{}", inner.node.0))
                .spawn(move || SocketTransport::accept_loop(&inner, listener))
                .map_err(|e| WireError::Io(format!("spawn accept thread: {e}")))?;
        }
        Ok(SocketTransport { inner })
    }

    /// The endpoint actually bound (with the OS-assigned port resolved).
    pub fn local_endpoint(&self) -> Endpoint {
        self.inner.local.clone()
    }

    /// Outbox depth for the pooled connection to `peer`, `(frames,
    /// bytes)`; `(0, 0)` without a pooled connection. Memory-boundedness
    /// evidence for tests and dashboards.
    pub fn outbox_depth(&self, peer: NodeId) -> (usize, usize) {
        let conn = {
            let state = self.inner.state.read();
            state.conns.get(&peer).cloned()
        };
        conn.map_or((0, 0), |c| c.depth())
    }

    /// Framing-protocol violations seen on the receive path (oversize
    /// or zero length prefixes, frames torn mid-body). Each one killed
    /// exactly one connection.
    pub fn frame_errors(&self) -> u64 {
        self.inner.frame_errors.load(Ordering::Relaxed)
    }

    fn accept_loop(inner: &Arc<SocketInner>, listener: SocketListener) {
        loop {
            let stream = match listener.accept() {
                Ok(s) => s,
                Err(_) => {
                    if inner.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if inner.closed.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(inner);
            let _ = std::thread::Builder::new()
                .name(format!("wire-read-{}", inner.node.0))
                .spawn(move || SocketTransport::serve_accepted(&inner, stream));
        }
        // Listener dropped here. The UDS socket file is reaped by
        // shutdown(), not here: this thread wakes asynchronously, and a
        // restarted peer may already have rebound the same path — reaping
        // late would unlink the *new* incarnation's file.
    }

    /// Read the dialer's hello, pool the stream for the reply direction
    /// — **replacing** any previously pooled connection for that peer
    /// (a fresh hello is positive evidence of a new incarnation; the
    /// stale write half would make one send fail before redial) — then
    /// pump frames into the inbox until the peer hangs up.
    fn serve_accepted(inner: &Arc<SocketInner>, mut stream: SocketStream) {
        let mut hello = [0u8; 9];
        if stream.read_exact(&mut hello).is_err()
            || hello[0..4] != WIRE_MAGIC
            || hello[4] != WIRE_VERSION
        {
            stream.shutdown_both();
            return;
        }
        let peer = NodeId(u32::from_le_bytes([hello[5], hello[6], hello[7], hello[8]]));
        let (writer, ctl) = match (stream.try_clone(), stream.try_clone()) {
            (Ok(w), Ok(c)) => (w, c),
            _ => {
                stream.shutdown_both();
                return;
            }
        };
        let conn = Arc::new(Conn::new(peer));
        conn.set_ctl(ctl);
        let superseded = {
            let mut state = inner.state.write();
            let old = state.conns.insert(peer, Arc::clone(&conn));
            state.health.insert(peer, ConnHealth::Up);
            old
        };
        if let Some(old) = superseded {
            old.close();
            inner.emit(
                FlightEventKind::WireConnReset,
                peer,
                format!("stale pooled connection to node {} superseded by reconnect", peer.0),
            );
        }
        {
            let inner = Arc::clone(inner);
            let conn = Arc::clone(&conn);
            let _ = std::thread::Builder::new()
                .name(format!("wire-write-{}", inner.node.0))
                .spawn(move || SocketTransport::writer_loop(&inner, &conn, writer));
        }
        SocketTransport::read_frames(inner, stream, peer, &conn);
    }

    /// Pump length-prefixed frames off `stream` into the inbox. A
    /// framing violation (bad prefix, torn body) is a typed
    /// [`WireError::Frame`] that kills **this connection only**; a
    /// clean EOF just ends the reader — the write half stays pooled and
    /// the writer discovers (and redials) on its next send.
    fn read_frames(
        inner: &Arc<SocketInner>,
        mut stream: SocketStream,
        peer: NodeId,
        conn: &Arc<Conn>,
    ) {
        let mut len_buf = [0u8; 4];
        loop {
            if stream.read_exact(&mut len_buf).is_err() {
                // Peer closed or reset: no protocol violation, just the
                // end of this stream.
                return;
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if len == 0 || len > MAX_WIRE_FRAME {
                let err = WireError::Frame(format!(
                    "bad length prefix {len} from node {} (cap {MAX_WIRE_FRAME})",
                    peer.0
                ));
                SocketTransport::kill_conn_for_frame_error(inner, peer, conn, &err);
                return;
            }
            let mut body = vec![0u8; len];
            if stream.read_exact(&mut body).is_err() {
                let err = WireError::Frame(format!(
                    "torn frame from node {}: stream ended inside a {len}-byte body",
                    peer.0
                ));
                SocketTransport::kill_conn_for_frame_error(inner, peer, conn, &err);
                return;
            }
            let frame = WireFrame { src: peer, payload: Bytes::from(body), transit_us: 0 };
            if inner.inbox_tx.send(frame).is_err() {
                return;
            }
        }
    }

    fn kill_conn_for_frame_error(
        inner: &Arc<SocketInner>,
        peer: NodeId,
        conn: &Arc<Conn>,
        err: &WireError,
    ) {
        inner.frame_errors.fetch_add(1, Ordering::Relaxed);
        inner.drop_conn(peer, conn);
        inner.emit(FlightEventKind::WireConnReset, peer, err.to_string());
    }

    /// Dial `endpoint` and send the hello; the caller wires the stream
    /// into a connection (reader thread, ctl clone, writer).
    fn dial_stream(inner: &Arc<SocketInner>, endpoint: &Endpoint) -> Result<SocketStream, WireError> {
        let mut stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)
                    .map_err(|e| WireError::Unreachable(format!("dial {addr}: {e}")))?;
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }
            Endpoint::Uds(path) => SocketStream::Uds(
                UnixStream::connect(path)
                    .map_err(|e| WireError::Unreachable(format!("dial {path}: {e}")))?,
            ),
            Endpoint::Sim(_) => {
                return Err(WireError::Unsupported(format!(
                    "socket transport cannot dial {endpoint}"
                )))
            }
        };
        let mut hello = [0u8; 9];
        hello[0..4].copy_from_slice(&WIRE_MAGIC);
        hello[4] = WIRE_VERSION;
        hello[5..9].copy_from_slice(&inner.node.0.to_le_bytes());
        stream.write_all(&hello).map_err(|e| WireError::Io(format!("hello: {e}")))?;
        Ok(stream)
    }

    /// Walk `dst`'s endpoint list health-first (fewest consecutive
    /// failures, list order as tie-break) and dial until one answers.
    /// Returns the stream, the endpoint, and whether the active
    /// endpoint changed (a failover).
    fn dial_walk(
        inner: &Arc<SocketInner>,
        dst: NodeId,
    ) -> Result<(SocketStream, Endpoint, bool), WireError> {
        let candidates: Vec<(usize, Endpoint)> = {
            let state = inner.state.read();
            let route = state.peers.get(&dst).ok_or_else(|| {
                WireError::Unreachable(format!("no endpoint registered for node {}", dst.0))
            })?;
            let mut order: Vec<usize> = (0..route.endpoints.len()).collect();
            order.sort_by_key(|&i| (route.fails[i], i));
            order.into_iter().map(|i| (i, route.endpoints[i].clone())).collect()
        };
        let mut last_err =
            WireError::Unreachable(format!("no endpoint registered for node {}", dst.0));
        for (idx, endpoint) in candidates {
            match SocketTransport::dial_stream(inner, &endpoint) {
                Ok(stream) => {
                    let failover = {
                        let mut state = inner.state.write();
                        state.health.insert(dst, ConnHealth::Up);
                        match state.peers.get_mut(&dst) {
                            Some(route) => {
                                route.fails[idx] = 0;
                                let failover = route.active != idx;
                                route.active = idx;
                                failover
                            }
                            None => false,
                        }
                    };
                    return Ok((stream, endpoint, failover));
                }
                Err(e) => {
                    let mut state = inner.state.write();
                    if let Some(route) = state.peers.get_mut(&dst) {
                        route.fails[idx] = route.fails[idx].saturating_add(1);
                    }
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Spawn a reader thread pumping `stream` (a read clone) into the
    /// inbox on behalf of `conn`.
    fn attach_reader(inner: &Arc<SocketInner>, conn: &Arc<Conn>, stream: SocketStream) {
        let inner = Arc::clone(inner);
        let conn = Arc::clone(conn);
        let peer = conn.peer;
        let _ = std::thread::Builder::new()
            .name(format!("wire-read-{}", inner.node.0))
            .spawn(move || SocketTransport::read_frames(&inner, stream, peer, &conn));
    }

    /// The pooled connection to `dst`, dialing one (with failover walk)
    /// if none exists.
    fn get_or_dial(&self, dst: NodeId) -> Result<Arc<Conn>, WireError> {
        {
            let state = self.inner.state.read();
            if let Some(conn) = state.conns.get(&dst) {
                return Ok(Arc::clone(conn));
            }
            if !state.peers.contains_key(&dst) {
                return Err(WireError::Unreachable(format!(
                    "no endpoint registered for node {}",
                    dst.0
                )));
            }
        }
        // Dial outside the state lock — connects can block.
        let (stream, endpoint, failover) = SocketTransport::dial_walk(&self.inner, dst)?;
        let reader = stream.try_clone().map_err(|e| WireError::Io(e.to_string()))?;
        let ctl = stream.try_clone().map_err(|e| WireError::Io(e.to_string()))?;
        let conn = Arc::new(Conn::new(dst));
        conn.set_ctl(ctl);
        let lost_race = {
            let mut state = self.inner.state.write();
            if let Some(existing) = state.conns.get(&dst) {
                Some(Arc::clone(existing))
            } else {
                state.conns.insert(dst, Arc::clone(&conn));
                state.health.insert(dst, ConnHealth::Up);
                None
            }
        };
        if let Some(existing) = lost_race {
            // Lost the race; keep the established one and retire ours
            // (no reader/writer were spawned for it yet).
            stream.shutdown_both();
            return Ok(existing);
        }
        SocketTransport::attach_reader(&self.inner, &conn, reader);
        {
            let inner = Arc::clone(&self.inner);
            let conn = Arc::clone(&conn);
            let _ = std::thread::Builder::new()
                .name(format!("wire-write-{}", inner.node.0))
                .spawn(move || SocketTransport::writer_loop(&inner, &conn, stream));
        }
        self.inner.emit(FlightEventKind::WireDial, dst, format!("dialed node {} at {endpoint}", dst.0));
        if failover {
            self.inner.emit(
                FlightEventKind::WireFailover,
                dst,
                format!("failed over node {} to {endpoint}", dst.0),
            );
        }
        Ok(conn)
    }

    fn write_frame(stream: &mut SocketStream, frame: &[u8]) -> std::io::Result<()> {
        let len = frame.len() as u32;
        stream.write_all(&len.to_le_bytes())?;
        stream.write_all(frame)?;
        stream.flush()
    }

    /// Drain `conn`'s outbox onto its stream; on a failed write, redial
    /// with backoff + jitter across the endpoint list and retry the
    /// in-flight frame once on the fresh stream. Exits when the
    /// connection closes or recovery is exhausted.
    fn writer_loop(inner: &Arc<SocketInner>, conn: &Arc<Conn>, mut stream: SocketStream) {
        while let Some(frame) = conn.next_frame() {
            match SocketTransport::write_frame(&mut stream, &frame) {
                Ok(()) => continue,
                Err(first) => {
                    {
                        let mut state = inner.state.write();
                        state.health.insert(conn.peer, ConnHealth::Draining);
                    }
                    inner.emit(
                        FlightEventKind::WireConnReset,
                        conn.peer,
                        format!("write to node {} failed: {first}; redialing", conn.peer.0),
                    );
                    match SocketTransport::redial(inner, conn) {
                        Some(mut fresh) => {
                            // The peer may or may not have seen the torn
                            // write; retry once on the fresh stream (the
                            // same at-most-once window the old one-shot
                            // redial had).
                            if SocketTransport::write_frame(&mut fresh, &frame).is_err() {
                                SocketTransport::give_up(inner, conn, "write failed again on a fresh connection");
                                return;
                            }
                            stream = fresh;
                        }
                        None => {
                            SocketTransport::give_up(inner, conn, "redial exhausted");
                            return;
                        }
                    }
                }
            }
        }
        // Outbox closed cleanly (shutdown, eviction, or supersession).
    }

    fn give_up(inner: &Arc<SocketInner>, conn: &Arc<Conn>, why: &str) {
        inner.drop_conn(conn.peer, conn);
        inner.emit(
            FlightEventKind::WireConnReset,
            conn.peer,
            format!("connection to node {} abandoned: {why}", conn.peer.0),
        );
    }

    /// Redial `conn`'s peer under the configured [`WireConfig::redial`]
    /// schedule (capped exponential backoff, jittered), walking the
    /// endpoint list health-first on each attempt. On success the fresh
    /// stream's read half is attached and the ctl clone replaced; the
    /// caller (the writer thread) keeps the write half.
    fn redial(inner: &Arc<SocketInner>, conn: &Arc<Conn>) -> Option<SocketStream> {
        let policy = inner.config.redial.clone();
        let attempts = policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            if inner.closed.load(Ordering::SeqCst) || conn.closed.load(Ordering::SeqCst) {
                return None;
            }
            match SocketTransport::dial_walk(inner, conn.peer) {
                Ok((stream, endpoint, failover)) => {
                    let (reader, ctl) = match (stream.try_clone(), stream.try_clone()) {
                        (Ok(r), Ok(c)) => (r, c),
                        _ => {
                            stream.shutdown_both();
                            return None;
                        }
                    };
                    conn.set_ctl(ctl);
                    if conn.closed.load(Ordering::SeqCst) {
                        // Closed while we were dialing (shutdown or
                        // supersession); don't resurrect.
                        stream.shutdown_both();
                        return None;
                    }
                    SocketTransport::attach_reader(inner, conn, reader);
                    inner.emit(
                        FlightEventKind::WireRedial,
                        conn.peer,
                        format!(
                            "re-established node {} at {endpoint} (attempt {attempt})",
                            conn.peer.0
                        ),
                    );
                    if failover {
                        inner.emit(
                            FlightEventKind::WireFailover,
                            conn.peer,
                            format!("failed over node {} to {endpoint}", conn.peer.0),
                        );
                    }
                    return Some(stream);
                }
                Err(e) => {
                    if attempt == attempts {
                        inner.emit(
                            FlightEventKind::WireRedial,
                            conn.peer,
                            format!("redial node {} attempt {attempt}/{attempts} failed: {e}", conn.peer.0),
                        );
                        break;
                    }
                    let mut backoff = policy.backoff(attempt);
                    if inner.config.redial_jitter {
                        backoff = inner.jittered(backoff);
                    }
                    inner.emit(
                        FlightEventKind::WireRedial,
                        conn.peer,
                        format!(
                            "redial node {} attempt {attempt}/{attempts} failed: {e}; backing off {backoff:?}",
                            conn.peer.0
                        ),
                    );
                    // Sleep in slices so shutdown isn't held up by a
                    // long backoff.
                    let deadline = Instant::now() + backoff;
                    while Instant::now() < deadline {
                        if inner.closed.load(Ordering::SeqCst) || conn.closed.load(Ordering::SeqCst)
                        {
                            return None;
                        }
                        std::thread::sleep(
                            (deadline - Instant::now()).min(Duration::from_millis(20)),
                        );
                    }
                }
            }
        }
        None
    }
}

impl WireTransport for SocketTransport {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn local_endpoint(&self) -> Endpoint {
        self.inner.local.clone()
    }

    fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError> {
        let dialable: Vec<Endpoint> = endpoints
            .iter()
            .filter(|e| matches!(e, Endpoint::Tcp(_) | Endpoint::Uds(_)))
            .cloned()
            .collect();
        if dialable.is_empty() {
            return Err(WireError::Unsupported(format!(
                "no dialable endpoint for node {} in {endpoints:?}",
                node.0
            )));
        }
        let stale = {
            let mut state = self.inner.state.write();
            let changed =
                state.peers.get(&node).is_none_or(|route| route.endpoints != dialable);
            if changed {
                let n = dialable.len();
                state
                    .peers
                    .insert(node, PeerRoute { endpoints: dialable, fails: vec![0; n], active: 0 });
                state.conns.remove(&node)
            } else {
                None
            }
        };
        if let Some(conn) = stale {
            conn.close();
            self.inner.emit(
                FlightEventKind::WireConnReset,
                node,
                format!("node {} re-registered with a new endpoint list; pooled connection evicted", node.0),
            );
        }
        Ok(())
    }

    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let mut frame = frame;
        // Two passes: if the pooled connection closes under us (writer
        // gave up, eviction raced in) the frame is handed back and we
        // retry once on a fresh dial.
        for _ in 0..2 {
            let conn = self.get_or_dial(dst)?;
            match conn.enqueue(frame, &self.inner.config) {
                Ok(()) => return Ok(()),
                Err((f, EnqueueFail::ConnClosed)) => {
                    frame = f;
                    self.inner.drop_conn(dst, &conn);
                }
                Err((f, fail)) => {
                    let (frames, bytes) = conn.depth();
                    let why = match fail {
                        EnqueueFail::Shed => "shed",
                        _ => "block deadline passed",
                    };
                    let detail = format!(
                        "outbox to node {} full ({frames} frames / {bytes} bytes, caps {} / {}): {why}, frame of {} bytes rejected",
                        dst.0,
                        self.inner.config.outbox_frames,
                        self.inner.config.outbox_bytes,
                        f.len(),
                    );
                    self.inner.emit(FlightEventKind::WireBackpressureShed, dst, detail.clone());
                    return Err(WireError::Backpressure(detail));
                }
            }
        }
        Err(WireError::Io(format!("connection to node {} kept closing while enqueueing", dst.0)))
    }

    fn recv(&self) -> Result<WireFrame, WireError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let frame = self.inner.inbox_rx.recv().map_err(|_| WireError::Closed)?;
        if self.inner.closed.load(Ordering::SeqCst) {
            // Chain the wakeup: another receiver may still be blocked on
            // the one poke shutdown() sent.
            self.poke();
            return Err(WireError::Closed);
        }
        Ok(frame)
    }

    fn try_recv(&self) -> Result<Option<WireFrame>, WireError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        match self.inner.inbox_rx.try_recv() {
            Ok(frame) => {
                if self.inner.closed.load(Ordering::SeqCst) {
                    self.poke();
                    return Err(WireError::Closed);
                }
                Ok(Some(frame))
            }
            Err(_) => Ok(None),
        }
    }

    fn poke(&self) {
        let _ = self.inner.inbox_tx.send(WireFrame {
            src: self.inner.node,
            payload: Bytes::new(),
            transit_us: 0,
        });
    }

    fn shutdown(&self) {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake blocked receivers first, then tear connections down
        // (closing each outbox stops its writer thread).
        self.poke();
        let conns: Vec<Arc<Conn>> = {
            let mut state = self.inner.state.write();
            state.health.clear();
            state.conns.drain().map(|(_, c)| c).collect()
        };
        for conn in conns {
            conn.close();
        }
        // Unblock the accept loop with a throwaway self-connection; it
        // re-checks the closed flag and exits.
        match &self.inner.local {
            Endpoint::Tcp(addr) => {
                if let Ok(s) = TcpStream::connect(addr) {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }
            Endpoint::Uds(path) => {
                if let Ok(s) = UnixStream::connect(path) {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
                // Reap the socket file now, synchronously: once shutdown
                // returns the path must be free for a fresh bind, and the
                // accept thread (which used to reap on exit) wakes too
                // late — it could unlink a rebound incarnation's file.
                let _ = std::fs::remove_file(path);
            }
            Endpoint::Sim(_) => {}
        }
    }

    fn attach_flight(&self, flight: &FlightRecorder) {
        let _ = self.inner.flight.set(flight.clone());
    }

    fn peer_health(&self) -> Vec<(NodeId, ConnHealth)> {
        let state = self.inner.state.read();
        let mut health: Vec<(NodeId, ConnHealth)> =
            state.health.iter().map(|(n, h)| (*n, *h)).collect();
        health.sort_by_key(|(n, _)| n.0);
        health
    }

    fn add_wire_observer(&self, obs: WireObserver) {
        self.inner.observers.lock().push(obs);
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Only the last owner tears the engine down (clones of the
        // public wrappers share `inner` via Arc in Orb).
        if Arc::strong_count(&self.inner) == 1 {
            self.shutdown();
        }
    }
}

/// Real TCP: the [`SocketTransport`] engine bound to a TCP listener.
pub struct TcpTransport {
    core: SocketTransport,
}

impl TcpTransport {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) with
    /// default [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind(node: NodeId, addr: &str) -> Result<TcpTransport, WireError> {
        Ok(TcpTransport { core: SocketTransport::tcp(node, addr)? })
    }

    /// Bind `addr` with explicit [`WireConfig`] (outbox bounds,
    /// backpressure policy, redial schedule).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind_with(node: NodeId, addr: &str, config: WireConfig) -> Result<TcpTransport, WireError> {
        Ok(TcpTransport { core: SocketTransport::tcp_with(node, addr, config)? })
    }

    /// The `host:port` actually bound.
    pub fn local_addr(&self) -> String {
        match self.core.local_endpoint() {
            Endpoint::Tcp(addr) => addr,
            other => other.to_string(),
        }
    }

    /// Outbox depth for the pooled connection to `peer`, `(frames, bytes)`.
    pub fn outbox_depth(&self, peer: NodeId) -> (usize, usize) {
        self.core.outbox_depth(peer)
    }

    /// Framing-protocol violations seen on the receive path.
    pub fn frame_errors(&self) -> u64 {
        self.core.frame_errors()
    }
}

/// Unix-domain sockets: the [`SocketTransport`] engine bound to a
/// filesystem path.
pub struct UdsTransport {
    core: SocketTransport,
}

impl UdsTransport {
    /// Bind the socket file at `path` (stale files are removed first)
    /// with default [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind(node: NodeId, path: &str) -> Result<UdsTransport, WireError> {
        Ok(UdsTransport { core: SocketTransport::uds(node, path)? })
    }

    /// Bind `path` with explicit [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind_with(node: NodeId, path: &str, config: WireConfig) -> Result<UdsTransport, WireError> {
        Ok(UdsTransport { core: SocketTransport::uds_with(node, path, config)? })
    }

    /// Outbox depth for the pooled connection to `peer`, `(frames, bytes)`.
    pub fn outbox_depth(&self, peer: NodeId) -> (usize, usize) {
        self.core.outbox_depth(peer)
    }

    /// Framing-protocol violations seen on the receive path.
    pub fn frame_errors(&self) -> u64 {
        self.core.frame_errors()
    }
}

macro_rules! delegate_wire {
    ($ty:ty) => {
        impl WireTransport for $ty {
            fn node(&self) -> NodeId {
                self.core.node()
            }
            fn local_endpoint(&self) -> Endpoint {
                WireTransport::local_endpoint(&self.core)
            }
            fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError> {
                self.core.register_peer(node, endpoints)
            }
            fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
                self.core.send(dst, frame)
            }
            fn recv(&self) -> Result<WireFrame, WireError> {
                self.core.recv()
            }
            fn try_recv(&self) -> Result<Option<WireFrame>, WireError> {
                self.core.try_recv()
            }
            fn poke(&self) {
                self.core.poke()
            }
            fn shutdown(&self) {
                self.core.shutdown()
            }
            fn attach_flight(&self, flight: &FlightRecorder) {
                self.core.attach_flight(flight)
            }
            fn peer_health(&self) -> Vec<(NodeId, ConnHealth)> {
                self.core.peer_health()
            }
            fn add_wire_observer(&self, obs: WireObserver) {
                self.core.add_wire_observer(obs)
            }
        }
    };
}

delegate_wire!(TcpTransport);
delegate_wire!(UdsTransport);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_parse_roundtrip() {
        for ep in [
            Endpoint::Sim(NodeId(3)),
            Endpoint::Tcp("127.0.0.1:9443".to_string()),
            Endpoint::Uds("/tmp/maqs.sock".to_string()),
        ] {
            assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
        }
        assert!(Endpoint::parse("ftp:nope").is_err());
        assert!(Endpoint::parse("sim:notanum").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
    }

    #[test]
    fn endpoint_cdr_roundtrip() {
        let eps = vec![
            Endpoint::Sim(NodeId(7)),
            Endpoint::Tcp("localhost:1".to_string()),
            Endpoint::Uds("/x".to_string()),
        ];
        let mut enc = CdrEncoder::new();
        for e in &eps {
            e.encode(&mut enc);
        }
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes);
        for e in &eps {
            assert_eq!(&Endpoint::decode(&mut dec).unwrap(), e);
        }
    }

    #[test]
    fn wire_error_maps_to_orb_error() {
        assert_eq!(OrbError::from(WireError::Closed), OrbError::Shutdown);
        assert!(matches!(
            OrbError::from(WireError::Unreachable("x".into())),
            OrbError::CommFailure(_)
        ));
        assert!(matches!(
            OrbError::from(WireError::Backpressure("full".into())),
            OrbError::Transient(_)
        ));
        assert!(matches!(OrbError::from(WireError::Frame("torn".into())), OrbError::CommFailure(_)));
    }

    #[test]
    fn netsim_transport_roundtrip_and_poke() {
        let net = netsim::Network::new(1);
        let a = NetSimTransport::new(net.attach("a"));
        let b = NetSimTransport::new(net.attach("b"));
        a.send(b.node(), vec![1, 2, 3]).unwrap();
        let f = b.recv().unwrap();
        assert_eq!(f.src, a.node());
        assert_eq!(&f.payload[..], &[1, 2, 3]);
        b.poke();
        assert!(b.recv().unwrap().payload.is_empty());
        b.shutdown();
        assert_eq!(b.recv().unwrap_err(), WireError::Closed);
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap();
        a.register_peer(NodeId(2), &[b.local_endpoint()]).unwrap();
        a.send(NodeId(2), vec![9, 9, 9]).unwrap();
        let f = b.recv().unwrap();
        assert_eq!(f.src, NodeId(1));
        assert_eq!(&f.payload[..], &[9, 9, 9]);
        // The reply direction reuses the pooled hello'd connection —
        // b never registered a for this to work.
        b.send(NodeId(1), vec![7]).unwrap();
        assert_eq!(&a.recv().unwrap().payload[..], &[7]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn send_to_unregistered_peer_is_unreachable() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        assert!(matches!(a.send(NodeId(99), vec![1]), Err(WireError::Unreachable(_))));
        a.shutdown();
    }

    #[test]
    fn register_keeps_conn_for_same_endpoints_but_evicts_on_change() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap();
        let eps = [b.local_endpoint()];
        a.register_peer(NodeId(2), &eps).unwrap();
        a.send(NodeId(2), vec![1]).unwrap();
        assert_eq!(&b.recv().unwrap().payload[..], &[1]);
        // Same list again: the pooled connection must survive (this is
        // the per-invoke path — evicting here would kill pooling).
        a.register_peer(NodeId(2), &eps).unwrap();
        assert_eq!(a.peer_health(), vec![(NodeId(2), ConnHealth::Up)]);
        // A different list evicts.
        let c = TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap();
        a.register_peer(NodeId(2), &[c.local_endpoint()]).unwrap();
        a.send(NodeId(2), vec![2]).unwrap();
        assert_eq!(&c.recv().unwrap().payload[..], &[2]);
        a.shutdown();
        b.shutdown();
        c.shutdown();
    }

    #[test]
    fn health_reports_up_after_dial() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap();
        assert!(a.peer_health().is_empty());
        a.register_peer(NodeId(2), &[b.local_endpoint()]).unwrap();
        a.send(NodeId(2), vec![1]).unwrap();
        assert_eq!(a.peer_health(), vec![(NodeId(2), ConnHealth::Up)]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shed_policy_rejects_when_outbox_full() {
        // One-frame outbox against a peer that never drains: the first
        // send occupies the queue (the writer may also move it into the
        // kernel buffer), later sends shed once the queue holds a frame.
        let cfg = WireConfig {
            outbox_frames: 1,
            outbox_bytes: 64,
            backpressure: BackpressurePolicy::Shed,
            ..WireConfig::default()
        };
        let a = TcpTransport::bind_with(NodeId(1), "127.0.0.1:0", cfg).unwrap();
        // A raw listener that accepts and never reads: the stalled peer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let _stalled = std::thread::spawn(move || {
            let conns: Vec<TcpStream> = listener.incoming().take(1).flatten().collect();
            std::thread::sleep(Duration::from_secs(4));
            drop(conns);
        });
        a.register_peer(NodeId(2), &[Endpoint::Tcp(addr)]).unwrap();
        // Push until the socket buffer and the 1-frame outbox are both
        // full; with a stalled reader this happens in well under the
        // frame budget.
        let mut shed = 0;
        for _ in 0..10_000 {
            match a.send(NodeId(2), vec![0u8; 16 * 1024]) {
                Ok(()) => {}
                Err(WireError::Backpressure(_)) => {
                    shed += 1;
                    if shed > 3 {
                        break;
                    }
                }
                Err(other) => panic!("expected backpressure, got {other}"),
            }
        }
        assert!(shed > 0, "a stalled peer must trigger Backpressure under Shed");
        let (frames, bytes) = a.outbox_depth(NodeId(2));
        assert!(frames <= 1, "outbox must stay bounded, had {frames} frames");
        assert!(bytes <= 16 * 1024, "outbox bytes must stay bounded, had {bytes}");
        a.shutdown();
    }
}
