//! Wire transports — the ORB's pluggable network boundary.
//!
//! The paper's separation argument (§3, Fig. 3) only holds if the layer
//! that moves framed bytes between nodes is swappable behind a stable
//! boundary: QoS modules transform GIOP bodies, the ORB core correlates
//! requests and replies, and *neither* may care whether the bytes travel
//! over the deterministic simulator or a real socket. [`WireTransport`]
//! is that boundary.
//!
//! Three backends ship with the crate:
//!
//! * [`NetSimTransport`] — wraps a [`netsim::NetHandle`]; the
//!   deterministic default every test and bench runs on.
//! * [`TcpTransport`] — real loopback/LAN TCP with a listener thread,
//!   per-peer pooled connections and reconnect-on-failure.
//! * [`UdsTransport`] — the same engine over Unix-domain sockets.
//!
//! A transport moves opaque *frames* (the single-allocation buffers the
//! `giop::frame_*` path produces) and addresses peers by [`NodeId`]. How
//! a `NodeId` maps onto a dialable address is the job of [`Endpoint`]:
//! socket backends carry endpoints in IOR tagged profiles and learn the
//! reverse mapping from a 9-byte hello each dialer sends, so replies can
//! travel back over the pooled connection the request arrived on.
//!
//! # Contract
//!
//! * `send` delivers one frame, whole or not at all; per-peer order is
//!   preserved while a connection lasts.
//! * `recv` blocks; an **empty payload is a wakeup**, not traffic
//!   (the netsim `poke()` convention, kept backend-independent).
//! * `shutdown` is idempotent and wakes every blocked `recv`, which
//!   then returns [`WireError::Closed`].
//!
//! The conformance suite in `crates/orb/tests/wire_conformance.rs`
//! checks these properties against every backend.

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use crate::sync::{LockRank, OrderedMutex, OrderedRwLock};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::{NetHandle, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Magic prefix of the socket-backend hello (`b"MAQW"`).
pub const WIRE_MAGIC: [u8; 4] = *b"MAQW";
/// Version byte of the socket-backend hello.
pub const WIRE_VERSION: u8 = 1;
/// Upper bound accepted for one length-prefixed frame, a defence
/// against corrupt or hostile prefixes (matches [`crate::cdr::MAX_LEN`]).
pub const MAX_WIRE_FRAME: usize = 64 * 1024 * 1024;

/// How a peer can be reached, carried in IOR tagged profiles.
///
/// `NodeId` stays the ORB's *identity* and correlation key; an
/// `Endpoint` is the *address* a wire backend dials to reach that
/// identity. The simulator needs no address beyond the identity itself
/// ([`Endpoint::Sim`]); socket backends publish the listener they bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A node on the deterministic simulator (no dialable address).
    Sim(NodeId),
    /// A TCP listener, `host:port`.
    Tcp(String),
    /// A Unix-domain-socket listener, filesystem path.
    Uds(String),
}

impl Endpoint {
    /// Parse the `Display` form (`sim:3`, `tcp:127.0.0.1:9443`,
    /// `uds:/tmp/maqs.sock`).
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] on an unknown scheme or malformed address.
    pub fn parse(s: &str) -> Result<Endpoint, OrbError> {
        if let Some(rest) = s.strip_prefix("sim:") {
            let id = rest
                .parse::<u32>()
                .map_err(|e| OrbError::BadParam(format!("bad sim endpoint {s:?}: {e}")))?;
            return Ok(Endpoint::Sim(NodeId(id)));
        }
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(OrbError::BadParam("empty tcp endpoint".to_string()));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("uds:") {
            if rest.is_empty() {
                return Err(OrbError::BadParam("empty uds endpoint".to_string()));
            }
            return Ok(Endpoint::Uds(rest.to_string()));
        }
        Err(OrbError::BadParam(format!("unknown endpoint scheme in {s:?}")))
    }

    /// Encode onto a CDR stream (tag octet + address).
    pub fn encode(&self, enc: &mut CdrEncoder) {
        match self {
            Endpoint::Sim(node) => {
                enc.put_u8(0);
                enc.put_u32(node.0);
            }
            Endpoint::Tcp(addr) => {
                enc.put_u8(1);
                enc.put_string(addr);
            }
            Endpoint::Uds(path) => {
                enc.put_u8(2);
                enc.put_string(path);
            }
        }
    }

    /// Decode from a CDR stream.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on a truncated stream or unknown tag.
    pub fn decode(dec: &mut CdrDecoder<'_>) -> Result<Endpoint, OrbError> {
        match dec.get_u8()? {
            0 => Ok(Endpoint::Sim(NodeId(dec.get_u32()?))),
            1 => Ok(Endpoint::Tcp(dec.get_string()?)),
            2 => Ok(Endpoint::Uds(dec.get_string()?)),
            tag => Err(OrbError::Marshal(format!("unknown endpoint tag {tag}"))),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Sim(node) => write!(f, "sim:{}", node.0),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{path}"),
        }
    }
}

/// One framed message delivered by [`WireTransport::recv`].
#[derive(Debug, Clone)]
pub struct WireFrame {
    /// The sending node.
    pub src: NodeId,
    /// The frame body; **empty means wakeup poke**, not traffic.
    pub payload: Bytes,
    /// Modelled wire transit in virtual µs (simulator backends only;
    /// socket backends report `0` — wall-clock cost shows up in the
    /// roundtrip histograms instead).
    pub transit_us: u64,
}

/// Errors surfaced by a wire transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// No route to the destination node (never registered, or the
    /// backend cannot dial any of its endpoints).
    Unreachable(String),
    /// The transport has been shut down.
    Closed,
    /// A socket-level failure that persisted across a reconnect attempt.
    Io(String),
    /// The endpoint kind is not supported by this backend.
    Unsupported(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Unreachable(s) => write!(f, "peer unreachable: {s}"),
            WireError::Closed => write!(f, "wire transport closed"),
            WireError::Io(s) => write!(f, "wire i/o error: {s}"),
            WireError::Unsupported(s) => write!(f, "unsupported endpoint: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for OrbError {
    fn from(e: WireError) -> OrbError {
        match e {
            WireError::Closed => OrbError::Shutdown,
            other => OrbError::CommFailure(other.to_string()),
        }
    }
}

/// The ORB's pluggable network boundary; see the [module docs](self).
pub trait WireTransport: Send + Sync {
    /// This transport's node identity.
    fn node(&self) -> NodeId;

    /// The endpoint remote peers can dial to reach this transport
    /// (published in IOR tagged profiles by `Orb::activate`).
    fn local_endpoint(&self) -> Endpoint;

    /// Teach the transport how to reach `node`. Backends pick the first
    /// endpoint kind they support; re-registering with a *different*
    /// address drops any pooled connection so the next send re-dials
    /// (how a restarted peer at a new address is re-bound).
    ///
    /// # Errors
    ///
    /// [`WireError::Unsupported`] if no listed endpoint kind is dialable
    /// by this backend.
    fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError>;

    /// Send one frame to `dst`, whole or not at all.
    ///
    /// # Errors
    ///
    /// [`WireError::Unreachable`] without a route, [`WireError::Io`] on
    /// a persistent socket failure, [`WireError::Closed`] after
    /// shutdown.
    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError>;

    /// Block until a frame arrives. An empty payload is a wakeup poke.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] once the transport is shut down.
    fn recv(&self) -> Result<WireFrame, WireError>;

    /// Wake one blocked [`WireTransport::recv`] with an empty frame.
    fn poke(&self);

    /// Stop the transport: close connections and listeners, wake every
    /// blocked `recv`. Idempotent.
    fn shutdown(&self);
}

// ---------------------------------------------------------------------
// netsim backend
// ---------------------------------------------------------------------

/// The deterministic default backend: a [`netsim::NetHandle`] behind the
/// [`WireTransport`] boundary. Frames ride simulator messages unchanged,
/// so link models, loss, fault injection and the virtual clock all apply
/// exactly as before the wire boundary existed.
pub struct NetSimTransport {
    handle: NetHandle,
    closed: AtomicBool,
}

impl NetSimTransport {
    /// Wrap an attached simulator handle.
    pub fn new(handle: NetHandle) -> NetSimTransport {
        NetSimTransport { handle, closed: AtomicBool::new(false) }
    }

    /// The wrapped handle (virtual clock, name, …).
    pub fn handle(&self) -> &NetHandle {
        &self.handle
    }
}

impl WireTransport for NetSimTransport {
    fn node(&self) -> NodeId {
        self.handle.id()
    }

    fn local_endpoint(&self) -> Endpoint {
        Endpoint::Sim(self.handle.id())
    }

    fn register_peer(&self, _node: NodeId, _endpoints: &[Endpoint]) -> Result<(), WireError> {
        // The simulator routes by NodeId; every attached node is
        // reachable by identity alone.
        Ok(())
    }

    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        self.handle.send(dst, frame).map_err(|e| WireError::Unreachable(e.to_string()))
    }

    fn recv(&self) -> Result<WireFrame, WireError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let msg = self.handle.recv().map_err(|_| WireError::Closed)?;
        if self.closed.load(Ordering::SeqCst) {
            // Chain the wakeup: another receiver may still be blocked on
            // the one poke shutdown() sent.
            self.handle.poke();
            return Err(WireError::Closed);
        }
        Ok(WireFrame {
            src: msg.src,
            transit_us: msg.transit().as_micros(),
            payload: msg.payload,
        })
    }

    fn poke(&self) {
        self.handle.poke();
    }

    fn shutdown(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            self.handle.poke();
        }
    }
}

// ---------------------------------------------------------------------
// socket backends (TCP + Unix-domain)
// ---------------------------------------------------------------------

/// A connected stream of either address family.
enum SocketStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
            SocketStream::Uds(s) => s.try_clone().map(SocketStream::Uds),
        }
    }

    fn shutdown_both(&self) {
        match self {
            SocketStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            SocketStream::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            SocketStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            SocketStream::Uds(s) => s.flush(),
        }
    }
}

enum SocketListener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl SocketListener {
    fn accept(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketListener::Tcp(l) => l.accept().map(|(s, _)| {
                // Replies ride back over accepted streams; without
                // NODELAY they stall ~40ms on Nagle + delayed ACK.
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }),
            SocketListener::Uds(l) => l.accept().map(|(s, _)| SocketStream::Uds(s)),
        }
    }
}

/// One pooled connection's write half. The read half lives on a reader
/// thread holding its own stream clone; both halves share the OS socket,
/// so shutting one down unblocks the other.
struct Conn {
    writer: OrderedMutex<SocketStream>,
}

impl Conn {
    fn new(stream: SocketStream) -> Conn {
        Conn { writer: OrderedMutex::new(LockRank::WireConn, stream) }
    }

    fn close(&self) {
        self.writer.lock().shutdown_both();
    }
}

/// Peer registry + connection pool, under [`LockRank::WireState`].
struct WireState {
    peers: HashMap<NodeId, Endpoint>,
    conns: HashMap<NodeId, Arc<Conn>>,
}

struct SocketInner {
    node: NodeId,
    local: Endpoint,
    state: OrderedRwLock<WireState>,
    inbox_tx: Sender<WireFrame>,
    inbox_rx: Receiver<WireFrame>,
    closed: AtomicBool,
}

impl SocketInner {
    /// Drop `conn` from the pool — but only if the slot still holds this
    /// very connection (a racing redial may already have replaced it).
    fn drop_conn(&self, node: NodeId, conn: &Arc<Conn>) {
        let mut state = self.state.write();
        if let Some(current) = state.conns.get(&node) {
            if Arc::ptr_eq(current, conn) {
                state.conns.remove(&node);
            }
        }
        conn.close();
    }
}

/// The engine shared by [`TcpTransport`] and [`UdsTransport`]: a
/// listener ("reactor") thread accepting peers, one reader thread per
/// connection feeding a common inbox, and a per-peer pool of write
/// streams with one reconnect attempt on failure.
///
/// Framing on the stream is a `u32` little-endian length prefix followed
/// by exactly the bytes the ORB's `giop::frame_*` path produced — the
/// single-allocation frame *is* the wire payload, no re-encode. A new
/// connection opens with a 9-byte hello (`MAQW`, version, dialer's
/// `NodeId`) so the acceptor learns which identity the stream speaks
/// for and can route replies back over it.
pub struct SocketTransport {
    inner: Arc<SocketInner>,
}

impl SocketTransport {
    /// Bind a TCP listener on `addr` (e.g. `127.0.0.1:0`) and start the
    /// accept thread.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn tcp(node: NodeId, addr: &str) -> Result<SocketTransport, WireError> {
        let listener = TcpListener::bind(addr).map_err(|e| WireError::Io(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| WireError::Io(e.to_string()))?
            .to_string();
        SocketTransport::start(node, Endpoint::Tcp(local), SocketListener::Tcp(listener))
    }

    /// Bind a Unix-domain listener on `path` and start the accept
    /// thread. A stale socket file from a previous run is removed first,
    /// which is what lets a restarted peer rebind the same endpoint.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn uds(node: NodeId, path: &str) -> Result<SocketTransport, WireError> {
        if std::fs::metadata(path).is_ok() {
            let _ = std::fs::remove_file(path);
        }
        let listener =
            UnixListener::bind(path).map_err(|e| WireError::Io(format!("bind {path}: {e}")))?;
        SocketTransport::start(node, Endpoint::Uds(path.to_string()), SocketListener::Uds(listener))
    }

    fn start(
        node: NodeId,
        local: Endpoint,
        listener: SocketListener,
    ) -> Result<SocketTransport, WireError> {
        let (inbox_tx, inbox_rx) = unbounded::<WireFrame>();
        let inner = Arc::new(SocketInner {
            node,
            local,
            state: OrderedRwLock::new(
                LockRank::WireState,
                WireState { peers: HashMap::new(), conns: HashMap::new() },
            ),
            inbox_tx,
            inbox_rx,
            closed: AtomicBool::new(false),
        });
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("wire-accept-{}", inner.node.0))
                .spawn(move || SocketTransport::accept_loop(&inner, listener))
                .map_err(|e| WireError::Io(format!("spawn accept thread: {e}")))?;
        }
        Ok(SocketTransport { inner })
    }

    /// The endpoint actually bound (with the OS-assigned port resolved).
    pub fn local_endpoint(&self) -> Endpoint {
        self.inner.local.clone()
    }

    fn accept_loop(inner: &Arc<SocketInner>, listener: SocketListener) {
        loop {
            let stream = match listener.accept() {
                Ok(s) => s,
                Err(_) => {
                    if inner.closed.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if inner.closed.load(Ordering::SeqCst) {
                break;
            }
            let inner = Arc::clone(inner);
            let _ = std::thread::Builder::new()
                .name(format!("wire-read-{}", inner.node.0))
                .spawn(move || SocketTransport::serve_accepted(&inner, stream));
        }
        // Listener dropped here. The UDS socket file is reaped by
        // shutdown(), not here: this thread wakes asynchronously, and a
        // restarted peer may already have rebound the same path — reaping
        // late would unlink the *new* incarnation's file.
    }

    /// Read the dialer's hello, pool the stream for the reply direction,
    /// then pump frames into the inbox until the peer hangs up.
    fn serve_accepted(inner: &Arc<SocketInner>, mut stream: SocketStream) {
        let mut hello = [0u8; 9];
        if stream.read_exact(&mut hello).is_err()
            || hello[0..4] != WIRE_MAGIC
            || hello[4] != WIRE_VERSION
        {
            stream.shutdown_both();
            return;
        }
        let peer = NodeId(u32::from_le_bytes([hello[5], hello[6], hello[7], hello[8]]));
        let conn = match stream.try_clone() {
            Ok(writer) => Arc::new(Conn::new(writer)),
            Err(_) => {
                stream.shutdown_both();
                return;
            }
        };
        {
            // Keep an existing (dialed) connection if one raced in; the
            // accepted stream stays readable either way.
            let mut state = inner.state.write();
            state.conns.entry(peer).or_insert_with(|| Arc::clone(&conn));
        }
        SocketTransport::read_frames(inner, stream, peer, &conn);
    }

    /// Pump length-prefixed frames off `stream` into the inbox.
    fn read_frames(inner: &Arc<SocketInner>, mut stream: SocketStream, peer: NodeId, conn: &Arc<Conn>) {
        let mut len_buf = [0u8; 4];
        loop {
            if stream.read_exact(&mut len_buf).is_err() {
                break;
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if len == 0 || len > MAX_WIRE_FRAME {
                break;
            }
            let mut body = vec![0u8; len];
            if stream.read_exact(&mut body).is_err() {
                break;
            }
            let frame = WireFrame { src: peer, payload: Bytes::from(body), transit_us: 0 };
            if inner.inbox_tx.send(frame).is_err() {
                break;
            }
        }
        inner.drop_conn(peer, conn);
    }

    /// Dial `endpoint`, send the hello, spawn the reader for the reply
    /// direction, and return the pooled write half.
    fn dial(inner: &Arc<SocketInner>, dst: NodeId, endpoint: &Endpoint) -> Result<Arc<Conn>, WireError> {
        let mut stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)
                    .map_err(|e| WireError::Unreachable(format!("dial {addr}: {e}")))?;
                let _ = s.set_nodelay(true);
                SocketStream::Tcp(s)
            }
            Endpoint::Uds(path) => SocketStream::Uds(
                UnixStream::connect(path)
                    .map_err(|e| WireError::Unreachable(format!("dial {path}: {e}")))?,
            ),
            Endpoint::Sim(_) => {
                return Err(WireError::Unsupported(format!(
                    "socket transport cannot dial {endpoint}"
                )))
            }
        };
        let mut hello = [0u8; 9];
        hello[0..4].copy_from_slice(&WIRE_MAGIC);
        hello[4] = WIRE_VERSION;
        hello[5..9].copy_from_slice(&inner.node.0.to_le_bytes());
        stream.write_all(&hello).map_err(|e| WireError::Io(format!("hello: {e}")))?;
        let reader = stream.try_clone().map_err(|e| WireError::Io(e.to_string()))?;
        let conn = Arc::new(Conn::new(stream));
        {
            let inner = Arc::clone(inner);
            let conn = Arc::clone(&conn);
            let _ = std::thread::Builder::new()
                .name(format!("wire-read-{}", inner.node.0))
                .spawn(move || SocketTransport::read_frames(&inner, reader, dst, &conn));
        }
        Ok(conn)
    }

    /// The pooled connection to `dst`, dialing one if none exists.
    fn get_or_dial(&self, dst: NodeId) -> Result<Arc<Conn>, WireError> {
        let endpoint = {
            let state = self.inner.state.read();
            if let Some(conn) = state.conns.get(&dst) {
                return Ok(Arc::clone(conn));
            }
            state.peers.get(&dst).cloned().ok_or_else(|| {
                WireError::Unreachable(format!("no endpoint registered for node {}", dst.0))
            })?
        };
        // Dial outside the state lock — connects can block.
        let dialed = SocketTransport::dial(&self.inner, dst, &endpoint)?;
        let mut state = self.inner.state.write();
        if let Some(existing) = state.conns.get(&dst) {
            // Lost the race; keep the established one and retire ours.
            let existing = Arc::clone(existing);
            drop(state);
            dialed.close();
            return Ok(existing);
        }
        state.conns.insert(dst, Arc::clone(&dialed));
        Ok(dialed)
    }

    fn write_frame(conn: &Conn, frame: &[u8]) -> std::io::Result<()> {
        let len = frame.len() as u32;
        let mut writer = conn.writer.lock();
        writer.write_all(&len.to_le_bytes())?;
        writer.write_all(frame)?;
        writer.flush()
    }
}

impl WireTransport for SocketTransport {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn local_endpoint(&self) -> Endpoint {
        self.inner.local.clone()
    }

    fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError> {
        let chosen = endpoints
            .iter()
            .find(|e| matches!(e, Endpoint::Tcp(_) | Endpoint::Uds(_)))
            .cloned()
            .ok_or_else(|| {
                WireError::Unsupported(format!("no dialable endpoint for node {} in {endpoints:?}", node.0))
            })?;
        let stale = {
            let mut state = self.inner.state.write();
            let replaced = state.peers.insert(node, chosen.clone());
            match replaced {
                Some(old) if old != chosen => state.conns.remove(&node),
                _ => None,
            }
        };
        if let Some(conn) = stale {
            conn.close();
        }
        Ok(())
    }

    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let conn = self.get_or_dial(dst)?;
        match SocketTransport::write_frame(&conn, &frame) {
            Ok(()) => Ok(()),
            Err(first) => {
                // The pooled connection went bad (peer restarted, RST in
                // flight): drop it and redial the registered endpoint
                // once before giving up.
                self.inner.drop_conn(dst, &conn);
                let conn = self.get_or_dial(dst)?;
                SocketTransport::write_frame(&conn, &frame).map_err(|e| {
                    self.inner.drop_conn(dst, &conn);
                    WireError::Io(format!("send to node {} failed twice: {first}; retry: {e}", dst.0))
                })
            }
        }
    }

    fn recv(&self) -> Result<WireFrame, WireError> {
        if self.inner.closed.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        let frame = self.inner.inbox_rx.recv().map_err(|_| WireError::Closed)?;
        if self.inner.closed.load(Ordering::SeqCst) {
            // Chain the wakeup: another receiver may still be blocked on
            // the one poke shutdown() sent.
            self.poke();
            return Err(WireError::Closed);
        }
        Ok(frame)
    }

    fn poke(&self) {
        let _ = self.inner.inbox_tx.send(WireFrame {
            src: self.inner.node,
            payload: Bytes::new(),
            transit_us: 0,
        });
    }

    fn shutdown(&self) {
        if self.inner.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake blocked receivers first, then tear connections down.
        self.poke();
        let conns: Vec<Arc<Conn>> = {
            let mut state = self.inner.state.write();
            state.conns.drain().map(|(_, c)| c).collect()
        };
        for conn in conns {
            conn.close();
        }
        // Unblock the accept loop with a throwaway self-connection; it
        // re-checks the closed flag and exits.
        match &self.inner.local {
            Endpoint::Tcp(addr) => {
                if let Ok(s) = TcpStream::connect(addr) {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }
            Endpoint::Uds(path) => {
                if let Ok(s) = UnixStream::connect(path) {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
                // Reap the socket file now, synchronously: once shutdown
                // returns the path must be free for a fresh bind, and the
                // accept thread (which used to reap on exit) wakes too
                // late — it could unlink a rebound incarnation's file.
                let _ = std::fs::remove_file(path);
            }
            Endpoint::Sim(_) => {}
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Only the last owner tears the engine down (clones of the
        // public wrappers share `inner` via Arc in Orb).
        if Arc::strong_count(&self.inner) == 1 {
            self.shutdown();
        }
    }
}

/// Real TCP: the [`SocketTransport`] engine bound to a TCP listener.
pub struct TcpTransport {
    core: SocketTransport,
}

impl TcpTransport {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind(node: NodeId, addr: &str) -> Result<TcpTransport, WireError> {
        Ok(TcpTransport { core: SocketTransport::tcp(node, addr)? })
    }

    /// The `host:port` actually bound.
    pub fn local_addr(&self) -> String {
        match self.core.local_endpoint() {
            Endpoint::Tcp(addr) => addr,
            other => other.to_string(),
        }
    }
}

/// Unix-domain sockets: the [`SocketTransport`] engine bound to a
/// filesystem path.
pub struct UdsTransport {
    core: SocketTransport,
}

impl UdsTransport {
    /// Bind the socket file at `path` (stale files are removed first).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] if the bind fails.
    pub fn bind(node: NodeId, path: &str) -> Result<UdsTransport, WireError> {
        Ok(UdsTransport { core: SocketTransport::uds(node, path)? })
    }
}

macro_rules! delegate_wire {
    ($ty:ty) => {
        impl WireTransport for $ty {
            fn node(&self) -> NodeId {
                self.core.node()
            }
            fn local_endpoint(&self) -> Endpoint {
                WireTransport::local_endpoint(&self.core)
            }
            fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError> {
                self.core.register_peer(node, endpoints)
            }
            fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
                self.core.send(dst, frame)
            }
            fn recv(&self) -> Result<WireFrame, WireError> {
                self.core.recv()
            }
            fn poke(&self) {
                self.core.poke()
            }
            fn shutdown(&self) {
                self.core.shutdown()
            }
        }
    };
}

delegate_wire!(TcpTransport);
delegate_wire!(UdsTransport);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_parse_roundtrip() {
        for ep in [
            Endpoint::Sim(NodeId(3)),
            Endpoint::Tcp("127.0.0.1:9443".to_string()),
            Endpoint::Uds("/tmp/maqs.sock".to_string()),
        ] {
            assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
        }
        assert!(Endpoint::parse("ftp:nope").is_err());
        assert!(Endpoint::parse("sim:notanum").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
    }

    #[test]
    fn endpoint_cdr_roundtrip() {
        let eps = vec![
            Endpoint::Sim(NodeId(7)),
            Endpoint::Tcp("localhost:1".to_string()),
            Endpoint::Uds("/x".to_string()),
        ];
        let mut enc = CdrEncoder::new();
        for e in &eps {
            e.encode(&mut enc);
        }
        let bytes = enc.into_bytes();
        let mut dec = CdrDecoder::new(&bytes);
        for e in &eps {
            assert_eq!(&Endpoint::decode(&mut dec).unwrap(), e);
        }
    }

    #[test]
    fn wire_error_maps_to_orb_error() {
        assert_eq!(OrbError::from(WireError::Closed), OrbError::Shutdown);
        assert!(matches!(
            OrbError::from(WireError::Unreachable("x".into())),
            OrbError::CommFailure(_)
        ));
    }

    #[test]
    fn netsim_transport_roundtrip_and_poke() {
        let net = netsim::Network::new(1);
        let a = NetSimTransport::new(net.attach("a"));
        let b = NetSimTransport::new(net.attach("b"));
        a.send(b.node(), vec![1, 2, 3]).unwrap();
        let f = b.recv().unwrap();
        assert_eq!(f.src, a.node());
        assert_eq!(&f.payload[..], &[1, 2, 3]);
        b.poke();
        assert!(b.recv().unwrap().payload.is_empty());
        b.shutdown();
        assert_eq!(b.recv().unwrap_err(), WireError::Closed);
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        let b = TcpTransport::bind(NodeId(2), "127.0.0.1:0").unwrap();
        a.register_peer(NodeId(2), &[b.local_endpoint()]).unwrap();
        a.send(NodeId(2), vec![9, 9, 9]).unwrap();
        let f = b.recv().unwrap();
        assert_eq!(f.src, NodeId(1));
        assert_eq!(&f.payload[..], &[9, 9, 9]);
        // The reply direction reuses the pooled hello'd connection —
        // b never registered a for this to work.
        b.send(NodeId(1), vec![7]).unwrap();
        assert_eq!(&a.recv().unwrap().payload[..], &[7]);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn send_to_unregistered_peer_is_unreachable() {
        let a = TcpTransport::bind(NodeId(1), "127.0.0.1:0").unwrap();
        assert!(matches!(a.send(NodeId(99), vec![1]), Err(WireError::Unreachable(_))));
        a.shutdown();
    }
}
