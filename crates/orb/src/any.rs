//! `TypeCode` and `Any`: self-describing values.
//!
//! CORBA's `Any` carries a value together with its type description. MAQS
//! relies on it in two places: the dynamic invocation interface (DII),
//! which the paper uses to reach the module-specific *dynamic* interface
//! of QoS transport modules (§4), and the generic mediator/skeleton
//! dispatch of the weaving layer (all operation arguments travel as
//! `Any`s).

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use std::fmt;

/// The type of an [`Any`] value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeCode {
    /// No value.
    Void,
    /// Boolean.
    Bool,
    /// Unsigned 8-bit integer (CORBA octet).
    Octet,
    /// Signed 32-bit integer (CORBA long).
    Long,
    /// Unsigned 32-bit integer.
    ULong,
    /// Signed 64-bit integer (CORBA long long).
    LongLong,
    /// Unsigned 64-bit integer.
    ULongLong,
    /// IEEE-754 double.
    Double,
    /// UTF-8 string.
    Str,
    /// Raw byte sequence.
    Bytes,
    /// Homogeneous-or-not sequence of values.
    Sequence(Box<TypeCode>),
    /// Named structure with named, typed fields.
    Struct(String, Vec<(String, TypeCode)>),
}

impl TypeCode {
    fn tag(&self) -> u8 {
        match self {
            TypeCode::Void => 0,
            TypeCode::Bool => 1,
            TypeCode::Octet => 2,
            TypeCode::Long => 3,
            TypeCode::ULong => 4,
            TypeCode::LongLong => 5,
            TypeCode::ULongLong => 6,
            TypeCode::Double => 7,
            TypeCode::Str => 8,
            TypeCode::Bytes => 9,
            TypeCode::Sequence(_) => 10,
            TypeCode::Struct(..) => 11,
        }
    }

    /// Encode this type code.
    pub fn encode(&self, enc: &mut CdrEncoder) {
        enc.put_u8(self.tag());
        match self {
            TypeCode::Sequence(elem) => elem.encode(enc),
            TypeCode::Struct(name, fields) => {
                enc.put_string(name);
                enc.put_len(fields.len());
                for (fname, ftc) in fields {
                    enc.put_string(fname);
                    ftc.encode(enc);
                }
            }
            _ => {}
        }
    }

    /// Decode a type code.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn decode(dec: &mut CdrDecoder<'_>) -> Result<TypeCode, OrbError> {
        Ok(match dec.get_u8()? {
            0 => TypeCode::Void,
            1 => TypeCode::Bool,
            2 => TypeCode::Octet,
            3 => TypeCode::Long,
            4 => TypeCode::ULong,
            5 => TypeCode::LongLong,
            6 => TypeCode::ULongLong,
            7 => TypeCode::Double,
            8 => TypeCode::Str,
            9 => TypeCode::Bytes,
            10 => TypeCode::Sequence(Box::new(TypeCode::decode(dec)?)),
            11 => {
                let name = dec.get_string()?;
                let n = dec.get_len()?;
                let mut fields = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let fname = dec.get_string()?;
                    let ftc = TypeCode::decode(dec)?;
                    fields.push((fname, ftc));
                }
                TypeCode::Struct(name, fields)
            }
            t => return Err(OrbError::Marshal(format!("unknown TypeCode tag {t}"))),
        })
    }
}

impl fmt::Display for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeCode::Void => write!(f, "void"),
            TypeCode::Bool => write!(f, "boolean"),
            TypeCode::Octet => write!(f, "octet"),
            TypeCode::Long => write!(f, "long"),
            TypeCode::ULong => write!(f, "unsigned long"),
            TypeCode::LongLong => write!(f, "long long"),
            TypeCode::ULongLong => write!(f, "unsigned long long"),
            TypeCode::Double => write!(f, "double"),
            TypeCode::Str => write!(f, "string"),
            TypeCode::Bytes => write!(f, "sequence<octet>"),
            TypeCode::Sequence(e) => write!(f, "sequence<{e}>"),
            TypeCode::Struct(name, _) => write!(f, "struct {name}"),
        }
    }
}

/// A self-describing value.
#[derive(Debug, Clone, PartialEq)]
pub enum Any {
    /// No value (operation results of `void` operations).
    Void,
    /// Boolean.
    Bool(bool),
    /// Octet.
    Octet(u8),
    /// Signed 32-bit integer.
    Long(i32),
    /// Unsigned 32-bit integer.
    ULong(u32),
    /// Signed 64-bit integer.
    LongLong(i64),
    /// Unsigned 64-bit integer.
    ULongLong(u64),
    /// IEEE-754 double.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Sequence of values.
    Sequence(Vec<Any>),
    /// Named struct: type name and `(field name, value)` pairs.
    Struct(String, Vec<(String, Any)>),
}

impl Any {
    /// The [`TypeCode`] describing this value.
    pub fn type_code(&self) -> TypeCode {
        match self {
            Any::Void => TypeCode::Void,
            Any::Bool(_) => TypeCode::Bool,
            Any::Octet(_) => TypeCode::Octet,
            Any::Long(_) => TypeCode::Long,
            Any::ULong(_) => TypeCode::ULong,
            Any::LongLong(_) => TypeCode::LongLong,
            Any::ULongLong(_) => TypeCode::ULongLong,
            Any::Double(_) => TypeCode::Double,
            Any::Str(_) => TypeCode::Str,
            Any::Bytes(_) => TypeCode::Bytes,
            Any::Sequence(items) => TypeCode::Sequence(Box::new(
                items.first().map(Any::type_code).unwrap_or(TypeCode::Void),
            )),
            Any::Struct(name, fields) => TypeCode::Struct(
                name.clone(),
                fields.iter().map(|(n, v)| (n.clone(), v.type_code())).collect(),
            ),
        }
    }

    /// Encode type code + value.
    pub fn encode(&self, enc: &mut CdrEncoder) {
        enc.put_u8(self.type_code().tag_of_any());
        match self {
            Any::Void => {}
            Any::Bool(v) => enc.put_bool(*v),
            Any::Octet(v) => enc.put_u8(*v),
            Any::Long(v) => enc.put_i32(*v),
            Any::ULong(v) => enc.put_u32(*v),
            Any::LongLong(v) => enc.put_i64(*v),
            Any::ULongLong(v) => enc.put_u64(*v),
            Any::Double(v) => enc.put_f64(*v),
            Any::Str(v) => enc.put_string(v),
            Any::Bytes(v) => enc.put_bytes(v),
            Any::Sequence(items) => {
                enc.put_len(items.len());
                for item in items {
                    item.encode(enc);
                }
            }
            Any::Struct(name, fields) => {
                enc.put_string(name);
                enc.put_len(fields.len());
                for (fname, fval) in fields {
                    enc.put_string(fname);
                    fval.encode(enc);
                }
            }
        }
    }

    /// Decode type code + value.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn decode(dec: &mut CdrDecoder<'_>) -> Result<Any, OrbError> {
        Ok(match dec.get_u8()? {
            0 => Any::Void,
            1 => Any::Bool(dec.get_bool()?),
            2 => Any::Octet(dec.get_u8()?),
            3 => Any::Long(dec.get_i32()?),
            4 => Any::ULong(dec.get_u32()?),
            5 => Any::LongLong(dec.get_i64()?),
            6 => Any::ULongLong(dec.get_u64()?),
            7 => Any::Double(dec.get_f64()?),
            8 => Any::Str(dec.get_string()?),
            9 => Any::Bytes(dec.get_bytes()?),
            10 => {
                let n = dec.get_len()?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Any::decode(dec)?);
                }
                Any::Sequence(items)
            }
            11 => {
                let name = dec.get_string()?;
                let n = dec.get_len()?;
                let mut fields = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let fname = dec.get_string()?;
                    let fval = Any::decode(dec)?;
                    fields.push((fname, fval));
                }
                Any::Struct(name, fields)
            }
            t => return Err(OrbError::Marshal(format!("unknown Any tag {t}"))),
        })
    }

    /// Serialize to a standalone byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = CdrEncoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Deserialize from a standalone byte buffer.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Any, OrbError> {
        Any::decode(&mut CdrDecoder::new(bytes))
    }

    /// View as `bool`, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Any::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// View as `i32`, if this is a `Long`.
    pub fn as_long(&self) -> Option<i32> {
        match self {
            Any::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// View as `i64`, accepting any integer variant that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Any::Octet(v) => Some(*v as i64),
            Any::Long(v) => Some(*v as i64),
            Any::ULong(v) => Some(*v as i64),
            Any::LongLong(v) => Some(*v),
            Any::ULongLong(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// View as `f64`, if this is a `Double`.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Any::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// View as `&str`, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Any::Str(v) => Some(v),
            _ => None,
        }
    }

    /// View as `&[u8]`, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Any::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// View as a sequence slice, if this is a `Sequence`.
    pub fn as_sequence(&self) -> Option<&[Any]> {
        match self {
            Any::Sequence(v) => Some(v),
            _ => None,
        }
    }

    /// Look up a struct field by name, if this is a `Struct`.
    pub fn field(&self, name: &str) -> Option<&Any> {
        match self {
            Any::Struct(_, fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Default for Any {
    fn default() -> Any {
        Any::Void
    }
}

impl fmt::Display for Any {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Any::Void => write!(f, "void"),
            Any::Bool(v) => write!(f, "{v}"),
            Any::Octet(v) => write!(f, "{v}"),
            Any::Long(v) => write!(f, "{v}"),
            Any::ULong(v) => write!(f, "{v}"),
            Any::LongLong(v) => write!(f, "{v}"),
            Any::ULongLong(v) => write!(f, "{v}"),
            Any::Double(v) => write!(f, "{v}"),
            Any::Str(v) => write!(f, "{v:?}"),
            Any::Bytes(v) => write!(f, "<{} bytes>", v.len()),
            Any::Sequence(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Any::Struct(name, fields) => {
                write!(f, "{name}{{")?;
                for (i, (fname, fval)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{fname}: {fval}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl TypeCode {
    // The wire tag used by Any (same numbering as TypeCode::tag, but kept
    // separate so the two encodings can evolve independently).
    fn tag_of_any(&self) -> u8 {
        self.tag()
    }
}

impl From<bool> for Any {
    fn from(v: bool) -> Any {
        Any::Bool(v)
    }
}
impl From<u8> for Any {
    fn from(v: u8) -> Any {
        Any::Octet(v)
    }
}
impl From<i32> for Any {
    fn from(v: i32) -> Any {
        Any::Long(v)
    }
}
impl From<u32> for Any {
    fn from(v: u32) -> Any {
        Any::ULong(v)
    }
}
impl From<i64> for Any {
    fn from(v: i64) -> Any {
        Any::LongLong(v)
    }
}
impl From<u64> for Any {
    fn from(v: u64) -> Any {
        Any::ULongLong(v)
    }
}
impl From<f64> for Any {
    fn from(v: f64) -> Any {
        Any::Double(v)
    }
}
impl From<&str> for Any {
    fn from(v: &str) -> Any {
        Any::Str(v.to_string())
    }
}
impl From<String> for Any {
    fn from(v: String) -> Any {
        Any::Str(v)
    }
}
impl From<Vec<u8>> for Any {
    fn from(v: Vec<u8>) -> Any {
        Any::Bytes(v)
    }
}
impl From<Vec<Any>> for Any {
    fn from(v: Vec<Any>) -> Any {
        Any::Sequence(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Any) {
        let bytes = v.to_bytes();
        assert_eq!(&Any::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&Any::Void);
        roundtrip(&Any::Bool(true));
        roundtrip(&Any::Octet(255));
        roundtrip(&Any::Long(-42));
        roundtrip(&Any::ULong(7));
        roundtrip(&Any::LongLong(i64::MIN));
        roundtrip(&Any::ULongLong(u64::MAX));
        roundtrip(&Any::Double(3.125));
        roundtrip(&Any::Str("hello".into()));
        roundtrip(&Any::Bytes(vec![1, 2, 3]));
        roundtrip(&Any::Sequence(vec![Any::Long(1), Any::Str("two".into())]));
        roundtrip(&Any::Struct(
            "Point".into(),
            vec![("x".into(), Any::Double(1.0)), ("y".into(), Any::Double(2.0))],
        ));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Any::Struct(
            "Outer".into(),
            vec![
                ("items".into(), Any::Sequence(vec![Any::Sequence(vec![Any::Octet(9)])])),
                (
                    "inner".into(),
                    Any::Struct("Inner".into(), vec![("flag".into(), Any::Bool(false))]),
                ),
            ],
        );
        roundtrip(&v);
    }

    #[test]
    fn typecode_roundtrip() {
        let tcs = vec![
            TypeCode::Void,
            TypeCode::Str,
            TypeCode::Sequence(Box::new(TypeCode::Double)),
            TypeCode::Struct(
                "S".into(),
                vec![("a".into(), TypeCode::Long), ("b".into(), TypeCode::Bytes)],
            ),
        ];
        for tc in tcs {
            let mut enc = CdrEncoder::new();
            tc.encode(&mut enc);
            let bytes = enc.into_bytes();
            assert_eq!(TypeCode::decode(&mut CdrDecoder::new(&bytes)).unwrap(), tc);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Any::from("x").as_str(), Some("x"));
        assert_eq!(Any::from(5i32).as_long(), Some(5));
        assert_eq!(Any::from(5i32).as_i64(), Some(5));
        assert_eq!(Any::from(5u64).as_i64(), Some(5));
        assert_eq!(Any::ULongLong(u64::MAX).as_i64(), None);
        assert_eq!(Any::from(true).as_bool(), Some(true));
        assert_eq!(Any::from(2.5).as_double(), Some(2.5));
        assert_eq!(Any::from(vec![9u8]).as_bytes(), Some(&[9u8][..]));
        let s = Any::Struct("S".into(), vec![("k".into(), Any::Long(1))]);
        assert_eq!(s.field("k"), Some(&Any::Long(1)));
        assert_eq!(s.field("missing"), None);
        assert_eq!(Any::Void.as_str(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = Any::Struct("P".into(), vec![("x".into(), Any::Long(1))]);
        assert_eq!(s.to_string(), "P{x: 1}");
        assert_eq!(Any::Sequence(vec![Any::Long(1), Any::Long(2)]).to_string(), "[1, 2]");
        assert_eq!(Any::Bytes(vec![0; 10]).to_string(), "<10 bytes>");
    }

    #[test]
    fn garbage_tag_is_rejected() {
        assert!(Any::from_bytes(&[200]).is_err());
    }
}
