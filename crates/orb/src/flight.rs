//! Flight recorder: the middleware's always-on black box.
//!
//! Every ORB owns a [`FlightRecorder`]: a fixed-capacity, overwrite-oldest
//! ring buffer of structured lifecycle events (requests sent, dispatched,
//! replies matched or orphaned, circuit transitions, adaptation rungs,
//! fault-script ticks, negotiation outcomes). Memory is bounded by
//! construction; appends are `O(1)` and stay off the request hot path by
//! staging events in a per-thread buffer that is flushed into the shared
//! ring in batches.
//!
//! The recorder complements [`crate::metrics`]: metrics answer *how much
//! and how fast*, the recorder answers *what happened, in what order* —
//! which is what a failed chaos run needs. Dump triggers (circuit-open,
//! deadline exceeded, chaos assertion failures) call
//! [`FlightRecorder::dump`], freezing the current ring contents into a
//! retained [`FlightDump`] so the evidence survives further traffic.

use crate::clock;
use crate::sync::{LockRank, OrderedMutex};
use crate::any::Any;
use crate::error::OrbError;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Default ring capacity ([`crate::core::OrbConfig::flight_capacity`]).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Staged events per thread before a batch flush into the shared ring.
const STAGE_BATCH: usize = 32;

/// Retained dumps per recorder; older dumps are discarded first.
const MAX_DUMPS: usize = 8;

/// What happened. Kinds cover the lifecycle events of every layer that
/// records into the black box; the hot-path kinds (requests/replies)
/// carry no detail string so recording them never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are the documentation
pub enum FlightEventKind {
    RequestSent,
    RequestDispatched,
    ReplyMatched,
    ReplyOrphaned,
    PacketDropped,
    CollocatedCall,
    ProbeSent,
    ProbeHandled,
    CircuitTransition,
    DeadlineExceeded,
    AdaptationRung,
    FaultTick,
    Negotiation,
    Replication,
    WireDial,
    WireRedial,
    WireFailover,
    WireBackpressureShed,
    WireConnReset,
    TelemetryScrape,
    SloAlert,
}

/// Number of [`FlightEventKind`] variants (size of the counter table).
const KIND_COUNT: usize = 21;

/// All kinds, index-aligned with [`FlightEventKind::index`].
const ALL_KINDS: [FlightEventKind; KIND_COUNT] = [
    FlightEventKind::RequestSent,
    FlightEventKind::RequestDispatched,
    FlightEventKind::ReplyMatched,
    FlightEventKind::ReplyOrphaned,
    FlightEventKind::PacketDropped,
    FlightEventKind::CollocatedCall,
    FlightEventKind::ProbeSent,
    FlightEventKind::ProbeHandled,
    FlightEventKind::CircuitTransition,
    FlightEventKind::DeadlineExceeded,
    FlightEventKind::AdaptationRung,
    FlightEventKind::FaultTick,
    FlightEventKind::Negotiation,
    FlightEventKind::Replication,
    FlightEventKind::WireDial,
    FlightEventKind::WireRedial,
    FlightEventKind::WireFailover,
    FlightEventKind::WireBackpressureShed,
    FlightEventKind::WireConnReset,
    FlightEventKind::TelemetryScrape,
    FlightEventKind::SloAlert,
];

impl FlightEventKind {
    /// Stable wire/export name (snake case).
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::RequestSent => "request_sent",
            FlightEventKind::RequestDispatched => "request_dispatched",
            FlightEventKind::ReplyMatched => "reply_matched",
            FlightEventKind::ReplyOrphaned => "reply_orphaned",
            FlightEventKind::PacketDropped => "packet_dropped",
            FlightEventKind::CollocatedCall => "collocated_call",
            FlightEventKind::ProbeSent => "probe_sent",
            FlightEventKind::ProbeHandled => "probe_handled",
            FlightEventKind::CircuitTransition => "circuit_transition",
            FlightEventKind::DeadlineExceeded => "deadline_exceeded",
            FlightEventKind::AdaptationRung => "adaptation_rung",
            FlightEventKind::FaultTick => "fault_tick",
            FlightEventKind::Negotiation => "negotiation",
            FlightEventKind::Replication => "replication",
            FlightEventKind::WireDial => "wire_dial",
            FlightEventKind::WireRedial => "wire_redial",
            FlightEventKind::WireFailover => "wire_failover",
            FlightEventKind::WireBackpressureShed => "wire_backpressure_shed",
            FlightEventKind::WireConnReset => "wire_conn_reset",
            FlightEventKind::TelemetryScrape => "telemetry_scrape",
            FlightEventKind::SloAlert => "slo_alert",
        }
    }

    /// Parse a [`FlightEventKind::name`] back; `None` for unknown names.
    pub fn parse(name: &str) -> Option<FlightEventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    fn index(self) -> usize {
        ALL_KINDS.iter().position(|k| *k == self).expect("kind in ALL_KINDS")
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Ring-assigned sequence number (monotone per recorder).
    pub seq: u64,
    /// Monotonic microseconds since the recorder was created.
    pub ts_us: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// The request's trace id, when the call was trace-sampled. Events
    /// for unsampled calls carry `None` — they are still recorded.
    pub trace_id: Option<u64>,
    /// The node that recorded the event.
    pub node: Arc<str>,
    /// The layer that recorded the event (`orb.client`, `resilience`, …).
    pub layer: Cow<'static, str>,
    /// Optional human-readable detail (off-hot-path events only).
    pub detail: Option<Cow<'static, str>>,
}

impl FlightEvent {
    /// Encode as a self-describing [`Any`] (the introspection wire form).
    pub fn to_any(&self) -> Any {
        Any::Struct(
            "FlightEvent".to_string(),
            vec![
                ("seq".to_string(), Any::ULongLong(self.seq)),
                ("ts_us".to_string(), Any::ULongLong(self.ts_us)),
                ("kind".to_string(), Any::Str(self.kind.name().to_string())),
                ("traced".to_string(), Any::Bool(self.trace_id.is_some())),
                ("trace_id".to_string(), Any::ULongLong(self.trace_id.unwrap_or(0))),
                ("node".to_string(), Any::Str(self.node.to_string())),
                ("layer".to_string(), Any::Str(self.layer.to_string())),
                (
                    "detail".to_string(),
                    Any::Str(self.detail.as_deref().unwrap_or("").to_string()),
                ),
            ],
        )
    }

    /// Decode the [`FlightEvent::to_any`] wire form.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on missing fields or an unknown kind name.
    pub fn from_any(v: &Any) -> Result<FlightEvent, OrbError> {
        let field = |name: &str| {
            v.field(name).ok_or_else(|| OrbError::Marshal(format!("FlightEvent missing {name}")))
        };
        let kind_name = field("kind")?.as_str().unwrap_or_default().to_string();
        let kind = FlightEventKind::parse(&kind_name)
            .ok_or_else(|| OrbError::Marshal(format!("unknown flight event kind {kind_name}")))?;
        let traced = matches!(field("traced")?, Any::Bool(true));
        let detail = field("detail")?.as_str().unwrap_or_default().to_string();
        Ok(FlightEvent {
            seq: field("seq")?.as_i64().unwrap_or(0) as u64,
            ts_us: field("ts_us")?.as_i64().unwrap_or(0) as u64,
            kind,
            trace_id: if traced {
                Some(field("trace_id")?.as_i64().unwrap_or(0) as u64)
            } else {
                None
            },
            node: Arc::from(field("node")?.as_str().unwrap_or_default()),
            layer: Cow::Owned(field("layer")?.as_str().unwrap_or_default().to_string()),
            detail: if detail.is_empty() { None } else { Some(Cow::Owned(detail)) },
        })
    }
}

/// A frozen copy of the ring, produced by a dump trigger.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (`circuit-open`, `deadline-exceeded`, …).
    pub reason: String,
    /// The recording node.
    pub node: Arc<str>,
    /// Monotonic µs (recorder epoch) at which the dump was taken.
    pub at_us: u64,
    /// Ring contents at the trigger, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Whether the dump contains an event of `kind` whose detail
    /// contains `needle` (empty `needle` matches any detail).
    pub fn contains(&self, kind: FlightEventKind, needle: &str) -> bool {
        self.events.iter().any(|e| {
            e.kind == kind
                && (needle.is_empty() || e.detail.as_deref().is_some_and(|d| d.contains(needle)))
        })
    }
}

/// One thread's staging buffer for one recorder.
struct Slot {
    buf: OrderedMutex<Vec<FlightEvent>>,
}

struct Inner {
    id: u64,
    node: Arc<str>,
    /// Coarse-clock reading at recorder creation; event `ts_us` values
    /// are coarse readings relative to this, so timestamping costs one
    /// atomic load instead of a `clock_gettime` per event. Sub-tick
    /// ordering is carried by `seq`, not `ts_us`.
    epoch_us: u64,
    capacity: usize,
    seq: AtomicU64,
    counts: [AtomicU64; KIND_COUNT],
    ring: OrderedMutex<VecDeque<FlightEvent>>,
    slots: OrderedMutex<Vec<Arc<Slot>>>,
    dumps: OrderedMutex<VecDeque<FlightDump>>,
}

impl Inner {
    /// Move staged events into the ring, assigning sequence numbers and
    /// evicting the oldest entries past capacity. Caller holds `ring`.
    fn drain_into(&self, staged: &mut Vec<FlightEvent>, ring: &mut VecDeque<FlightEvent>) {
        for mut e in staged.drain(..) {
            e.seq = self.seq.fetch_add(1, Ordering::Relaxed);
            if self.capacity == 0 {
                continue;
            }
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(e);
        }
    }
}

thread_local! {
    /// Per-thread staging slots, keyed by recorder id. A slot is created
    /// on a thread's first record into a recorder and registered with it,
    /// so readers can flush every thread's staged events.
    static STAGE: RefCell<HashMap<u64, (Weak<Inner>, Arc<Slot>)>> =
        RefCell::new(HashMap::new());
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// The always-on ring buffer of lifecycle events. Cloning shares the
/// same recorder (the handle every layer holds).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("node", &self.inner.node)
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.total())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder for `node` retaining at most `capacity` events.
    pub fn new(node: impl Into<Arc<str>>, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                node: node.into(),
                epoch_us: clock::coarse_refresh_us(),
                capacity,
                seq: AtomicU64::new(0),
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                ring: OrderedMutex::new(LockRank::FlightRing, VecDeque::with_capacity(capacity)),
                slots: OrderedMutex::new(LockRank::FlightSlots, Vec::new()),
                dumps: OrderedMutex::new(LockRank::FlightDumps, VecDeque::new()),
            }),
        }
    }

    /// The recording node's name.
    pub fn node(&self) -> &str {
        &self.inner.node
    }

    /// The ring capacity (bounded memory by construction).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Record a hot-path event. Never allocates in steady state: the
    /// event is staged in a pre-sized per-thread buffer and flushed into
    /// the ring in batches of [`STAGE_BATCH`].
    #[inline]
    pub fn record(&self, kind: FlightEventKind, layer: &'static str, trace_id: Option<u64>) {
        self.push(kind, Cow::Borrowed(layer), trace_id, None);
    }

    /// Record an event with a human-readable detail (allocates; reserve
    /// for off-hot-path events: transitions, rungs, faults, outcomes).
    pub fn record_detail(
        &self,
        kind: FlightEventKind,
        layer: &'static str,
        trace_id: Option<u64>,
        detail: impl Into<String>,
    ) {
        self.push(kind, Cow::Borrowed(layer), trace_id, Some(Cow::Owned(detail.into())));
    }

    fn push(
        &self,
        kind: FlightEventKind,
        layer: Cow<'static, str>,
        trace_id: Option<u64>,
        detail: Option<Cow<'static, str>>,
    ) {
        self.inner.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq: 0, // assigned when the batch lands in the ring
            ts_us: clock::coarse_now_us().saturating_sub(self.inner.epoch_us),
            kind,
            trace_id,
            node: Arc::clone(&self.inner.node),
            layer,
            detail,
        };
        STAGE.with(|stage| {
            let mut map = stage.borrow_mut();
            let slot = match map.get(&self.inner.id) {
                Some((_, slot)) => Arc::clone(slot),
                None => {
                    // First record from this thread: register a slot so
                    // readers can flush it, and drop map entries whose
                    // recorder is gone.
                    map.retain(|_, (weak, _)| weak.strong_count() > 0);
                    let slot = Arc::new(Slot { buf: OrderedMutex::new(LockRank::FlightBuf, Vec::with_capacity(STAGE_BATCH)) });
                    self.inner.slots.lock().push(Arc::clone(&slot));
                    map.insert(self.inner.id, (Arc::downgrade(&self.inner), Arc::clone(&slot)));
                    slot
                }
            };
            let mut buf = slot.buf.lock();
            buf.push(event);
            if buf.len() >= STAGE_BATCH {
                let mut ring = self.inner.ring.lock();
                self.inner.drain_into(&mut buf, &mut ring);
            }
        });
    }

    /// Flush every thread's staged events into the shared ring.
    pub fn flush(&self) {
        let slots: Vec<Arc<Slot>> = self.inner.slots.lock().clone();
        let mut staged: Vec<FlightEvent> = Vec::new();
        for slot in &slots {
            let mut buf = slot.buf.lock();
            staged.extend(buf.drain(..));
        }
        // Cross-thread batches interleave; order by timestamp so readers
        // see a coherent timeline.
        staged.sort_by_key(|e| e.ts_us);
        let mut ring = self.inner.ring.lock();
        self.inner.drain_into(&mut staged, &mut ring);
    }

    /// The whole ring (oldest first), after flushing staged events.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.flush();
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// The `n` most recent events (oldest of those first).
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        self.flush();
        let ring = self.inner.ring.lock();
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Every ring event with sequence number ≥ `seq` (oldest first),
    /// after flushing staged events.
    ///
    /// This is the poller's cursor primitive: start the cursor at 0,
    /// and after each poll advance it to `last.seq + 1`. Consecutive
    /// polls then return exactly the events recorded in between —
    /// nothing re-shipped, and nothing missed unless the ring
    /// overwrote it first (detectable: the first returned event's `seq`
    /// jumps past the cursor).
    pub fn since(&self, seq: u64) -> Vec<FlightEvent> {
        self.flush();
        let ring = self.inner.ring.lock();
        let start = ring.partition_point(|e| e.seq < seq);
        ring.iter().skip(start).cloned().collect()
    }

    /// The sequence number the next recorded event will receive. A
    /// cursor initialised here observes everything from this moment on
    /// and none of the backlog; a cursor initialised to 0 replays
    /// whatever backlog the ring still holds first.
    pub fn next_seq(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Cumulative number of events of `kind` ever recorded (not bounded
    /// by the ring: counting survives overwrites).
    pub fn count(&self, kind: FlightEventKind) -> u64 {
        self.inner.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Cumulative number of events ever recorded.
    pub fn total(&self) -> u64 {
        self.inner.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Freeze the current ring into a retained [`FlightDump`].
    ///
    /// Dump triggers (circuit-open, deadline exceeded, chaos assertion
    /// failures) call this so every failed run leaves a readable black
    /// box. At most [`MAX_DUMPS`] dumps are retained, oldest discarded.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let events = self.snapshot();
        let dump = FlightDump {
            reason: reason.to_string(),
            node: Arc::clone(&self.inner.node),
            at_us: clock::coarse_refresh_us().saturating_sub(self.inner.epoch_us),
            events,
        };
        let mut dumps = self.inner.dumps.lock();
        if dumps.len() == MAX_DUMPS {
            dumps.pop_front();
        }
        dumps.push_back(dump.clone());
        dump
    }

    /// Dumps taken so far (oldest first).
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner.dumps.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cap: usize) -> FlightRecorder {
        FlightRecorder::new("n1", cap)
    }

    #[test]
    fn events_are_recorded_and_tailed_in_order() {
        let r = rec(16);
        r.record(FlightEventKind::RequestSent, "orb.client", Some(7));
        r.record(FlightEventKind::ReplyMatched, "orb.client", Some(7));
        r.record(FlightEventKind::RequestSent, "orb.client", None);
        let all = r.snapshot();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].kind, FlightEventKind::RequestSent);
        assert_eq!(all[0].trace_id, Some(7));
        assert_eq!(all[2].trace_id, None);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        let tail = r.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].seq, all[2].seq);
    }

    #[test]
    fn ring_overwrites_oldest_but_counts_survive() {
        let r = rec(4);
        for i in 0..10 {
            r.record(FlightEventKind::RequestSent, "orb.client", Some(i));
        }
        let all = r.snapshot();
        assert_eq!(all.len(), 4, "capacity bounds the ring");
        assert_eq!(all[0].trace_id, Some(6), "oldest events were evicted");
        assert_eq!(r.count(FlightEventKind::RequestSent), 10);
        assert_eq!(r.total(), 10);
    }

    #[test]
    fn staged_events_from_other_threads_are_flushed_by_readers() {
        let r = rec(64);
        let r2 = r.clone();
        std::thread::spawn(move || {
            for _ in 0..5 {
                r2.record(FlightEventKind::RequestDispatched, "orb.server", None);
            }
        })
        .join()
        .unwrap();
        // Fewer than STAGE_BATCH events: they are still staged in the
        // (now dead) thread's slot until a reader flushes.
        assert_eq!(r.snapshot().len(), 5);
    }

    #[test]
    fn dumps_freeze_ring_contents() {
        let r = rec(8);
        r.record_detail(
            FlightEventKind::CircuitTransition,
            "resilience",
            None,
            "closed->open".to_string(),
        );
        let dump = r.dump("circuit-open");
        assert_eq!(dump.reason, "circuit-open");
        assert!(dump.contains(FlightEventKind::CircuitTransition, "closed->open"));
        assert!(!dump.contains(FlightEventKind::CircuitTransition, "half_open"));
        // Later traffic does not alter the frozen dump.
        for _ in 0..20 {
            r.record(FlightEventKind::RequestSent, "orb.client", None);
        }
        assert_eq!(r.dumps()[0].events.len(), 1);
    }

    #[test]
    fn since_cursor_neither_reships_nor_misses() {
        let r = rec(64);
        for i in 0..5 {
            r.record(FlightEventKind::RequestSent, "orb.client", Some(i));
        }
        let first = r.since(0);
        assert_eq!(first.len(), 5, "cursor 0 replays the backlog");
        let mut cursor = first.last().unwrap().seq + 1;
        assert!(r.since(cursor).is_empty(), "nothing new, nothing re-shipped");
        for i in 5..8 {
            r.record(FlightEventKind::ReplyMatched, "orb.client", Some(i));
        }
        let next = r.since(cursor);
        assert_eq!(next.len(), 3, "exactly the events recorded since");
        assert!(next.iter().all(|e| e.kind == FlightEventKind::ReplyMatched));
        cursor = next.last().unwrap().seq + 1;
        assert_eq!(cursor, r.next_seq());
    }

    #[test]
    fn since_detects_ring_overwrite_as_a_seq_gap() {
        let r = rec(4);
        r.record(FlightEventKind::RequestSent, "orb.client", None);
        let cursor = r.since(0).last().unwrap().seq + 1;
        for _ in 0..10 {
            r.record(FlightEventKind::RequestSent, "orb.client", None);
        }
        let got = r.since(cursor);
        assert_eq!(got.len(), 4, "only what the ring still holds");
        assert!(got[0].seq > cursor, "the gap is visible to the poller");
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in ALL_KINDS {
            assert_eq!(FlightEventKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(FlightEventKind::parse("nope"), None);
    }

    #[test]
    fn event_any_roundtrip() {
        let r = rec(4);
        r.record_detail(FlightEventKind::Negotiation, "negotiation", Some(42), "agreed".to_string());
        r.record(FlightEventKind::RequestSent, "orb.client", None);
        for e in r.snapshot() {
            let back = FlightEvent::from_any(&e.to_any()).unwrap();
            assert_eq!(back, e);
        }
    }
}
