//! The GIOP-like wire protocol.
//!
//! Messages mirror GIOP's Request/Reply pair, with the MAQS extensions
//! from §4 of the paper:
//!
//! * A request is **dual-use**: either a *service request* addressed to an
//!   object, or a *command* addressed to the QoS transport itself or to a
//!   named QoS module ([`RequestKind`], Fig. 3).
//! * A request may carry a **QoS context** naming the negotiated
//!   characteristic and its parameters — the "tag" that routes it through
//!   the QoS transport instead of plain GIOP/IIOP.
//! * The outer [`Packet`] envelope records whether the GIOP body was
//!   transformed by a transport-level QoS module (and by which), so the
//!   receiving ORB can run the inverse transform before dispatch.

use crate::any::Any;
use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use crate::ior::ObjectKey;
use bytes::Bytes;
use netsim::NodeId;
use std::cell::Cell;

/// Protocol magic, first four octets of every packet.
pub const MAGIC: &[u8; 4] = b"MAQ1";

/// Who a *command* request is addressed to (Fig. 3 dispatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandTarget {
    /// The QoS transport itself (load/unload/list modules, bind…).
    Transport,
    /// A named, loaded QoS module.
    Module(String),
}

/// Whether a request is a plain service request or a QoS command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// An ordinary invocation on an application object.
    ServiceRequest,
    /// A command interpreted by the QoS transport or one of its modules.
    Command(CommandTarget),
    /// A liveness probe (failure detection). Dispatched like a service
    /// request, but counted under the `orb.probe.*` metric family so
    /// availability math over `orb.requests_*` excludes detector traffic.
    Probe,
}

/// The negotiated-QoS annotation a request may carry.
#[derive(Debug, Clone, PartialEq)]
pub struct QosContext {
    /// Name of the negotiated QoS characteristic (e.g. `"compression"`).
    pub characteristic: String,
    /// Characteristic-specific parameters.
    pub params: Vec<(String, Any)>,
}

impl QosContext {
    /// A context with no parameters.
    pub fn new(characteristic: impl Into<String>) -> QosContext {
        QosContext { characteristic: characteristic.into(), params: Vec::new() }
    }

    /// Builder-style parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: Any) -> QosContext {
        self.params.push((name.into(), value));
        self
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Any> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// One GIOP service-context slot: out-of-band data riding along with a
/// request or reply (CORBA's `ServiceContext`). MAQS uses slot id
/// [`crate::trace::TRACE_CONTEXT_ID`] to propagate trace contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceContext {
    /// Slot identifier, e.g. `"maqs.trace"`.
    pub id: String,
    /// Opaque slot payload.
    pub data: Vec<u8>,
}

/// Find slot `id` in a context list.
fn find_context<'a>(contexts: &'a [ServiceContext], id: &str) -> Option<&'a [u8]> {
    contexts.iter().find(|c| c.id == id).map(|c| c.data.as_slice())
}

/// Insert-or-replace slot `id` in a context list.
fn set_context(contexts: &mut Vec<ServiceContext>, id: &str, data: Vec<u8>) {
    match contexts.iter_mut().find(|c| c.id == id) {
        Some(c) => c.data = data,
        None => contexts.push(ServiceContext { id: id.to_string(), data }),
    }
}

fn encode_contexts(enc: &mut CdrEncoder, contexts: &[ServiceContext]) {
    enc.put_len(contexts.len());
    for c in contexts {
        enc.put_string(&c.id);
        enc.put_bytes(&c.data);
    }
}

fn decode_contexts(dec: &mut CdrDecoder<'_>) -> Result<Vec<ServiceContext>, OrbError> {
    let n = dec.get_len()?;
    let mut contexts = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        let id = dec.get_string()?;
        let data = dec.get_bytes()?;
        contexts.push(ServiceContext { id, data });
    }
    Ok(contexts)
}

/// A request message.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMessage {
    /// Correlation id, unique per sending ORB.
    pub request_id: u64,
    /// Node the reply should be sent to.
    pub reply_to: NodeId,
    /// Target object within the receiving adapter.
    pub object_key: ObjectKey,
    /// Operation name.
    pub operation: String,
    /// Operation arguments.
    pub args: Vec<Any>,
    /// Whether the caller waits for a reply (`false` = oneway).
    pub response_expected: bool,
    /// Service request vs command (Fig. 3).
    pub kind: RequestKind,
    /// Negotiated-QoS annotation, if any.
    pub qos: Option<QosContext>,
    /// Service-context slots (trace propagation etc.).
    pub contexts: Vec<ServiceContext>,
}

impl RequestMessage {
    /// Payload of service-context slot `id`, if present.
    pub fn context(&self, id: &str) -> Option<&[u8]> {
        find_context(&self.contexts, id)
    }

    /// Set (insert or replace) service-context slot `id`.
    pub fn set_context(&mut self, id: &str, data: Vec<u8>) {
        set_context(&mut self.contexts, id, data);
    }
}

/// Outcome carried by a reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyStatus {
    /// Success, with the operation result.
    Ok(Any),
    /// A system or user exception.
    Exception {
        /// Exception kind (see [`OrbError::kind`]).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

/// A reply message.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMessage {
    /// Correlation id matching the request.
    pub request_id: u64,
    /// Node that produced the reply (useful after group fan-out).
    pub from: NodeId,
    /// Outcome.
    pub status: ReplyStatus,
    /// Service-context slots (trace propagation etc.).
    pub contexts: Vec<ServiceContext>,
}

impl ReplyMessage {
    /// Payload of service-context slot `id`, if present.
    pub fn context(&self, id: &str) -> Option<&[u8]> {
        find_context(&self.contexts, id)
    }

    /// Set (insert or replace) service-context slot `id`.
    pub fn set_context(&mut self, id: &str, data: Vec<u8>) {
        set_context(&mut self.contexts, id, data);
    }

    /// Convert the wire status into the client-visible `Result`.
    pub fn into_result(self) -> Result<Any, OrbError> {
        match self.status {
            ReplyStatus::Ok(v) => Ok(v),
            ReplyStatus::Exception { kind, detail } => Err(OrbError::from_wire(&kind, detail)),
        }
    }

    /// Build a reply from a dispatch result.
    pub fn from_result(request_id: u64, from: NodeId, result: Result<Any, OrbError>) -> ReplyMessage {
        let status = match result {
            Ok(v) => ReplyStatus::Ok(v),
            Err(e) => ReplyStatus::Exception { kind: e.kind().to_string(), detail: e.detail().to_string() },
        };
        ReplyMessage { request_id, from, status, contexts: Vec::new() }
    }
}

/// Any GIOP-level message.
#[derive(Debug, Clone, PartialEq)]
pub enum GiopMessage {
    /// A request.
    Request(RequestMessage),
    /// A reply.
    Reply(ReplyMessage),
}

/// Encode a request into `enc` at its current position.
///
/// The caller must ensure the position is 8-aligned (offset 0 of a fresh
/// buffer, or an [`CdrEncoder::align_to`]`(8)` boundary inside a framing
/// buffer) so embedded and standalone encodings are byte-identical.
fn encode_request_into(enc: &mut CdrEncoder, r: &RequestMessage) {
    enc.put_u8(0);
    enc.put_u64(r.request_id);
    enc.put_u32(r.reply_to.0);
    enc.put_string(&r.object_key.0);
    enc.put_string(&r.operation);
    enc.put_bool(r.response_expected);
    match &r.kind {
        RequestKind::ServiceRequest => enc.put_u8(0),
        RequestKind::Command(CommandTarget::Transport) => enc.put_u8(1),
        RequestKind::Command(CommandTarget::Module(m)) => {
            enc.put_u8(2);
            enc.put_string(m);
        }
        RequestKind::Probe => enc.put_u8(3),
    }
    match &r.qos {
        None => enc.put_bool(false),
        Some(q) => {
            enc.put_bool(true);
            enc.put_string(&q.characteristic);
            enc.put_len(q.params.len());
            for (n, v) in &q.params {
                enc.put_string(n);
                v.encode(enc);
            }
        }
    }
    enc.put_len(r.args.len());
    for a in &r.args {
        a.encode(enc);
    }
    encode_contexts(enc, &r.contexts);
}

/// Encode a reply into `enc` at its current (8-aligned) position; see
/// [`encode_request_into`].
fn encode_reply_into(enc: &mut CdrEncoder, r: &ReplyMessage) {
    enc.put_u8(1);
    enc.put_u64(r.request_id);
    enc.put_u32(r.from.0);
    match &r.status {
        ReplyStatus::Ok(v) => {
            enc.put_u8(0);
            v.encode(enc);
        }
        ReplyStatus::Exception { kind, detail } => {
            enc.put_u8(1);
            enc.put_string(kind);
            enc.put_string(detail);
        }
    }
    encode_contexts(enc, &r.contexts);
}

// Per-thread capacity hints so steady-state encodes allocate their final
// buffer once. A hint only grows (to the next power of two above the
// largest message this thread has seen), so a burst of big messages can
// never flip later small ones back into reallocating.
thread_local! {
    static GIOP_CAP: Cell<usize> = const { Cell::new(128) };
    static FRAME_CAP: Cell<usize> = const { Cell::new(160) };
}

fn encode_with_hint(hint: &'static std::thread::LocalKey<Cell<usize>>, f: impl FnOnce(&mut CdrEncoder)) -> Vec<u8> {
    let cap = hint.with(Cell::get);
    let mut enc = CdrEncoder::with_capacity(cap);
    f(&mut enc);
    let out = enc.into_bytes();
    if out.len() > cap {
        hint.with(|h| h.set(out.len().next_power_of_two()));
    }
    out
}

impl GiopMessage {
    /// Encode to wire bytes (without the outer [`Packet`] envelope).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            GiopMessage::Request(r) => GiopMessage::encode_request(r),
            GiopMessage::Reply(r) => GiopMessage::encode_reply(r),
        }
    }

    /// Borrowing request encoder: wire bytes without cloning the message
    /// or wrapping it in a [`GiopMessage`].
    pub fn encode_request(r: &RequestMessage) -> Vec<u8> {
        encode_with_hint(&GIOP_CAP, |enc| encode_request_into(enc, r))
    }

    /// Borrowing reply encoder; see [`GiopMessage::encode_request`].
    pub fn encode_reply(r: &ReplyMessage) -> Vec<u8> {
        encode_with_hint(&GIOP_CAP, |enc| encode_reply_into(enc, r))
    }

    /// Decode from wire bytes.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<GiopMessage, OrbError> {
        let mut dec = CdrDecoder::new(bytes);
        match dec.get_u8()? {
            0 => {
                let request_id = dec.get_u64()?;
                let reply_to = NodeId(dec.get_u32()?);
                let object_key = ObjectKey(dec.get_string()?);
                let operation = dec.get_string()?;
                let response_expected = dec.get_bool()?;
                let kind = match dec.get_u8()? {
                    0 => RequestKind::ServiceRequest,
                    1 => RequestKind::Command(CommandTarget::Transport),
                    2 => RequestKind::Command(CommandTarget::Module(dec.get_string()?)),
                    3 => RequestKind::Probe,
                    k => return Err(OrbError::Marshal(format!("bad request kind {k}"))),
                };
                let qos = if dec.get_bool()? {
                    let characteristic = dec.get_string()?;
                    let n = dec.get_len()?;
                    let mut params = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        let name = dec.get_string()?;
                        let val = Any::decode(&mut dec)?;
                        params.push((name, val));
                    }
                    Some(QosContext { characteristic, params })
                } else {
                    None
                };
                let n = dec.get_len()?;
                let mut args = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    args.push(Any::decode(&mut dec)?);
                }
                let contexts = decode_contexts(&mut dec)?;
                Ok(GiopMessage::Request(RequestMessage {
                    request_id,
                    reply_to,
                    object_key,
                    operation,
                    args,
                    response_expected,
                    kind,
                    qos,
                    contexts,
                }))
            }
            1 => {
                let request_id = dec.get_u64()?;
                let from = NodeId(dec.get_u32()?);
                let status = match dec.get_u8()? {
                    0 => ReplyStatus::Ok(Any::decode(&mut dec)?),
                    1 => {
                        let kind = dec.get_string()?;
                        let detail = dec.get_string()?;
                        ReplyStatus::Exception { kind, detail }
                    }
                    s => return Err(OrbError::Marshal(format!("bad reply status {s}"))),
                };
                let contexts = decode_contexts(&mut dec)?;
                Ok(GiopMessage::Reply(ReplyMessage { request_id, from, status, contexts }))
            }
            t => Err(OrbError::Marshal(format!("bad GIOP message tag {t}"))),
        }
    }
}

/// Just enough of a GIOP body to route it — see [`peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiopPeek {
    /// A request, routed by object key.
    Request {
        /// Stable FNV-1a hash of the object-key bytes; the receive loop
        /// picks the dispatcher shard from it.
        key_hash: u64,
    },
    /// A reply; the receive loop decodes it in full for matching.
    Reply,
}

/// Decode only the routing prefix of a GIOP body: the message tag
/// (request vs reply) and, for requests, a hash of the object key.
///
/// The ORB's receive loop calls this instead of
/// [`GiopMessage::from_bytes`] so the expensive part of request
/// decoding (args, QoS params, service contexts) happens on a
/// dispatcher thread, off the single receive loop. No allocation: the
/// key bytes are hashed straight out of the borrowed buffer. The
/// prefix mirrored here — tag `u8`, request id `u64`, reply-to `u32`,
/// object-key string — must stay in lockstep with `from_bytes`;
/// `peek_agrees_with_full_decode` pins that.
///
/// # Errors
///
/// [`OrbError::Marshal`] on a truncated prefix or unknown tag.
pub fn peek(bytes: &[u8]) -> Result<GiopPeek, OrbError> {
    let mut dec = CdrDecoder::new(bytes);
    match dec.get_u8()? {
        0 => {
            dec.get_u64()?; // request_id
            dec.get_u32()?; // reply_to
            let len = dec.get_u32()? as usize; // object_key string header
            if len == 0 {
                return Err(OrbError::Marshal("bad string length 0".to_string()));
            }
            let raw = dec.get_raw(len)?; // key bytes + NUL
            Ok(GiopPeek::Request { key_hash: fnv1a(&raw[..len - 1]) })
        }
        1 => Ok(GiopPeek::Reply),
        t => Err(OrbError::Marshal(format!("bad GIOP message tag {t}"))),
    }
}

/// FNV-1a over `bytes`: allocation-free and stable across processes and
/// runs — dispatch routing must not depend on `DefaultHasher`'s
/// per-process random seed, or a key's dispatcher would move between
/// restarts and per-key ordering claims would be untestable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The outer transport envelope.
///
/// Records whether the GIOP body travelled over the plain GIOP/IIOP path
/// or through a transport-level QoS module; in the latter case the body
/// bytes are whatever the module's outbound transform produced, and the
/// receiving ORB applies the module's inverse transform before dispatch.
///
/// Bodies are [`Bytes`]: decoding slices them out of the received wire
/// buffer without copying, and clones share the same backing storage.
///
/// # Wire layout
///
/// The envelope is written *around* the body in one buffer (the
/// reserve-header trick — see [`frame_plain_request`]), with the body
/// placed on an 8-byte boundary so an embedded CDR encoding is
/// byte-identical to a standalone one:
///
/// ```text
/// Plain: MAGIC(4) kind=0(1) pad(3) body_len:u32 pad(4) body @16
/// Qos:   MAGIC(4) kind=1(1) pad(3) module:string body_len:u32 pad* body
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Untransformed GIOP bytes, the GIOP/IIOP path of Fig. 3.
    Plain(Bytes),
    /// GIOP bytes transformed by the named QoS module.
    Qos {
        /// Name of the module whose inverse transform must be applied.
        module: String,
        /// Transformed bytes.
        body: Bytes,
    },
}

/// Write the shared packet prologue and the reserved body-length slot,
/// leaving the encoder 8-aligned at the body start.
fn frame_prologue(enc: &mut CdrEncoder, kind: u8, module: Option<&str>) -> usize {
    enc.put_raw(MAGIC);
    enc.put_u8(kind);
    if let Some(m) = module {
        enc.put_string(m);
    }
    let len_at = enc.reserve_u32();
    enc.align_to(8);
    len_at
}

/// Frame a request as a [`Packet::Plain`] wire buffer in **one**
/// encode: the envelope is written first with a reserved length slot,
/// the GIOP body is encoded directly behind it, and the slot is patched
/// — no intermediate body buffer, no copy. With a warm per-thread
/// capacity hint this is exactly one owned-buffer allocation.
pub fn frame_plain_request(r: &RequestMessage) -> Vec<u8> {
    frame_plain_with(|enc| encode_request_into(enc, r))
}

/// Frame a reply as a [`Packet::Plain`] wire buffer in one encode; see
/// [`frame_plain_request`].
pub fn frame_plain_reply(r: &ReplyMessage) -> Vec<u8> {
    frame_plain_with(|enc| encode_reply_into(enc, r))
}

fn frame_plain_with(encode_body: impl FnOnce(&mut CdrEncoder)) -> Vec<u8> {
    encode_with_hint(&FRAME_CAP, |enc| {
        let len_at = frame_prologue(enc, 0, None);
        let body_start = enc.len();
        encode_body(enc);
        enc.patch_u32(len_at, (enc.len() - body_start) as u32);
    })
}

/// Frame an already-transformed module body as a [`Packet::Qos`] wire
/// buffer. The capacity is computed exactly, so this is always one
/// allocation.
pub fn frame_qos(module: &str, body: &[u8]) -> Vec<u8> {
    // MAGIC + kind, 4-align, string (len + bytes + NUL), 4-align,
    // body_len, 8-align, body.
    let mut cap = 5usize;
    cap += 3 + 4 + module.len() + 1;
    cap = (cap + 3) & !3;
    cap += 4;
    cap = (cap + 7) & !7;
    cap += body.len();
    let mut enc = CdrEncoder::with_capacity(cap);
    let len_at = frame_prologue(&mut enc, 1, Some(module));
    enc.put_raw(body);
    enc.patch_u32(len_at, body.len() as u32);
    enc.into_bytes()
}

/// A decoded packet whose module name borrows straight out of the
/// payload: the hot receive path sees one of these per frame and must
/// not allocate. The body is still a zero-copy [`Bytes`] slice; only
/// callers that need to *keep* the name (the server dispatch queue)
/// pay for an owned `String`.
#[derive(Debug, PartialEq, Eq)]
pub enum PacketView<'a> {
    /// Untransformed GIOP bytes, the GIOP/IIOP path of Fig. 3.
    Plain(Bytes),
    /// GIOP bytes transformed by the named QoS module.
    Qos {
        /// Name of the module whose inverse transform must be applied.
        module: &'a str,
        /// Transformed bytes.
        body: Bytes,
    },
}

impl Packet {
    /// Encode with magic and kind byte (single-buffer framing).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Packet::Plain(body) => frame_plain_with(|enc| enc.put_raw(body)),
            Packet::Qos { module, body } => frame_qos(module, body),
        }
    }

    /// Decode a packet without allocating: the body is sliced out of
    /// `payload` zero-copy and the module name borrows from it.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on bad magic or malformed framing.
    pub fn decode_view(payload: &Bytes) -> Result<PacketView<'_>, OrbError> {
        let mut dec = CdrDecoder::new(payload);
        if dec.get_raw(4)? != MAGIC {
            return Err(OrbError::Marshal("bad packet magic".to_string()));
        }
        let kind = dec.get_u8()?;
        let module = match kind {
            0 => None,
            1 => Some(dec.get_str()?),
            k => return Err(OrbError::Marshal(format!("bad packet kind {k}"))),
        };
        let len = dec.get_len()?;
        dec.align_to(8);
        let start = dec.position();
        dec.get_raw(len)?; // bounds check against the real buffer
        let body = payload.slice(start..start + len);
        Ok(match module {
            None => PacketView::Plain(body),
            Some(module) => PacketView::Qos { module, body },
        })
    }

    /// Decode a packet, slicing the body out of `payload` zero-copy
    /// (the module name, if any, is owned; the hot receive path uses
    /// [`Packet::decode_view`] instead).
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on bad magic or malformed framing.
    pub fn decode(payload: &Bytes) -> Result<Packet, OrbError> {
        Ok(match Packet::decode_view(payload)? {
            PacketView::Plain(body) => Packet::Plain(body),
            PacketView::Qos { module, body } => {
                Packet::Qos { module: module.to_owned(), body }
            }
        })
    }

    /// Decode a packet from a plain slice (copies the body; the hot
    /// receive path uses [`Packet::decode`] instead).
    ///
    /// # Errors
    ///
    /// As [`Packet::decode`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Packet, OrbError> {
        Packet::decode(&Bytes::copy_from_slice(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 42,
            reply_to: NodeId(1),
            object_key: ObjectKey("bank-1".into()),
            operation: "deposit".into(),
            args: vec![Any::Long(100), Any::Str("acct".into())],
            response_expected: true,
            kind: RequestKind::ServiceRequest,
            qos: Some(
                QosContext::new("compression").with_param("level", Any::Octet(3)),
            ),
            contexts: vec![ServiceContext { id: "maqs.trace".into(), data: vec![9, 8, 7] }],
        }
    }

    #[test]
    fn request_roundtrip() {
        let m = GiopMessage::Request(sample_request());
        assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn command_roundtrip() {
        for target in [CommandTarget::Transport, CommandTarget::Module("mcast".into())] {
            let mut r = sample_request();
            r.kind = RequestKind::Command(target);
            r.qos = None;
            let m = GiopMessage::Request(r);
            assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn probe_roundtrip() {
        let mut r = sample_request();
        r.kind = RequestKind::Probe;
        r.qos = None;
        let m = GiopMessage::Request(r);
        assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip_ok_and_exception() {
        let ok = GiopMessage::Reply(ReplyMessage {
            request_id: 7,
            from: NodeId(2),
            status: ReplyStatus::Ok(Any::Str("done".into())),
            contexts: vec![ServiceContext { id: "maqs.trace".into(), data: vec![1] }],
        });
        assert_eq!(GiopMessage::from_bytes(&ok.to_bytes()).unwrap(), ok);

        let exc = GiopMessage::Reply(ReplyMessage {
            request_id: 8,
            from: NodeId(2),
            status: ReplyStatus::Exception { kind: "BAD_OPERATION".into(), detail: "nope".into() },
            contexts: Vec::new(),
        });
        assert_eq!(GiopMessage::from_bytes(&exc.to_bytes()).unwrap(), exc);
    }

    #[test]
    fn reply_into_result() {
        let ok = ReplyMessage {
            request_id: 1,
            from: NodeId(0),
            status: ReplyStatus::Ok(Any::Long(5)),
            contexts: Vec::new(),
        };
        assert_eq!(ok.into_result().unwrap(), Any::Long(5));
        let err = ReplyMessage::from_result(1, NodeId(0), Err(OrbError::BadOperation("f".into())));
        assert_eq!(err.into_result(), Err(OrbError::BadOperation("f".into())));
    }

    #[test]
    fn packet_roundtrip() {
        let giop = GiopMessage::Request(sample_request()).to_bytes();
        let plain = Packet::Plain(giop.clone().into());
        assert_eq!(Packet::from_bytes(&plain.to_bytes()).unwrap(), plain);
        let qos = Packet::Qos { module: "compress".into(), body: giop.into() };
        assert_eq!(Packet::from_bytes(&qos.to_bytes()).unwrap(), qos);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Packet::Plain(vec![1].into()).to_bytes();
        bytes[0] = b'X';
        assert!(Packet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn borrowing_encoders_match_to_bytes() {
        let req = sample_request();
        assert_eq!(GiopMessage::encode_request(&req), GiopMessage::Request(req.clone()).to_bytes());
        let reply = ReplyMessage {
            request_id: 9,
            from: NodeId(3),
            status: ReplyStatus::Ok(Any::Long(1)),
            contexts: vec![ServiceContext { id: "maqs.trace".into(), data: vec![4, 5] }],
        };
        assert_eq!(GiopMessage::encode_reply(&reply), GiopMessage::Reply(reply.clone()).to_bytes());
    }

    #[test]
    fn single_buffer_framing_matches_two_step_encoding() {
        // The reserve-header frame must be byte-identical to wrapping a
        // standalone GIOP encode in a Packet, for every message shape.
        let req = sample_request();
        let two_step = Packet::Plain(GiopMessage::encode_request(&req).into()).to_bytes();
        assert_eq!(frame_plain_request(&req), two_step);

        let reply = ReplyMessage::from_result(7, NodeId(2), Ok(Any::Str("x".into())));
        let two_step = Packet::Plain(GiopMessage::encode_reply(&reply).into()).to_bytes();
        assert_eq!(frame_plain_reply(&reply), two_step);
    }

    #[test]
    fn framed_request_decodes_back() {
        let req = sample_request();
        let wire: Bytes = frame_plain_request(&req).into();
        let Packet::Plain(body) = Packet::decode(&wire).unwrap() else {
            panic!("expected plain packet");
        };
        assert_eq!(GiopMessage::from_bytes(&body).unwrap(), GiopMessage::Request(req));
    }

    #[test]
    fn qos_frame_roundtrips_arbitrary_bodies() {
        for body in [&b""[..], &b"z"[..], &[0xFFu8; 37][..]] {
            let wire: Bytes = frame_qos("compress", body).into();
            let got = Packet::decode(&wire).unwrap();
            assert_eq!(got, Packet::Qos { module: "compress".into(), body: Bytes::copy_from_slice(body) });
        }
    }

    #[test]
    fn decode_slices_body_zero_copy() {
        let wire: Bytes = frame_plain_request(&sample_request()).into();
        let Packet::Plain(body) = Packet::decode(&wire).unwrap() else {
            panic!("expected plain packet");
        };
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        assert!(
            wire_range.contains(&(body.as_ptr() as usize)),
            "decoded body must alias the wire buffer, not copy it"
        );
    }

    #[test]
    fn qos_context_param_lookup() {
        let q = QosContext::new("enc").with_param("key", Any::ULong(9));
        assert_eq!(q.param("key"), Some(&Any::ULong(9)));
        assert_eq!(q.param("nope"), None);
    }

    #[test]
    fn service_context_set_and_lookup() {
        let mut r = sample_request();
        assert_eq!(r.context("maqs.trace"), Some(&[9u8, 8, 7][..]));
        assert_eq!(r.context("absent"), None);
        r.set_context("maqs.trace", vec![1]);
        r.set_context("other", vec![2]);
        assert_eq!(r.context("maqs.trace"), Some(&[1u8][..]));
        assert_eq!(r.contexts.len(), 2);
        let mut reply = ReplyMessage::from_result(1, NodeId(0), Ok(Any::Void));
        assert_eq!(reply.context("maqs.trace"), None);
        reply.set_context("maqs.trace", vec![3]);
        assert_eq!(reply.context("maqs.trace"), Some(&[3u8][..]));
    }

    #[test]
    fn truncated_message_rejected() {
        let bytes = GiopMessage::Request(sample_request()).to_bytes();
        assert!(GiopMessage::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn peek_agrees_with_full_decode() {
        // Requests peek as Request, with a key hash that depends only on
        // the object key — the routing contract.
        let r1 = sample_request();
        let h1 = match peek(&GiopMessage::Request(r1.clone()).to_bytes()).unwrap() {
            GiopPeek::Request { key_hash } => key_hash,
            other => panic!("request peeked as {other:?}"),
        };
        let mut r2 = sample_request();
        r2.request_id = 999;
        r2.operation = "withdraw".into();
        r2.args.clear();
        match peek(&GiopMessage::Request(r2).to_bytes()).unwrap() {
            GiopPeek::Request { key_hash } => {
                assert_eq!(key_hash, h1, "hash must depend only on the object key");
            }
            other => panic!("request peeked as {other:?}"),
        }
        let mut r3 = sample_request();
        r3.object_key = ObjectKey("bank-2".into());
        match peek(&GiopMessage::Request(r3).to_bytes()).unwrap() {
            GiopPeek::Request { key_hash } => {
                assert_ne!(key_hash, h1, "distinct keys must (here) hash apart");
            }
            other => panic!("request peeked as {other:?}"),
        }
        // Replies peek as Reply; garbage and truncation are errors.
        let reply = GiopMessage::Reply(ReplyMessage::from_result(7, NodeId(2), Ok(Any::Void)));
        assert_eq!(peek(&reply.to_bytes()).unwrap(), GiopPeek::Reply);
        assert!(peek(&[9, 9, 9]).is_err());
        assert!(peek(&GiopMessage::Request(sample_request()).to_bytes()[..6]).is_err());
    }
}
