//! The GIOP-like wire protocol.
//!
//! Messages mirror GIOP's Request/Reply pair, with the MAQS extensions
//! from §4 of the paper:
//!
//! * A request is **dual-use**: either a *service request* addressed to an
//!   object, or a *command* addressed to the QoS transport itself or to a
//!   named QoS module ([`RequestKind`], Fig. 3).
//! * A request may carry a **QoS context** naming the negotiated
//!   characteristic and its parameters — the "tag" that routes it through
//!   the QoS transport instead of plain GIOP/IIOP.
//! * The outer [`Packet`] envelope records whether the GIOP body was
//!   transformed by a transport-level QoS module (and by which), so the
//!   receiving ORB can run the inverse transform before dispatch.

use crate::any::Any;
use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use crate::ior::ObjectKey;
use netsim::NodeId;

/// Protocol magic, first four octets of every packet.
pub const MAGIC: &[u8; 4] = b"MAQ1";

/// Who a *command* request is addressed to (Fig. 3 dispatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandTarget {
    /// The QoS transport itself (load/unload/list modules, bind…).
    Transport,
    /// A named, loaded QoS module.
    Module(String),
}

/// Whether a request is a plain service request or a QoS command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// An ordinary invocation on an application object.
    ServiceRequest,
    /// A command interpreted by the QoS transport or one of its modules.
    Command(CommandTarget),
    /// A liveness probe (failure detection). Dispatched like a service
    /// request, but counted under the `orb.probe.*` metric family so
    /// availability math over `orb.requests_*` excludes detector traffic.
    Probe,
}

/// The negotiated-QoS annotation a request may carry.
#[derive(Debug, Clone, PartialEq)]
pub struct QosContext {
    /// Name of the negotiated QoS characteristic (e.g. `"compression"`).
    pub characteristic: String,
    /// Characteristic-specific parameters.
    pub params: Vec<(String, Any)>,
}

impl QosContext {
    /// A context with no parameters.
    pub fn new(characteristic: impl Into<String>) -> QosContext {
        QosContext { characteristic: characteristic.into(), params: Vec::new() }
    }

    /// Builder-style parameter.
    pub fn with_param(mut self, name: impl Into<String>, value: Any) -> QosContext {
        self.params.push((name.into(), value));
        self
    }

    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Any> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// One GIOP service-context slot: out-of-band data riding along with a
/// request or reply (CORBA's `ServiceContext`). MAQS uses slot id
/// [`crate::trace::TRACE_CONTEXT_ID`] to propagate trace contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceContext {
    /// Slot identifier, e.g. `"maqs.trace"`.
    pub id: String,
    /// Opaque slot payload.
    pub data: Vec<u8>,
}

/// Find slot `id` in a context list.
fn find_context<'a>(contexts: &'a [ServiceContext], id: &str) -> Option<&'a [u8]> {
    contexts.iter().find(|c| c.id == id).map(|c| c.data.as_slice())
}

/// Insert-or-replace slot `id` in a context list.
fn set_context(contexts: &mut Vec<ServiceContext>, id: &str, data: Vec<u8>) {
    match contexts.iter_mut().find(|c| c.id == id) {
        Some(c) => c.data = data,
        None => contexts.push(ServiceContext { id: id.to_string(), data }),
    }
}

fn encode_contexts(enc: &mut CdrEncoder, contexts: &[ServiceContext]) {
    enc.put_len(contexts.len());
    for c in contexts {
        enc.put_string(&c.id);
        enc.put_bytes(&c.data);
    }
}

fn decode_contexts(dec: &mut CdrDecoder<'_>) -> Result<Vec<ServiceContext>, OrbError> {
    let n = dec.get_len()?;
    let mut contexts = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        let id = dec.get_string()?;
        let data = dec.get_bytes()?;
        contexts.push(ServiceContext { id, data });
    }
    Ok(contexts)
}

/// A request message.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestMessage {
    /// Correlation id, unique per sending ORB.
    pub request_id: u64,
    /// Node the reply should be sent to.
    pub reply_to: NodeId,
    /// Target object within the receiving adapter.
    pub object_key: ObjectKey,
    /// Operation name.
    pub operation: String,
    /// Operation arguments.
    pub args: Vec<Any>,
    /// Whether the caller waits for a reply (`false` = oneway).
    pub response_expected: bool,
    /// Service request vs command (Fig. 3).
    pub kind: RequestKind,
    /// Negotiated-QoS annotation, if any.
    pub qos: Option<QosContext>,
    /// Service-context slots (trace propagation etc.).
    pub contexts: Vec<ServiceContext>,
}

impl RequestMessage {
    /// Payload of service-context slot `id`, if present.
    pub fn context(&self, id: &str) -> Option<&[u8]> {
        find_context(&self.contexts, id)
    }

    /// Set (insert or replace) service-context slot `id`.
    pub fn set_context(&mut self, id: &str, data: Vec<u8>) {
        set_context(&mut self.contexts, id, data);
    }
}

/// Outcome carried by a reply.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyStatus {
    /// Success, with the operation result.
    Ok(Any),
    /// A system or user exception.
    Exception {
        /// Exception kind (see [`OrbError::kind`]).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

/// A reply message.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMessage {
    /// Correlation id matching the request.
    pub request_id: u64,
    /// Node that produced the reply (useful after group fan-out).
    pub from: NodeId,
    /// Outcome.
    pub status: ReplyStatus,
    /// Service-context slots (trace propagation etc.).
    pub contexts: Vec<ServiceContext>,
}

impl ReplyMessage {
    /// Payload of service-context slot `id`, if present.
    pub fn context(&self, id: &str) -> Option<&[u8]> {
        find_context(&self.contexts, id)
    }

    /// Set (insert or replace) service-context slot `id`.
    pub fn set_context(&mut self, id: &str, data: Vec<u8>) {
        set_context(&mut self.contexts, id, data);
    }

    /// Convert the wire status into the client-visible `Result`.
    pub fn into_result(self) -> Result<Any, OrbError> {
        match self.status {
            ReplyStatus::Ok(v) => Ok(v),
            ReplyStatus::Exception { kind, detail } => Err(OrbError::from_wire(&kind, detail)),
        }
    }

    /// Build a reply from a dispatch result.
    pub fn from_result(request_id: u64, from: NodeId, result: Result<Any, OrbError>) -> ReplyMessage {
        let status = match result {
            Ok(v) => ReplyStatus::Ok(v),
            Err(e) => ReplyStatus::Exception { kind: e.kind().to_string(), detail: e.detail().to_string() },
        };
        ReplyMessage { request_id, from, status, contexts: Vec::new() }
    }
}

/// Any GIOP-level message.
#[derive(Debug, Clone, PartialEq)]
pub enum GiopMessage {
    /// A request.
    Request(RequestMessage),
    /// A reply.
    Reply(ReplyMessage),
}

impl GiopMessage {
    /// Encode to wire bytes (without the outer [`Packet`] envelope).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = CdrEncoder::with_capacity(64);
        match self {
            GiopMessage::Request(r) => {
                enc.put_u8(0);
                enc.put_u64(r.request_id);
                enc.put_u32(r.reply_to.0);
                enc.put_string(&r.object_key.0);
                enc.put_string(&r.operation);
                enc.put_bool(r.response_expected);
                match &r.kind {
                    RequestKind::ServiceRequest => enc.put_u8(0),
                    RequestKind::Command(CommandTarget::Transport) => enc.put_u8(1),
                    RequestKind::Command(CommandTarget::Module(m)) => {
                        enc.put_u8(2);
                        enc.put_string(m);
                    }
                    RequestKind::Probe => enc.put_u8(3),
                }
                match &r.qos {
                    None => enc.put_bool(false),
                    Some(q) => {
                        enc.put_bool(true);
                        enc.put_string(&q.characteristic);
                        enc.put_len(q.params.len());
                        for (n, v) in &q.params {
                            enc.put_string(n);
                            v.encode(&mut enc);
                        }
                    }
                }
                enc.put_len(r.args.len());
                for a in &r.args {
                    a.encode(&mut enc);
                }
                encode_contexts(&mut enc, &r.contexts);
            }
            GiopMessage::Reply(r) => {
                enc.put_u8(1);
                enc.put_u64(r.request_id);
                enc.put_u32(r.from.0);
                match &r.status {
                    ReplyStatus::Ok(v) => {
                        enc.put_u8(0);
                        v.encode(&mut enc);
                    }
                    ReplyStatus::Exception { kind, detail } => {
                        enc.put_u8(1);
                        enc.put_string(kind);
                        enc.put_string(detail);
                    }
                }
                encode_contexts(&mut enc, &r.contexts);
            }
        }
        enc.into_bytes()
    }

    /// Decode from wire bytes.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<GiopMessage, OrbError> {
        let mut dec = CdrDecoder::new(bytes);
        match dec.get_u8()? {
            0 => {
                let request_id = dec.get_u64()?;
                let reply_to = NodeId(dec.get_u32()?);
                let object_key = ObjectKey(dec.get_string()?);
                let operation = dec.get_string()?;
                let response_expected = dec.get_bool()?;
                let kind = match dec.get_u8()? {
                    0 => RequestKind::ServiceRequest,
                    1 => RequestKind::Command(CommandTarget::Transport),
                    2 => RequestKind::Command(CommandTarget::Module(dec.get_string()?)),
                    3 => RequestKind::Probe,
                    k => return Err(OrbError::Marshal(format!("bad request kind {k}"))),
                };
                let qos = if dec.get_bool()? {
                    let characteristic = dec.get_string()?;
                    let n = dec.get_len()?;
                    let mut params = Vec::with_capacity(n.min(64));
                    for _ in 0..n {
                        let name = dec.get_string()?;
                        let val = Any::decode(&mut dec)?;
                        params.push((name, val));
                    }
                    Some(QosContext { characteristic, params })
                } else {
                    None
                };
                let n = dec.get_len()?;
                let mut args = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    args.push(Any::decode(&mut dec)?);
                }
                let contexts = decode_contexts(&mut dec)?;
                Ok(GiopMessage::Request(RequestMessage {
                    request_id,
                    reply_to,
                    object_key,
                    operation,
                    args,
                    response_expected,
                    kind,
                    qos,
                    contexts,
                }))
            }
            1 => {
                let request_id = dec.get_u64()?;
                let from = NodeId(dec.get_u32()?);
                let status = match dec.get_u8()? {
                    0 => ReplyStatus::Ok(Any::decode(&mut dec)?),
                    1 => {
                        let kind = dec.get_string()?;
                        let detail = dec.get_string()?;
                        ReplyStatus::Exception { kind, detail }
                    }
                    s => return Err(OrbError::Marshal(format!("bad reply status {s}"))),
                };
                let contexts = decode_contexts(&mut dec)?;
                Ok(GiopMessage::Reply(ReplyMessage { request_id, from, status, contexts }))
            }
            t => Err(OrbError::Marshal(format!("bad GIOP message tag {t}"))),
        }
    }
}

/// The outer transport envelope.
///
/// Records whether the GIOP body travelled over the plain GIOP/IIOP path
/// or through a transport-level QoS module; in the latter case the body
/// bytes are whatever the module's outbound transform produced, and the
/// receiving ORB applies the module's inverse transform before dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Untransformed GIOP bytes, the GIOP/IIOP path of Fig. 3.
    Plain(Vec<u8>),
    /// GIOP bytes transformed by the named QoS module.
    Qos {
        /// Name of the module whose inverse transform must be applied.
        module: String,
        /// Transformed bytes.
        body: Vec<u8>,
    },
}

impl Packet {
    /// Encode with magic and kind byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = CdrEncoder::with_capacity(32);
        for b in MAGIC {
            enc.put_u8(*b);
        }
        match self {
            Packet::Plain(body) => {
                enc.put_u8(0);
                enc.put_bytes(body);
            }
            Packet::Qos { module, body } => {
                enc.put_u8(1);
                enc.put_string(module);
                enc.put_bytes(body);
            }
        }
        enc.into_bytes()
    }

    /// Decode a packet.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on bad magic or malformed framing.
    pub fn from_bytes(bytes: &[u8]) -> Result<Packet, OrbError> {
        let mut dec = CdrDecoder::new(bytes);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = dec.get_u8()?;
        }
        if &magic != MAGIC {
            return Err(OrbError::Marshal(format!("bad packet magic {magic:?}")));
        }
        match dec.get_u8()? {
            0 => Ok(Packet::Plain(dec.get_bytes()?)),
            1 => {
                let module = dec.get_string()?;
                let body = dec.get_bytes()?;
                Ok(Packet::Qos { module, body })
            }
            k => Err(OrbError::Marshal(format!("bad packet kind {k}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestMessage {
        RequestMessage {
            request_id: 42,
            reply_to: NodeId(1),
            object_key: ObjectKey("bank-1".into()),
            operation: "deposit".into(),
            args: vec![Any::Long(100), Any::Str("acct".into())],
            response_expected: true,
            kind: RequestKind::ServiceRequest,
            qos: Some(
                QosContext::new("compression").with_param("level", Any::Octet(3)),
            ),
            contexts: vec![ServiceContext { id: "maqs.trace".into(), data: vec![9, 8, 7] }],
        }
    }

    #[test]
    fn request_roundtrip() {
        let m = GiopMessage::Request(sample_request());
        assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn command_roundtrip() {
        for target in [CommandTarget::Transport, CommandTarget::Module("mcast".into())] {
            let mut r = sample_request();
            r.kind = RequestKind::Command(target);
            r.qos = None;
            let m = GiopMessage::Request(r);
            assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn probe_roundtrip() {
        let mut r = sample_request();
        r.kind = RequestKind::Probe;
        r.qos = None;
        let m = GiopMessage::Request(r);
        assert_eq!(GiopMessage::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip_ok_and_exception() {
        let ok = GiopMessage::Reply(ReplyMessage {
            request_id: 7,
            from: NodeId(2),
            status: ReplyStatus::Ok(Any::Str("done".into())),
            contexts: vec![ServiceContext { id: "maqs.trace".into(), data: vec![1] }],
        });
        assert_eq!(GiopMessage::from_bytes(&ok.to_bytes()).unwrap(), ok);

        let exc = GiopMessage::Reply(ReplyMessage {
            request_id: 8,
            from: NodeId(2),
            status: ReplyStatus::Exception { kind: "BAD_OPERATION".into(), detail: "nope".into() },
            contexts: Vec::new(),
        });
        assert_eq!(GiopMessage::from_bytes(&exc.to_bytes()).unwrap(), exc);
    }

    #[test]
    fn reply_into_result() {
        let ok = ReplyMessage {
            request_id: 1,
            from: NodeId(0),
            status: ReplyStatus::Ok(Any::Long(5)),
            contexts: Vec::new(),
        };
        assert_eq!(ok.into_result().unwrap(), Any::Long(5));
        let err = ReplyMessage::from_result(1, NodeId(0), Err(OrbError::BadOperation("f".into())));
        assert_eq!(err.into_result(), Err(OrbError::BadOperation("f".into())));
    }

    #[test]
    fn packet_roundtrip() {
        let giop = GiopMessage::Request(sample_request()).to_bytes();
        let plain = Packet::Plain(giop.clone());
        assert_eq!(Packet::from_bytes(&plain.to_bytes()).unwrap(), plain);
        let qos = Packet::Qos { module: "compress".into(), body: giop };
        assert_eq!(Packet::from_bytes(&qos.to_bytes()).unwrap(), qos);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Packet::Plain(vec![1]).to_bytes();
        bytes[0] = b'X';
        assert!(Packet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn qos_context_param_lookup() {
        let q = QosContext::new("enc").with_param("key", Any::ULong(9));
        assert_eq!(q.param("key"), Some(&Any::ULong(9)));
        assert_eq!(q.param("nope"), None);
    }

    #[test]
    fn service_context_set_and_lookup() {
        let mut r = sample_request();
        assert_eq!(r.context("maqs.trace"), Some(&[9u8, 8, 7][..]));
        assert_eq!(r.context("absent"), None);
        r.set_context("maqs.trace", vec![1]);
        r.set_context("other", vec![2]);
        assert_eq!(r.context("maqs.trace"), Some(&[1u8][..]));
        assert_eq!(r.contexts.len(), 2);
        let mut reply = ReplyMessage::from_result(1, NodeId(0), Ok(Any::Void));
        assert_eq!(reply.context("maqs.trace"), None);
        reply.set_context("maqs.trace", vec![3]);
        assert_eq!(reply.context("maqs.trace"), Some(&[3u8][..]));
    }

    #[test]
    fn truncated_message_rejected() {
        let bytes = GiopMessage::Request(sample_request()).to_bytes();
        assert!(GiopMessage::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }
}
