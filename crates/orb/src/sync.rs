//! Rank-ordered lock wrappers — the ORB's lock-order discipline.
//!
//! Every long-lived lock in the middleware (ORB core, object adapter,
//! flight recorder, metrics, transport, pseudo-object registry, the QoS
//! services, the weaver and the QoS mechanisms) is wrapped in an
//! [`OrderedMutex`] or [`OrderedRwLock`] carrying a static [`LockRank`]
//! drawn from the single hierarchy table below. The discipline is:
//!
//! > **A thread may only acquire a lock whose rank is strictly greater
//! > than every rank it already holds.**
//!
//! Ranks grow "downward" through the layers: outer-layer locks (services,
//! weaver) have *low* ranks, inner-layer locks (ORB hot path, flight
//! recorder) have *high* ranks. A thread that respects the table can
//! therefore call from a QoS service through a mediator chain into the
//! ORB core and the flight recorder while holding locks at each layer —
//! but can never create a cycle, so lock-order deadlock is impossible by
//! construction.
//!
//! In debug builds (`cfg(debug_assertions)`, which includes `cargo test`)
//! every acquisition is checked against a thread-local stack of held
//! ranks and an out-of-order acquisition **panics immediately**, naming
//! both ranks, *before* blocking on the lock. Release builds compile the
//! wrappers down to plain `parking_lot` locks with zero overhead: the
//! rank is a dead `u16` field and the guard is a `repr`-transparent
//! wrapper around the `parking_lot` guard.
//!
//! # The rank hierarchy
//!
//! | Rank | Name | Protects | Module |
//! |-----:|------|----------|--------|
//! | 100 | `NamingBindings` | naming-context binding tree | `services::naming` |
//! | 110 | `TradingOffers` | trader service offers | `services::trading` |
//! | 120 | `NegotiationObjects` | negotiable-object registry | `services::negotiation` |
//! | 124 | `NegotiationAgreements` | struck agreements | `services::negotiation` |
//! | 128 | `NegotiationMonitor` | negotiation monitor hook | `services::negotiation` |
//! | 130 | `MonitoringSeries` | monitor time series | `services::monitoring` |
//! | 134 | `MonitoringHandlers` | threshold handlers | `services::monitoring` |
//! | 140 | `AccountingUsage` | usage records | `services::accounting` |
//! | 144 | `AccountingTariffs` | tariff table (read while usage is held) | `services::accounting` |
//! | 150 | `AdaptationEvents` | adaptation event log | `services::adaptation` |
//! | 160 | `IntrospectionBindings` | introspection bindings provider | `services::introspection` |
//! | 164 | `TelemetryState` | aggregator node/ring/SLO state | `services::telemetry` |
//! | 168 | `SloHandlers` | SLO alert-handler list | `services::telemetry` |
//! | 200 | `BindingRegistry` | object-key → QoS binding map | `weaver::binding` |
//! | 210 | `MediatorFactories` | mediator factory registry | `weaver::registry` |
//! | 220 | `WovenState` | woven-skeleton server chain | `weaver::skeleton` |
//! | 230 | `StubState` | woven-stub client chain | `weaver::mediator` |
//! | 240 | `ResiliencePolicy` | resilience retry/fallback policy | `weaver::resilience` |
//! | 244 | `ResilienceObserver` | resilience outcome observer | `weaver::resilience` |
//! | 248 | `ResilienceTarget` | resilience target override | `weaver::resilience` |
//! | 252 | `ResilienceFailStatic` | forced-failure switch | `weaver::resilience` |
//! | 260 | `BreakerInner` | circuit-breaker state machine | `weaver::resilience` |
//! | 264 | `ResilienceLastGood` | last-good reply cache | `weaver::resilience` |
//! | 270 | `ChainObs` | per-chain trace/timing observations | `weaver::mediator` |
//! | 300 | `QosMechConfig` | mechanism configuration (validity, strategy, role, key, server set) | `qosmech::*` |
//! | 310 | `QosMechState` | mechanism mutable state (caches, buckets, rng) | `qosmech::*` |
//! | 320 | `QosMechStats` | mechanism counters, updated while state is held | `qosmech::*` |
//! | 330 | `QosMechMetrics` | mechanism metrics-registry hooks | `qosmech::*` |
//! | 400 | `QosBindingState` | QoS module/binding table | `orb::qos_binding` |
//! | 410 | `ResolveCache` | binding resolve cache | `orb::qos_binding` |
//! | 420 | `AdapterServants` | object-adapter servant map | `orb::adapter` |
//! | 430 | `PseudoObjects` | pseudo-object registry | `orb::pseudo` |
//! | 436 | `WireFaultState` | fault-injection script/held-frame state | `orb::wire::fault` |
//! | 438 | `WireObservers` | wire lifecycle-observer list | `orb::wire` |
//! | 440 | `WireState` | wire-transport peer/connection registry | `orb::wire` |
//! | 442 | `WireOutbox` | one connection's bounded outbox queue | `orb::wire` |
//! | 444 | `WireConn` | one pooled connection's control stream | `orb::wire` |
//! | 500 | `PendingShard` | one shard of the pending-request table | `orb::core` |
//! | 510 | `ReplySlot` | per-thread reply rendezvous slot | `orb::core` |
//! | 600 | `MetricsInner` | metrics registry interior | `orb::metrics` |
//! | 700 | `FlightSlots` | flight-recorder slot list | `orb::flight` |
//! | 710 | `FlightBuf` | one staging-slot buffer | `orb::flight` |
//! | 720 | `FlightRing` | flight-recorder ring | `orb::flight` |
//! | 730 | `FlightDumps` | captured flight dumps | `orb::flight` |
//!
//! Leaf facilities that *any* layer may call while holding its own locks
//! (metrics, the flight recorder) sit at the bottom of the table with the
//! highest ranks. The ORB hot path (pending shard → reply slot) sits just
//! above them. Two locks of the *same* rank may never be held together —
//! code that needs two shards must release the first before taking the
//! second (the core's scan paths already do).
//!
//! # Adding a lock
//!
//! 1. Pick the layer the lock belongs to and insert a rank in the table
//!    above, leaving numeric gaps for future neighbours.
//! 2. Add the variant to [`LockRank`] (explicit discriminant) and a row
//!    to [`LockRank::TABLE`].
//! 3. Wrap the lock in [`OrderedMutex`]/[`OrderedRwLock`] with that rank.
//! 4. Run `cargo test` (debug): every existing test doubles as a
//!    lock-order test, and `qoslint` (QL201/QL202) checks the table
//!    itself stays acyclic and complete.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

/// Static rank of a lock in the global acquisition order.
///
/// See the [module docs](self) for the full hierarchy table. Discriminants
/// are explicit so the numeric order in the source is the authoritative
/// acquisition order and survives reordering of the variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
#[allow(missing_docs)] // each variant is documented by the table row
pub enum LockRank {
    NamingBindings = 100,
    TradingOffers = 110,
    NegotiationObjects = 120,
    NegotiationAgreements = 124,
    NegotiationMonitor = 128,
    MonitoringSeries = 130,
    MonitoringHandlers = 134,
    AccountingUsage = 140,
    AccountingTariffs = 144,
    AdaptationEvents = 150,
    IntrospectionBindings = 160,
    TelemetryState = 164,
    SloHandlers = 168,
    BindingRegistry = 200,
    MediatorFactories = 210,
    WovenState = 220,
    StubState = 230,
    ResiliencePolicy = 240,
    ResilienceObserver = 244,
    ResilienceTarget = 248,
    ResilienceFailStatic = 252,
    BreakerInner = 260,
    ResilienceLastGood = 264,
    ChainObs = 270,
    QosMechConfig = 300,
    QosMechState = 310,
    QosMechStats = 320,
    QosMechMetrics = 330,
    QosBindingState = 400,
    ResolveCache = 410,
    AdapterServants = 420,
    PseudoObjects = 430,
    WireFaultState = 436,
    WireObservers = 438,
    WireState = 440,
    WireOutbox = 442,
    WireConn = 444,
    PendingShard = 500,
    ReplySlot = 510,
    MetricsInner = 600,
    FlightSlots = 700,
    FlightBuf = 710,
    FlightRing = 720,
    FlightDumps = 730,
}

/// One row of the declared hierarchy: `(rank value, name, owning module)`.
pub type RankRow = (u16, &'static str, &'static str);

impl LockRank {
    /// The declared hierarchy as plain data, in acquisition order.
    ///
    /// This is the machine-readable form of the module-level table; it
    /// feeds the introspection service and `qoslint`'s concurrency lints
    /// (QL201–QL203).
    pub const TABLE: &'static [RankRow] = &[
        (100, "NamingBindings", "services::naming"),
        (110, "TradingOffers", "services::trading"),
        (120, "NegotiationObjects", "services::negotiation"),
        (124, "NegotiationAgreements", "services::negotiation"),
        (128, "NegotiationMonitor", "services::negotiation"),
        (130, "MonitoringSeries", "services::monitoring"),
        (134, "MonitoringHandlers", "services::monitoring"),
        (140, "AccountingUsage", "services::accounting"),
        (144, "AccountingTariffs", "services::accounting"),
        (150, "AdaptationEvents", "services::adaptation"),
        (160, "IntrospectionBindings", "services::introspection"),
        (164, "TelemetryState", "services::telemetry"),
        (168, "SloHandlers", "services::telemetry"),
        (200, "BindingRegistry", "weaver::binding"),
        (210, "MediatorFactories", "weaver::registry"),
        (220, "WovenState", "weaver::skeleton"),
        (230, "StubState", "weaver::mediator"),
        (240, "ResiliencePolicy", "weaver::resilience"),
        (244, "ResilienceObserver", "weaver::resilience"),
        (248, "ResilienceTarget", "weaver::resilience"),
        (252, "ResilienceFailStatic", "weaver::resilience"),
        (260, "BreakerInner", "weaver::resilience"),
        (264, "ResilienceLastGood", "weaver::resilience"),
        (270, "ChainObs", "weaver::mediator"),
        (300, "QosMechConfig", "qosmech"),
        (310, "QosMechState", "qosmech"),
        (320, "QosMechStats", "qosmech"),
        (330, "QosMechMetrics", "qosmech"),
        (400, "QosBindingState", "orb::qos_binding"),
        (410, "ResolveCache", "orb::qos_binding"),
        (420, "AdapterServants", "orb::adapter"),
        (430, "PseudoObjects", "orb::pseudo"),
        (436, "WireFaultState", "orb::wire::fault"),
        (438, "WireObservers", "orb::wire"),
        (440, "WireState", "orb::wire"),
        (442, "WireOutbox", "orb::wire"),
        (444, "WireConn", "orb::wire"),
        (500, "PendingShard", "orb::core"),
        (510, "ReplySlot", "orb::core"),
        (600, "MetricsInner", "orb::metrics"),
        (700, "FlightSlots", "orb::flight"),
        (710, "FlightBuf", "orb::flight"),
        (720, "FlightRing", "orb::flight"),
        (730, "FlightDumps", "orb::flight"),
    ];

    /// The numeric rank value.
    #[inline]
    pub const fn value(self) -> u16 {
        self as u16
    }

    /// The rank's name as it appears in the hierarchy table.
    pub fn name(self) -> &'static str {
        let v = self.value();
        for &(rank, name, _) in Self::TABLE {
            if rank == v {
                return name;
            }
        }
        "<unknown>"
    }
}

#[cfg(debug_assertions)]
mod check {
    //! Debug-only thread-local rank-stack bookkeeping.

    use super::LockRank;
    use std::cell::RefCell;

    #[derive(Clone, Copy)]
    struct Held {
        rank: LockRank,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Token recording one held lock; removing it on drop keeps the
    /// stack correct even when guards are released out of LIFO order
    /// (which the discipline permits).
    pub(super) struct HeldToken {
        id: u64,
    }

    /// Check `rank` against every currently-held rank and record it.
    /// Panics — naming both ranks — *before* the caller blocks on the
    /// lock, so a would-be deadlock surfaces as a clean test failure.
    pub(super) fn acquire(rank: LockRank) -> HeldToken {
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(worst) = held.iter().max_by_key(|h| h.rank) {
                assert!(
                    rank > worst.rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding `{}` \
                     (rank {}); locks must be acquired in strictly increasing rank order \
                     — see the hierarchy table in orb::sync",
                    rank.name(),
                    rank.value(),
                    worst.rank.name(),
                    worst.rank.value(),
                );
            }
        });
        let id = NEXT_ID.with(|n| {
            let mut n = n.borrow_mut();
            *n += 1;
            *n
        });
        HELD.with(|held| held.borrow_mut().push(Held { rank, id }));
        HeldToken { id }
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().position(|h| h.id == self.id) {
                    held.remove(pos);
                }
            });
        }
    }

    /// Ranks currently held by this thread, in acquisition order.
    pub(super) fn held_ranks() -> Vec<LockRank> {
        HELD.with(|held| held.borrow().iter().map(|h| h.rank).collect())
    }
}

/// Ranks currently held by the calling thread, in acquisition order.
///
/// Debug builds only; release builds always return an empty vector. Meant
/// for assertions in tests and models, not for control flow.
pub fn held_ranks() -> Vec<LockRank> {
    #[cfg(debug_assertions)]
    {
        check::held_ranks()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// A mutex that participates in the global lock-order discipline.
///
/// Debug builds panic on out-of-order acquisition; release builds are a
/// plain `parking_lot::Mutex` plus a dead `u16`.
pub struct OrderedMutex<T: ?Sized> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex at `rank`.
    pub const fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex { rank, inner: Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// This lock's rank in the hierarchy.
    #[inline]
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire the mutex, blocking. Panics in debug builds if the calling
    /// thread already holds a lock of equal or greater rank.
    #[inline]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = check::acquire(self.rank);
        OrderedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Try to acquire the mutex without blocking. The rank check still
    /// applies: even a `try_lock` that would succeed is a latent deadlock
    /// if it violates the order on some interleaving.
    #[inline]
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        #[cfg(debug_assertions)]
        let token = check::acquire(self.rank);
        let inner = self.inner.try_lock()?;
        Some(OrderedMutexGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: token,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex").field("rank", &self.rank).field("inner", &self.inner).finish()
    }
}

/// Guard for [`OrderedMutex`]; releases the rank on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: check::HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that participates in the lock-order discipline.
///
/// Both read and write acquisitions are rank-checked: a read acquisition
/// out of rank order can still deadlock against a queued writer, so the
/// discipline makes no read/write distinction.
pub struct OrderedRwLock<T: ?Sized> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a reader-writer lock at `rank`.
    pub const fn new(rank: LockRank, value: T) -> OrderedRwLock<T> {
        OrderedRwLock { rank, inner: RwLock::new(value) }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// This lock's rank in the hierarchy.
    #[inline]
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire a shared read guard, blocking.
    #[inline]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = check::acquire(self.rank);
        OrderedRwLockReadGuard {
            inner: self.inner.read(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Acquire an exclusive write guard, blocking.
    #[inline]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = check::acquire(self.rank);
        OrderedRwLockWriteGuard {
            inner: self.inner.write(),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for [`OrderedRwLock`]; releases the rank on drop.
pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: check::HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`OrderedRwLock`]; releases the rank on drop.
pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: check::HeldToken,
}

impl<T: ?Sized> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with an [`OrderedMutex`].
///
/// Waiting releases the mutex but *keeps the rank on the thread's stack*:
/// the waiting thread runs no user code until the wait returns with the
/// mutex re-acquired, so the conservative accounting is free — and it
/// means a wake-up can never re-acquire out of order.
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// Create a condition variable.
    pub const fn new() -> OrderedCondvar {
        OrderedCondvar { inner: Condvar::new() }
    }

    /// Wake one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the mutex while waiting.
    #[inline]
    pub fn wait<T>(&self, guard: &mut OrderedMutexGuard<'_, T>) {
        self.inner.wait(&mut guard.inner);
    }

    /// Block until notified or `timeout` elapses; returns whether the
    /// wait timed out.
    #[inline]
    pub fn wait_for<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        timeout: Duration,
    ) -> bool {
        self.inner.wait_for(&mut guard.inner, timeout).timed_out()
    }

    /// Block until notified or `deadline` passes; returns whether the
    /// wait timed out.
    #[inline]
    pub fn wait_until<T>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T>,
        deadline: Instant,
    ) -> bool {
        self.inner.wait_until(&mut guard.inner, deadline).timed_out()
    }
}

impl Default for OrderedCondvar {
    fn default() -> OrderedCondvar {
        OrderedCondvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn in_order_acquisition_is_allowed() {
        let outer = OrderedMutex::new(LockRank::BindingRegistry, 1u32);
        let inner = OrderedMutex::new(LockRank::PendingShard, 2u32);
        let leaf = OrderedRwLock::new(LockRank::FlightRing, 3u32);
        let a = outer.lock();
        let b = inner.lock();
        let c = leaf.read();
        assert_eq!(*a + *b + *c, 6);
        assert_eq!(
            held_ranks(),
            vec![LockRank::BindingRegistry, LockRank::PendingShard, LockRank::FlightRing]
        );
    }

    #[test]
    fn out_of_order_acquisition_panics_in_debug() {
        let inner = OrderedMutex::new(LockRank::FlightRing, ());
        let outer = OrderedMutex::new(LockRank::PendingShard, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _leaf = inner.lock();
            let _core = outer.lock(); // rank 500 after rank 720: inversion
        }));
        let msg = *result.expect_err("inversion must panic").downcast::<String>().unwrap();
        assert!(msg.contains("lock-order violation"), "message: {msg}");
        assert!(msg.contains("PendingShard") && msg.contains("FlightRing"), "message: {msg}");
        assert!(msg.contains("500") && msg.contains("720"), "message: {msg}");
    }

    #[test]
    fn same_rank_reacquisition_panics_in_debug() {
        let a = OrderedRwLock::new(LockRank::PendingShard, ());
        let b = OrderedRwLock::new(LockRank::PendingShard, ());
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _first = a.read();
            let _second = b.read(); // equal rank: forbidden even for reads
        }));
        assert!(result.is_err(), "same-rank double acquisition must panic");
    }

    #[test]
    fn release_unwinds_the_stack_even_out_of_lifo_order() {
        let low = OrderedMutex::new(LockRank::BindingRegistry, ());
        let high = OrderedMutex::new(LockRank::PendingShard, ());
        let g1 = low.lock();
        let g2 = high.lock();
        drop(g1); // release the *outer* lock first: legal
        assert_eq!(held_ranks(), vec![LockRank::PendingShard]);
        drop(g2);
        assert!(held_ranks().is_empty());
        // After full release any rank is acquirable again.
        let _g = low.lock();
    }

    #[test]
    fn try_lock_contended_does_not_leak_a_rank() {
        let m = std::sync::Arc::new(OrderedMutex::new(LockRank::PendingShard, ()));
        let m2 = std::sync::Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            assert!(held_ranks().is_empty(), "failed try_lock must pop its rank");
        });
        t.join().unwrap();
        drop(g);
    }

    #[test]
    fn condvar_roundtrip_preserves_rank() {
        let m = std::sync::Arc::new(OrderedMutex::new(LockRank::ReplySlot, false));
        let cv = std::sync::Arc::new(OrderedCondvar::new());
        let (m2, cv2) = (std::sync::Arc::clone(&m), std::sync::Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
            assert_eq!(held_ranks(), vec![LockRank::ReplySlot]);
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn table_is_sorted_unique_and_matches_variants() {
        let mut prev = 0u16;
        for &(rank, name, module) in LockRank::TABLE {
            assert!(rank > prev, "table must be strictly increasing at {name}");
            assert!(!module.is_empty());
            prev = rank;
        }
        // Spot-check enum/table agreement.
        assert_eq!(LockRank::PendingShard.name(), "PendingShard");
        assert_eq!(LockRank::FlightDumps.value(), 730);
    }
}
