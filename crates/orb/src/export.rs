//! Telemetry exporters: standard egress formats for the observability
//! plane.
//!
//! Pure functions over plain snapshot data — no locks, no I/O:
//!
//! * [`prometheus_text`] — Prometheus text exposition for a
//!   [`MetricsSnapshot`], with correct *cumulative* `le` histogram
//!   semantics and bucket-interpolated p50/p95/p99 annotations;
//! * [`chrome_events`] / [`chrome_trace_json`] — Chrome `trace_event`
//!   JSON built from [`TraceContext`] spans (plus flight-recorder
//!   instants), so a request's stub→mediator→wire→servant→epilog
//!   lifecycle opens as a flame view in `chrome://tracing` or Perfetto;
//! * [`flight_jsonl`] — JSONL streaming of [`FlightEvent`]s;
//! * [`snapshot_to_any`] / [`snapshot_from_any`] — the self-describing
//!   wire form the remote-introspection servant answers with.

use crate::any::Any;
use crate::error::OrbError;
use crate::flight::FlightEvent;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::trace::TraceContext;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Map a metric name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`, dots become underscores).
fn prometheus_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

/// Render a [`MetricsSnapshot`] in the Prometheus text exposition
/// format. Counter names are prefixed `maqs_`; histogram buckets are
/// emitted with *cumulative* `le` counts (each bucket includes every
/// faster observation), a `+Inf` bucket equal to the total count, and
/// `_sum`/`_count` series. A comment per histogram carries the
/// bucket-interpolated p50/p95/p99 (see
/// [`HistogramSnapshot::quantile`]); quantiles whose rank falls in the
/// overflow bucket render honestly as `>=<last bound>`.
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    prometheus_text_labeled(snapshot, &[])
}

/// [`prometheus_text`] with a fixed label set attached to every series.
///
/// This is the fleet-exposition form: the telemetry aggregator renders
/// each node's scrape with `[("node", name)]` (and per-object planes
/// with an extra `object` label) so one exposition document carries the
/// whole cluster, distinguishable per Prometheus data-model semantics.
/// Label *values* are escaped (`\`, `"`, newline); label names must
/// already be valid Prometheus names. With an empty label set the
/// output is byte-identical to [`prometheus_text`].
pub fn prometheus_text_labeled(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let escaped: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            let escaped_v =
                v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            (prometheus_name(k), escaped_v)
        })
        .collect();
    // The `{...}` suffix for plain series, and the prefix joined onto
    // the `le` label for bucket series.
    let plain = if escaped.is_empty() {
        String::new()
    } else {
        let body: Vec<String> =
            escaped.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", body.join(","))
    };
    let bucket_prefix: String =
        escaped.iter().map(|(k, v)| format!("{k}=\"{v}\",")).collect();
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let m = prometheus_name(name);
        let _ = writeln!(out, "# TYPE maqs_{m} counter");
        let _ = writeln!(out, "maqs_{m}{plain} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let m = prometheus_name(name);
        let _ = writeln!(out, "# TYPE maqs_{m} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in &h.buckets {
            cumulative += count;
            let _ = writeln!(out, "maqs_{m}_bucket{{{bucket_prefix}le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "maqs_{m}_bucket{{{bucket_prefix}le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "maqs_{m}_sum{plain} {}", h.sum_us);
        let _ = writeln!(out, "maqs_{m}_count{plain} {}", h.count);
        let _ = writeln!(out, "# maqs_{m} quantiles: {}", quantile_line(h));
    }
    out
}

/// `p50=… p95=… p99=…` for one histogram (interpolated, `µs`).
pub fn quantile_line(h: &HistogramSnapshot) -> String {
    let q = |p: f64| h.quantile(p).map_or_else(|| "n/a".to_string(), |e| e.to_string());
    format!("p50={} p95={} p99={}", q(0.50), q(0.95), q(0.99))
}

/// One event of a Chrome `trace_event` document ([`chrome_events`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name (the span's layer, or a flight-event kind).
    pub name: String,
    /// Phase: `'X'` for complete spans, `'i'` for instants.
    pub ph: char,
    /// Start timestamp, µs (synthesized; see [`chrome_events`]).
    pub ts: u64,
    /// Duration, µs (0 for instants).
    pub dur: u64,
    /// Process id (always 1 — one MAQS deployment).
    pub pid: u64,
    /// Thread id: one lane per trace (flight instants use lane 0).
    pub tid: u64,
    /// The node that recorded the span/event.
    pub node: String,
    /// The trace id, when the event belongs to a sampled request.
    pub trace_id: Option<u64>,
}

/// Index-tree node used to synthesize span nesting.
struct TreeNode {
    idx: usize,
    children: Vec<TreeNode>,
}

/// Synthesize Chrome `'X'` events (one lane per trace) from recorded
/// spans.
///
/// [`TraceContext`] spans carry inclusive durations but no start
/// timestamps, so start times are synthesized from the known layer
/// hierarchy: `stub ⊃ mediator:* ⊃ orb.client ⊃ {wire, orb.server ⊃
/// adapter ⊃ skeleton spans, wire.reply}`. Children are laid out
/// sequentially inside their parent and clamped to its extent, so the
/// flame-view invariant (children nest within parents) holds even under
/// clock noise between independently measured layers.
pub fn chrome_events(traces: &[TraceContext]) -> Vec<ChromeEvent> {
    let mut out = Vec::new();
    for (lane, trace) in traces.iter().enumerate() {
        let spans = &trace.spans;
        let find = |layer: &str| spans.iter().rposition(|s| s.layer == layer);
        let stub = find("stub");
        let client = find("orb.client");
        let server = find("orb.server");
        let adapter = find("adapter");
        let wire = find("wire");
        let reply = find("wire.reply");
        let mediators: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.layer.starts_with("mediator:"))
            .map(|(i, _)| i)
            .collect();
        let named: Vec<usize> = [stub, client, server, adapter, wire, reply]
            .iter()
            .flatten()
            .copied()
            .chain(mediators.iter().copied())
            .collect();
        // Spans recorded before the server-side container closed are
        // server-internal (skeleton layers); the rest are client-side
        // annotations.
        let inner_cut = adapter.or(server).unwrap_or(0);
        let mut inner_others = Vec::new();
        let mut outer_others = Vec::new();
        for i in 0..spans.len() {
            if named.contains(&i) {
                continue;
            }
            if i < inner_cut {
                inner_others.push(TreeNode { idx: i, children: Vec::new() });
            } else {
                outer_others.push(TreeNode { idx: i, children: Vec::new() });
            }
        }
        // Server subtree: orb.server ⊃ adapter ⊃ skeleton spans.
        let server_subtree = match (server, adapter) {
            (Some(s), Some(a)) => {
                Some(TreeNode { idx: s, children: vec![TreeNode { idx: a, children: inner_others }] })
            }
            (Some(s), None) => Some(TreeNode { idx: s, children: inner_others }),
            (None, Some(a)) => Some(TreeNode { idx: a, children: inner_others }),
            (None, None) => {
                outer_others.splice(0..0, inner_others);
                None
            }
        };
        // Sequential children of the innermost client container.
        let mut seq: Vec<TreeNode> = Vec::new();
        if let Some(w) = wire {
            seq.push(TreeNode { idx: w, children: Vec::new() });
        }
        if let Some(s) = server_subtree {
            seq.push(s);
        }
        if let Some(r) = reply {
            seq.push(TreeNode { idx: r, children: Vec::new() });
        }
        seq.extend(outer_others);
        // Nesting chain: stub ⊃ mediators (outermost first) ⊃ orb.client.
        let chain: Vec<usize> =
            stub.into_iter().chain(mediators.iter().copied()).chain(client).collect();
        let roots = match chain.into_iter().rev().fold(None::<Vec<TreeNode>>, |acc, idx| {
            Some(vec![TreeNode { idx, children: acc.unwrap_or_default() }])
        }) {
            Some(mut roots) => {
                fn innermost(node: &mut TreeNode) -> &mut TreeNode {
                    if node.children.is_empty() {
                        node
                    } else {
                        innermost(&mut node.children[0])
                    }
                }
                innermost(&mut roots[0]).children = seq;
                roots
            }
            None => seq,
        };
        // Lay the tree out: sequential siblings, children clamped to the
        // parent's extent.
        fn layout(
            node: &TreeNode,
            start: u64,
            max_dur: u64,
            trace: &TraceContext,
            tid: u64,
            out: &mut Vec<ChromeEvent>,
        ) -> u64 {
            let span = &trace.spans[node.idx];
            let dur = span.dur_us.min(max_dur);
            out.push(ChromeEvent {
                name: span.layer.clone(),
                ph: 'X',
                ts: start,
                dur,
                pid: 1,
                tid,
                node: span.node.clone(),
                trace_id: Some(trace.trace_id),
            });
            let end = start + dur;
            let mut cursor = start;
            for child in &node.children {
                let used = layout(child, cursor, end - cursor, trace, tid, out);
                cursor += used;
            }
            dur
        }
        let tid = lane as u64 + 1;
        let mut cursor = 0u64;
        for root in &roots {
            cursor += layout(root, cursor, u64::MAX, trace, tid, &mut out);
        }
    }
    out
}

/// Render a full Chrome `trace_event` JSON document from trace spans
/// plus flight-recorder events (instants on lane 0). Open the output in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(traces: &[TraceContext], flight: &[FlightEvent]) -> String {
    let mut events = chrome_events(traces);
    for e in flight {
        events.push(ChromeEvent {
            name: e.kind.name().to_string(),
            ph: 'i',
            ts: e.ts_us,
            dur: 0,
            pid: 1,
            tid: 0,
            node: e.node.to_string(),
            trace_id: e.trace_id,
        });
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"maqs\",\"ph\":\"{}\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            json_string(&e.name),
            e.ph,
            e.ts,
            e.dur,
            e.pid,
            e.tid
        );
        if e.ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        let trace_id = e
            .trace_id
            .map_or_else(|| "null".to_string(), |id| json_string(&format!("{id:#x}")));
        let _ =
            write!(out, ",\"args\":{{\"node\":{},\"trace_id\":{}}}}}", json_string(&e.node), trace_id);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Render flight events as JSONL: one self-contained JSON object per
/// line, oldest first — the streaming form of the black box.
pub fn flight_jsonl(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let trace_id = e.trace_id.map_or_else(|| "null".to_string(), |id| id.to_string());
        let detail =
            e.detail.as_deref().map_or_else(|| "null".to_string(), |d| json_string(d));
        let _ = writeln!(
            out,
            "{{\"seq\":{},\"ts_us\":{},\"kind\":{},\"trace_id\":{},\"node\":{},\"layer\":{},\"detail\":{}}}",
            e.seq,
            e.ts_us,
            json_string(e.kind.name()),
            trace_id,
            json_string(&e.node),
            json_string(&e.layer),
            detail
        );
    }
    out
}

/// Encode a [`MetricsSnapshot`] as a self-describing [`Any`] — the wire
/// form the introspection servant's `metrics_snapshot` operation
/// returns.
pub fn snapshot_to_any(snapshot: &MetricsSnapshot) -> Any {
    let counters = snapshot
        .counters
        .iter()
        .map(|(name, value)| {
            Any::Struct(
                "Counter".to_string(),
                vec![
                    ("name".to_string(), Any::Str(name.clone())),
                    ("value".to_string(), Any::ULongLong(*value)),
                ],
            )
        })
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(name, h)| {
            let buckets = h
                .buckets
                .iter()
                .map(|(le, count)| {
                    Any::Struct(
                        "Bucket".to_string(),
                        vec![
                            ("le".to_string(), Any::ULongLong(*le)),
                            ("count".to_string(), Any::ULongLong(*count)),
                        ],
                    )
                })
                .collect();
            Any::Struct(
                "Histogram".to_string(),
                vec![
                    ("name".to_string(), Any::Str(name.clone())),
                    ("count".to_string(), Any::ULongLong(h.count)),
                    ("sum_us".to_string(), Any::ULongLong(h.sum_us)),
                    ("max_us".to_string(), Any::ULongLong(h.max_us)),
                    ("overflow".to_string(), Any::ULongLong(h.overflow)),
                    ("buckets".to_string(), Any::Sequence(buckets)),
                ],
            )
        })
        .collect();
    Any::Struct(
        "MetricsSnapshot".to_string(),
        vec![
            ("counters".to_string(), Any::Sequence(counters)),
            ("histograms".to_string(), Any::Sequence(histograms)),
        ],
    )
}

/// Decode the [`snapshot_to_any`] wire form back into a
/// [`MetricsSnapshot`].
///
/// # Errors
///
/// [`OrbError::Marshal`] on structurally invalid input.
pub fn snapshot_from_any(v: &Any) -> Result<MetricsSnapshot, OrbError> {
    let field = |v: &Any, name: &str| -> Result<Any, OrbError> {
        v.field(name)
            .cloned()
            .ok_or_else(|| OrbError::Marshal(format!("MetricsSnapshot missing {name}")))
    };
    let seq = |v: &Any| -> Result<Vec<Any>, OrbError> {
        v.as_sequence()
            .map(<[Any]>::to_vec)
            .ok_or_else(|| OrbError::Marshal("expected a sequence".to_string()))
    };
    let u64_of = |v: &Any| v.as_i64().unwrap_or(0) as u64;
    let mut counters = Vec::new();
    for c in seq(&field(v, "counters")?)? {
        counters.push((
            field(&c, "name")?.as_str().unwrap_or_default().to_string(),
            u64_of(&field(&c, "value")?),
        ));
    }
    let mut histograms = Vec::new();
    for h in seq(&field(v, "histograms")?)? {
        let mut buckets = Vec::new();
        for b in seq(&field(&h, "buckets")?)? {
            buckets.push((u64_of(&field(&b, "le")?), u64_of(&field(&b, "count")?)));
        }
        histograms.push((
            field(&h, "name")?.as_str().unwrap_or_default().to_string(),
            HistogramSnapshot {
                count: u64_of(&field(&h, "count")?),
                sum_us: u64_of(&field(&h, "sum_us")?),
                max_us: u64_of(&field(&h, "max_us")?),
                overflow: u64_of(&field(&h, "overflow")?),
                buckets,
            },
        ));
    }
    Ok(MetricsSnapshot { counters, histograms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightEventKind, FlightRecorder};
    use crate::metrics::MetricsRegistry;

    fn seeded_snapshot() -> MetricsSnapshot {
        let m = MetricsRegistry::new();
        m.add("orb.requests_sent", 4);
        m.incr("orb.replies_matched");
        m.observe_us("orb.roundtrip_us", 90);
        m.observe_us("orb.roundtrip_us", 110);
        m.observe_us("orb.roundtrip_us", 9_000);
        m.snapshot()
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let text = prometheus_text(&seeded_snapshot());
        assert!(text.contains("# TYPE maqs_orb_requests_sent counter"));
        assert!(text.contains("maqs_orb_requests_sent 4"));
        assert!(text.contains("# TYPE maqs_orb_roundtrip_us histogram"));
        // 90 → (50,100]; 110 → (100,250]; 9000 → overflow. Cumulative:
        assert!(text.contains("maqs_orb_roundtrip_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("maqs_orb_roundtrip_us_bucket{le=\"250\"} 2"));
        assert!(text.contains("maqs_orb_roundtrip_us_bucket{le=\"5000\"} 2"));
        assert!(text.contains("maqs_orb_roundtrip_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("maqs_orb_roundtrip_us_sum 9200"));
        assert!(text.contains("maqs_orb_roundtrip_us_count 3"));
        // p99 rank lands in overflow: reported honestly.
        assert!(text.contains("p99=>=5000"), "{text}");
    }

    #[test]
    fn labeled_exposition_carries_labels_on_every_series() {
        let text = prometheus_text_labeled(
            &seeded_snapshot(),
            &[("node", "w3"), ("object", "kv")],
        );
        assert!(text.contains("maqs_orb_requests_sent{node=\"w3\",object=\"kv\"} 4"));
        assert!(text.contains(
            "maqs_orb_roundtrip_us_bucket{node=\"w3\",object=\"kv\",le=\"100\"} 1"
        ));
        assert!(text.contains(
            "maqs_orb_roundtrip_us_bucket{node=\"w3\",object=\"kv\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("maqs_orb_roundtrip_us_sum{node=\"w3\",object=\"kv\"} 9200"));
        assert!(text.contains("maqs_orb_roundtrip_us_count{node=\"w3\",object=\"kv\"} 3"));
        // Label values are escaped; names are sanitized.
        let tricky = prometheus_text_labeled(&seeded_snapshot(), &[("no.de", "a\"b")]);
        assert!(tricky.contains("maqs_orb_requests_sent{no_de=\"a\\\"b\"} 4"));
    }

    #[test]
    fn empty_label_set_is_byte_identical_to_unlabeled() {
        let s = seeded_snapshot();
        assert_eq!(prometheus_text(&s), prometheus_text_labeled(&s, &[]));
    }

    #[test]
    fn chrome_events_nest_within_parents() {
        let mut ctx = TraceContext::with_id(0x42);
        // Recording order mirrors a real request: server side first.
        ctx.push("servant", "server", 80);
        ctx.push("adapter", "server", 100);
        ctx.push("wire", "server", 30);
        ctx.push("orb.server", "server", 120);
        ctx.push("wire.reply", "client", 30);
        ctx.push("orb.client", "client", 200);
        ctx.push("mediator:Resilience", "client", 220);
        ctx.push("stub", "client", 240);
        let events = chrome_events(&[ctx]);
        assert_eq!(events.len(), 8);
        let of = |name: &str| events.iter().find(|e| e.name == name).unwrap();
        let contains = |outer: &ChromeEvent, inner: &ChromeEvent| {
            outer.ts <= inner.ts && inner.ts + inner.dur <= outer.ts + outer.dur
        };
        assert!(contains(of("stub"), of("mediator:Resilience")));
        assert!(contains(of("mediator:Resilience"), of("orb.client")));
        assert!(contains(of("orb.client"), of("wire")));
        assert!(contains(of("orb.client"), of("orb.server")));
        assert!(contains(of("orb.server"), of("adapter")));
        assert!(contains(of("adapter"), of("servant")));
        assert!(contains(of("orb.client"), of("wire.reply")));
        // Siblings do not overlap.
        let (w, s) = (of("wire"), of("orb.server"));
        assert!(w.ts + w.dur <= s.ts || s.ts + s.dur <= w.ts);
        assert!(events.iter().all(|e| e.ph == 'X' && e.pid == 1 && e.tid == 1));
    }

    #[test]
    fn chrome_json_contains_required_fields_and_flight_instants() {
        let mut ctx = TraceContext::with_id(7);
        ctx.push("orb.client", "client", 100);
        let rec = FlightRecorder::new("client", 8);
        rec.record(FlightEventKind::RequestSent, "orb.client", Some(7));
        let json = chrome_trace_json(&[ctx], &rec.snapshot());
        for needle in ["\"ph\":\"X\"", "\"ph\":\"i\"", "\"ts\":", "\"dur\":", "\"pid\":1", "request_sent"]
        {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn flight_jsonl_is_one_object_per_line() {
        let rec = FlightRecorder::new("n", 8);
        rec.record(FlightEventKind::RequestSent, "orb.client", None);
        rec.record_detail(FlightEventKind::FaultTick, "netsim", None, "crash(2)".to_string());
        let jsonl = flight_jsonl(&rec.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"request_sent\"") && lines[0].contains("\"trace_id\":null"));
        assert!(lines[1].contains("\"detail\":\"crash(2)\""));
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn snapshot_any_roundtrip() {
        let snapshot = seeded_snapshot();
        let back = snapshot_from_any(&snapshot_to_any(&snapshot)).unwrap();
        assert_eq!(back, snapshot);
    }
}
