//! The object adapter: servant registry and request dispatch.

use crate::sync::{LockRank, OrderedRwLock};
use crate::any::Any;
use crate::error::OrbError;
use crate::ior::ObjectKey;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An object implementation registered with an [`ObjectAdapter`].
///
/// The servant is the "Service" box of the paper's Fig. 1: pure
/// application logic, unaware of QoS. The two `*_state` hooks are the
/// paper's §3.1 observation made concrete: replication-style QoS
/// mechanisms need a *dedicated interface* into the otherwise encapsulated
/// object state (initializing new replicas to the state of running ones).
/// Servants that opt out of state transfer simply keep the defaults.
pub trait Servant: Send + Sync {
    /// Repository id of the implemented interface, e.g. `IDL:Bank:1.0`.
    fn interface_id(&self) -> &str;

    /// Execute `op` with `args`.
    ///
    /// # Errors
    ///
    /// Implementations return [`OrbError::BadOperation`] for unknown
    /// operations, [`OrbError::BadParam`] for arity/type errors, and
    /// [`OrbError::UserException`] for application-level failures.
    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError>;

    /// Export the object state (for QoS mechanisms such as replica
    /// initialization). Default: unsupported.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] if the servant does not support state
    /// export.
    fn get_state(&self) -> Result<Any, OrbError> {
        Err(OrbError::BadOperation("_get_state".to_string()))
    }

    /// Overwrite the object state. Default: unsupported.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] if the servant does not support state
    /// import.
    fn set_state(&self, _state: &Any) -> Result<(), OrbError> {
        Err(OrbError::BadOperation("_set_state".to_string()))
    }
}

/// Maps object keys to active servants and dispatches requests to them.
#[derive(Clone)]
pub struct ObjectAdapter {
    servants: Arc<OrderedRwLock<HashMap<ObjectKey, Arc<dyn Servant>>>>,
}

impl Default for ObjectAdapter {
    fn default() -> ObjectAdapter {
        ObjectAdapter {
            servants: Arc::new(OrderedRwLock::new(LockRank::AdapterServants, HashMap::new())),
        }
    }
}

impl fmt::Debug for ObjectAdapter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObjectAdapter")
            .field("active_objects", &self.servants.read().len())
            .finish()
    }
}

impl ObjectAdapter {
    /// A new, empty adapter.
    pub fn new() -> ObjectAdapter {
        ObjectAdapter::default()
    }

    /// Activate `servant` under `key`, replacing any previous activation.
    pub fn activate(&self, key: impl Into<ObjectKey>, servant: Arc<dyn Servant>) {
        self.servants.write().insert(key.into(), servant);
    }

    /// Deactivate the object under `key`, returning its servant if active.
    pub fn deactivate(&self, key: &ObjectKey) -> Option<Arc<dyn Servant>> {
        self.servants.write().remove(key)
    }

    /// Look up the servant for `key`.
    pub fn resolve(&self, key: &ObjectKey) -> Option<Arc<dyn Servant>> {
        self.servants.read().get(key).cloned()
    }

    /// All currently active object keys, in unspecified order.
    pub fn active_keys(&self) -> Vec<ObjectKey> {
        self.servants.read().keys().cloned().collect()
    }

    /// Number of active objects.
    pub fn len(&self) -> usize {
        self.servants.read().len()
    }

    /// Whether no objects are active.
    pub fn is_empty(&self) -> bool {
        self.servants.read().is_empty()
    }

    /// Dispatch `op(args)` to the servant under `key`.
    ///
    /// Implements the CORBA built-in operations uniformly for every
    /// object: `_is_a` (repository-id check), `_non_existent`,
    /// `_interface` (repository id as a string), plus the MAQS state hooks
    /// `_get_state` / `_set_state`.
    ///
    /// # Errors
    ///
    /// [`OrbError::ObjectNotExist`] if `key` is not active, or whatever
    /// the servant's own dispatch returns.
    pub fn dispatch(&self, key: &ObjectKey, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        let servant = self
            .resolve(key)
            .ok_or_else(|| OrbError::ObjectNotExist(key.0.clone()))?;
        match op {
            "_is_a" => {
                let id = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("_is_a expects a string".to_string()))?;
                Ok(Any::Bool(servant.interface_id() == id))
            }
            "_non_existent" => Ok(Any::Bool(false)),
            "_interface" => Ok(Any::Str(servant.interface_id().to_string())),
            "_get_state" => servant.get_state(),
            "_set_state" => {
                let state = args
                    .first()
                    .ok_or_else(|| OrbError::BadParam("_set_state expects a value".to_string()))?;
                servant.set_state(state)?;
                Ok(Any::Void)
            }
            _ => servant.dispatch(op, args),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(parking_lot::Mutex<i32>);
    impl Servant for Counter {
        fn interface_id(&self) -> &str {
            "IDL:Counter:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "add" => {
                    let n = args
                        .first()
                        .and_then(Any::as_long)
                        .ok_or_else(|| OrbError::BadParam("add(long)".to_string()))?;
                    let mut v = self.0.lock();
                    *v += n;
                    Ok(Any::Long(*v))
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
        fn get_state(&self) -> Result<Any, OrbError> {
            Ok(Any::Long(*self.0.lock()))
        }
        fn set_state(&self, state: &Any) -> Result<(), OrbError> {
            *self.0.lock() = state.as_long().ok_or_else(|| OrbError::BadParam("long".to_string()))?;
            Ok(())
        }
    }

    fn adapter_with_counter() -> ObjectAdapter {
        let a = ObjectAdapter::new();
        a.activate("c1", Arc::new(Counter(parking_lot::Mutex::new(0))));
        a
    }

    #[test]
    fn activate_resolve_deactivate() {
        let a = adapter_with_counter();
        let key = ObjectKey("c1".into());
        assert!(a.resolve(&key).is_some());
        assert_eq!(a.len(), 1);
        assert!(a.deactivate(&key).is_some());
        assert!(a.is_empty());
        assert!(a.deactivate(&key).is_none());
    }

    #[test]
    fn dispatch_reaches_servant() {
        let a = adapter_with_counter();
        let key = ObjectKey("c1".into());
        assert_eq!(a.dispatch(&key, "add", &[Any::Long(5)]).unwrap(), Any::Long(5));
        assert_eq!(a.dispatch(&key, "add", &[Any::Long(2)]).unwrap(), Any::Long(7));
    }

    #[test]
    fn unknown_object_and_operation() {
        let a = adapter_with_counter();
        let missing = ObjectKey("nope".into());
        assert!(matches!(a.dispatch(&missing, "add", &[]), Err(OrbError::ObjectNotExist(_))));
        let key = ObjectKey("c1".into());
        assert!(matches!(a.dispatch(&key, "frob", &[]), Err(OrbError::BadOperation(_))));
    }

    #[test]
    fn builtin_operations() {
        let a = adapter_with_counter();
        let key = ObjectKey("c1".into());
        assert_eq!(
            a.dispatch(&key, "_is_a", &[Any::from("IDL:Counter:1.0")]).unwrap(),
            Any::Bool(true)
        );
        assert_eq!(
            a.dispatch(&key, "_is_a", &[Any::from("IDL:Other:1.0")]).unwrap(),
            Any::Bool(false)
        );
        assert_eq!(a.dispatch(&key, "_non_existent", &[]).unwrap(), Any::Bool(false));
        assert_eq!(
            a.dispatch(&key, "_interface", &[]).unwrap(),
            Any::Str("IDL:Counter:1.0".into())
        );
    }

    #[test]
    fn state_transfer_hooks() {
        let a = adapter_with_counter();
        let key = ObjectKey("c1".into());
        a.dispatch(&key, "add", &[Any::Long(9)]).unwrap();
        let state = a.dispatch(&key, "_get_state", &[]).unwrap();
        assert_eq!(state, Any::Long(9));
        a.dispatch(&key, "_set_state", &[Any::Long(3)]).unwrap();
        assert_eq!(a.dispatch(&key, "add", &[Any::Long(0)]).unwrap(), Any::Long(3));
    }

    #[test]
    fn replacing_activation() {
        let a = adapter_with_counter();
        a.activate("c1", Arc::new(Counter(parking_lot::Mutex::new(100))));
        let key = ObjectKey("c1".into());
        assert_eq!(a.dispatch(&key, "add", &[Any::Long(0)]).unwrap(), Any::Long(100));
    }
}
