//! Request-path tracing: the observability half of Fig. 1.
//!
//! A [`TraceContext`] is a trace id plus a stack of per-layer [`Span`]s.
//! It travels in a GIOP *service context* slot (id
//! [`TRACE_CONTEXT_ID`]): the client stub creates it, the ORB carries it
//! with the request, every layer that does measurable work appends a
//! span, and the server ORB sends the accumulated context back in the
//! reply's service-context slot. The result is a per-layer cost
//! breakdown of a single invocation — the executable version of the
//! paper's Fig. 1 picture (client → stub → ORB → network → ORB →
//! adapter → skeleton → servant).
//!
//! Server-side layers (object adapter, woven skeleton prolog/epilog,
//! servant) run deep inside dispatch where no `&mut TraceContext` can
//! reach them without changing the [`crate::adapter::Servant`] trait.
//! Instead the dispatching thread *installs* the request's context in a
//! thread-local ([`begin`]); layers call [`record`] / [`time`] to append
//! spans; the dispatcher takes the context back ([`TraceScope::finish`])
//! and attaches it to the reply. Installation nests, so a servant that
//! makes its own outbound calls does not corrupt the outer trace.
//!
//! Span durations are microseconds. Layers measured on the wall clock
//! (stub, mediators, ORB, adapter, skeleton, servant) report wall-clock
//! µs; the two `wire*` spans report *virtual* µs from the netsim link
//! model (`deliver_vt - send_vt`), since simulated wire time does not
//! pass on the wall clock.

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use netsim::NodeId;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Service-context slot id under which the trace travels.
pub const TRACE_CONTEXT_ID: &str = "maqs.trace";

/// One layer's contribution to a traced invocation.
///
/// Durations are *inclusive*: a `stub` span covers the mediator chain,
/// the ORB round trip and everything below it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Layer name, e.g. `"stub"`, `"mediator:compression"`, `"servant"`.
    pub layer: String,
    /// Name of the node that measured this span.
    pub node: String,
    /// Duration in microseconds (wall µs, or virtual µs for `wire*`).
    pub dur_us: u64,
}

/// A trace id plus the spans accumulated so far, in recording order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Id shared by every hop of one logical invocation.
    pub trace_id: u64,
    /// Spans appended by each instrumented layer.
    pub spans: Vec<Span>,
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// A process-unique trace id, namespaced by the originating node so two
/// nodes in one simulation never collide.
pub fn next_trace_id(node: NodeId) -> u64 {
    ((node.0 as u64) << 40) | NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

impl TraceContext {
    /// A fresh context originating at `node`, with no spans yet.
    pub fn new(node: NodeId) -> TraceContext {
        TraceContext::with_id(next_trace_id(node))
    }

    /// A context continuing an existing trace id.
    pub fn with_id(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, spans: Vec::new() }
    }

    /// Append a span.
    pub fn push(&mut self, layer: impl Into<String>, node: impl Into<String>, dur_us: u64) {
        self.spans.push(Span { layer: layer.into(), node: node.into(), dur_us });
    }

    /// The first span recorded for `layer`, if any.
    pub fn span(&self, layer: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.layer == layer)
    }

    /// Encode for the service-context slot.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = CdrEncoder::with_capacity(16 + self.spans.len() * 24);
        enc.put_u64(self.trace_id);
        enc.put_len(self.spans.len());
        for s in &self.spans {
            enc.put_string(&s.layer);
            enc.put_string(&s.node);
            enc.put_u64(s.dur_us);
        }
        enc.into_bytes()
    }

    /// Decode from a service-context slot.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceContext, OrbError> {
        let mut dec = CdrDecoder::new(bytes);
        let trace_id = dec.get_u64()?;
        let n = dec.get_len()?;
        let mut spans = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let layer = dec.get_string()?;
            let node = dec.get_string()?;
            let dur_us = dec.get_u64()?;
            spans.push(Span { layer, node, dur_us });
        }
        Ok(TraceContext { trace_id, spans })
    }
}

// ---- thread-local propagation on the dispatching thread ----------------

struct Active {
    ctx: TraceContext,
    node: String,
}

thread_local! {
    static CURRENT: RefCell<Option<Active>> = const { RefCell::new(None) };
}

/// Guard for a trace installed on the current thread; see [`begin`].
#[must_use = "finish() returns the accumulated trace"]
pub struct TraceScope {
    prev: Option<Active>,
    done: bool,
}

/// Install `ctx` as the current thread's trace for the duration of a
/// dispatch. The previous installation (if any — nested calls) is saved
/// and restored by [`TraceScope::finish`].
pub fn begin(ctx: TraceContext, node: impl Into<String>) -> TraceScope {
    let prev = CURRENT.with(|c| c.replace(Some(Active { ctx, node: node.into() })));
    TraceScope { prev, done: false }
}

impl TraceScope {
    /// Take the accumulated context back and restore the previous one.
    pub fn finish(mut self) -> TraceContext {
        self.done = true;
        let active = CURRENT.with(|c| c.replace(self.prev.take()));
        active.map(|a| a.ctx).unwrap_or_default()
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if !self.done {
            // Finish was skipped (panic unwinding): still restore nesting.
            CURRENT.with(|c| c.replace(self.prev.take()));
        }
    }
}

/// Append a span to the current thread's trace, if one is installed.
/// Layers below the dispatcher (adapter, skeleton, servant wrappers) use
/// this; it is a no-op on untraced requests.
pub fn record(layer: &str, dur_us: u64) {
    CURRENT.with(|c| {
        if let Some(active) = c.borrow_mut().as_mut() {
            let node = active.node.clone();
            active.ctx.push(layer, node, dur_us);
        }
    });
}

/// Run `f`, recording its wall-clock duration as a `layer` span on the
/// current trace (if any).
pub fn time<R>(layer: &str, f: impl FnOnce() -> R) -> R {
    let started = Instant::now();
    let out = f();
    record(layer, started.elapsed().as_micros() as u64);
    out
}

/// Whether a trace is installed on the current thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let mut ctx = TraceContext::with_id(77);
        ctx.push("stub", "client", 120);
        ctx.push("wire", "server", 30_000);
        let back = TraceContext::from_bytes(&ctx.to_bytes()).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(back.span("wire").unwrap().dur_us, 30_000);
        assert!(back.span("nope").is_none());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TraceContext::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn trace_ids_are_unique_and_node_scoped() {
        let a = next_trace_id(NodeId(1));
        let b = next_trace_id(NodeId(1));
        assert_ne!(a, b);
        assert_eq!(a >> 40, 1);
        assert_eq!(next_trace_id(NodeId(2)) >> 40, 2);
    }

    #[test]
    fn thread_local_install_record_finish() {
        assert!(!is_active());
        record("ignored", 1); // no-op without an installation
        let scope = begin(TraceContext::with_id(5), "srv");
        assert!(is_active());
        record("adapter", 10);
        let v = time("servant", || 42);
        assert_eq!(v, 42);
        let ctx = scope.finish();
        assert!(!is_active());
        assert_eq!(ctx.trace_id, 5);
        assert_eq!(ctx.spans.len(), 2);
        assert_eq!(ctx.spans[0].layer, "adapter");
        assert_eq!(ctx.spans[0].node, "srv");
        assert_eq!(ctx.spans[1].layer, "servant");
    }

    #[test]
    fn nested_installs_restore_outer() {
        let outer = begin(TraceContext::with_id(1), "a");
        record("outer-span", 1);
        {
            let inner = begin(TraceContext::with_id(2), "b");
            record("inner-span", 2);
            let got = inner.finish();
            assert_eq!(got.trace_id, 2);
            assert_eq!(got.spans.len(), 1);
        }
        record("outer-span-2", 3);
        let got = outer.finish();
        assert_eq!(got.trace_id, 1);
        assert_eq!(got.spans.len(), 2);
    }

    #[test]
    fn dropped_scope_restores_previous() {
        let outer = begin(TraceContext::with_id(1), "a");
        {
            let _inner = begin(TraceContext::with_id(2), "b");
            // dropped without finish(), as during a panic unwind
        }
        record("after", 4);
        let got = outer.finish();
        assert_eq!(got.trace_id, 1);
        assert_eq!(got.spans.len(), 1);
    }
}
