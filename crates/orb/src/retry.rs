//! Retry policies for transient invocation failures.
//!
//! The ORB classifies failures as retryable or not
//! ([`OrbError::is_retryable`]); this module adds the policy layer:
//! bounded attempts with (optionally jittered) exponential backoff.
//! Retry is deliberately *not* built into [`Orb::invoke`] — CORBA
//! semantics are at-most-once unless the caller opts in, and QoS
//! mechanisms like replication implement their own redundancy instead.

use crate::any::Any;
use crate::core::Orb;
use crate::error::OrbError;
use crate::giop::QosContext;
use crate::ior::Ior;
use std::time::Duration;

/// A bounded-retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Zero is treated as one.
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Backoff multiplier numerator/denominator per retry (e.g. 2/1).
    pub backoff_factor: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 10 ms initial backoff, doubling, capped at 1 s.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` and no backoff (tests, tight loops).
    pub fn immediate(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            initial_backoff: Duration::ZERO,
            backoff_factor: 1,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based).
    ///
    /// Computed as `initial_backoff * backoff_factor^(retry-1)`, saturating
    /// instead of wrapping or panicking for large retry counts, then capped
    /// at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exponent = retry.saturating_sub(1);
        let factor = u128::from(self.backoff_factor.max(1));
        let scale = factor.checked_pow(exponent).unwrap_or(u128::MAX);
        let nanos = self.initial_backoff.as_nanos().saturating_mul(scale);
        let grown = u64::try_from(nanos).map(Duration::from_nanos).unwrap_or(Duration::MAX);
        grown.min(self.max_backoff)
    }

    /// Run `op` under this policy, retrying retryable [`OrbError`]s.
    ///
    /// # Errors
    ///
    /// The last error once attempts are exhausted, or immediately for
    /// non-retryable errors.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, OrbError>,
    ) -> Result<T, OrbError> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < attempts => {
                    let backoff = self.backoff(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| OrbError::Transient("retries exhausted".to_string())))
    }

    /// Run `op` under this policy, but never let retries (attempts plus
    /// backoff sleeps) exceed the wall-clock `budget`.
    ///
    /// The first attempt always runs. A retry is only started if the
    /// budget has time left, and a backoff sleep that would cross the
    /// budget boundary is skipped together with its retry. Used by the
    /// resilience layer to keep retry storms inside a negotiated
    /// per-call deadline.
    ///
    /// # Errors
    ///
    /// The last error once attempts or budget are exhausted, or
    /// immediately for non-retryable errors.
    pub fn run_within<T>(
        &self,
        budget: Duration,
        mut op: impl FnMut() -> Result<T, OrbError>,
    ) -> Result<T, OrbError> {
        let attempts = self.max_attempts.max(1);
        let started = std::time::Instant::now();
        let mut last = None;
        for attempt in 1..=attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < attempts => {
                    let backoff = self.backoff(attempt);
                    let spent = started.elapsed();
                    if spent.saturating_add(backoff) >= budget {
                        return Err(e);
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| OrbError::Transient("retries exhausted".to_string())))
    }
}

/// Invoke with retries under `policy`.
///
/// # Errors
///
/// As [`RetryPolicy::run`].
pub fn invoke_with_retry(
    orb: &Orb,
    ior: &Ior,
    op: &str,
    args: &[Any],
    qos: Option<QosContext>,
    policy: &RetryPolicy,
) -> Result<Any, OrbError> {
    policy.run(|| orb.invoke_qos(ior, op, args, qos.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::Servant;
    use netsim::Network;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_schedule() {
        let p = RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff(4), Duration::from_millis(35));
    }

    #[test]
    fn backoff_saturates_for_large_retry_counts() {
        // 64 attempts: 10ms * 2^63 overflows u64 nanoseconds by orders of
        // magnitude; the schedule must clamp, not panic or wrap.
        let p = RetryPolicy {
            max_attempts: 64,
            initial_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            max_backoff: Duration::from_secs(1),
        };
        for retry in 1..=64 {
            assert!(p.backoff(retry) <= Duration::from_secs(1), "retry {retry}");
        }
        assert_eq!(p.backoff(64), Duration::from_secs(1));
        // Even an uncapped policy saturates instead of wrapping to zero.
        let uncapped = RetryPolicy {
            max_attempts: 64,
            initial_backoff: Duration::from_millis(10),
            backoff_factor: u32::MAX,
            max_backoff: Duration::MAX,
        };
        assert_eq!(uncapped.backoff(64), Duration::MAX);
        assert_eq!(uncapped.backoff(u32::MAX), Duration::MAX);
    }

    #[test]
    fn run_within_budget_stops_before_crossing_it() {
        // Backoff of 50ms per retry against a 10ms budget: the first
        // attempt runs, the first retry would cross the budget, so run
        // returns after exactly one attempt.
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(50),
            backoff_factor: 1,
            max_backoff: Duration::from_millis(50),
        };
        let calls = AtomicU32::new(0);
        let started = std::time::Instant::now();
        let result: Result<(), _> = p.run_within(Duration::from_millis(10), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(OrbError::Transient("flaky".to_string()))
        });
        assert!(result.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(started.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn run_within_generous_budget_behaves_like_run() {
        let calls = AtomicU32::new(0);
        let result = RetryPolicy::immediate(5).run_within(Duration::from_secs(5), || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(OrbError::Transient("flaky".to_string()))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retries_transient_until_success() {
        let calls = AtomicU32::new(0);
        let result = RetryPolicy::immediate(5).run(|| {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(OrbError::Transient("flaky".to_string()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn non_retryable_fails_fast() {
        let calls = AtomicU32::new(0);
        let result: Result<(), _> = RetryPolicy::immediate(5).run(|| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(OrbError::BadOperation("nope".to_string()))
        });
        assert!(result.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let result: Result<(), _> =
            RetryPolicy::immediate(3).run(|| Err(OrbError::Timeout("t".to_string())));
        assert_eq!(result.unwrap_err(), OrbError::Timeout("t".to_string()));
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let calls = AtomicU32::new(0);
        let _ = RetryPolicy::immediate(0).run(|| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    struct FlakyEcho {
        failures_left: Arc<AtomicU32>,
    }
    impl Servant for FlakyEcho {
        fn interface_id(&self) -> &str {
            "IDL:Flaky:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => {
                    if self
                        .failures_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                    {
                        Err(OrbError::Transient("warming up".to_string()))
                    } else {
                        Ok(args[0].clone())
                    }
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    #[test]
    fn invoke_with_retry_end_to_end() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let failures = Arc::new(AtomicU32::new(2));
        let ior = server.activate("f", Box::new(FlakyEcho { failures_left: failures }));
        let r = invoke_with_retry(
            &client,
            &ior,
            "echo",
            &[Any::Long(9)],
            None,
            &RetryPolicy::immediate(5),
        )
        .unwrap();
        assert_eq!(r, Any::Long(9));
        server.shutdown();
        client.shutdown();
    }
}
