//! Interoperable object references (IORs).
//!
//! An [`Ior`] names a remote object: the interface repository id, the
//! network node hosting it, and the object key within that node's object
//! adapter. Following Fig. 3 of the paper, an IOR additionally carries
//! **QoS tags**: the names of the QoS characteristics the server offers
//! for this object. A request is "QoS aware" exactly when its target IOR
//! is tagged, which is what lets the invocation interface decide between
//! the plain GIOP path and the QoS transport.

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::error::OrbError;
use crate::wire::Endpoint;
use netsim::NodeId;
use std::fmt;

/// Opaque object identity within one object adapter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey(pub String);

impl ObjectKey {
    /// The key's string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> ObjectKey {
        ObjectKey(s.to_string())
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> ObjectKey {
        ObjectKey(s)
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An interoperable object reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ior {
    /// Repository id of the object's interface, e.g. `IDL:Bank:1.0`.
    pub type_id: String,
    /// The network node hosting the object.
    pub node: NodeId,
    /// Object key within the hosting adapter.
    pub key: ObjectKey,
    /// QoS characteristics offered for this object (empty = QoS-unaware).
    pub qos_tags: Vec<String>,
    /// Tagged endpoint profiles: how the hosting node's wire transport
    /// can be reached. Empty for simulator-backed references (the
    /// simulator routes by [`NodeId`] alone); socket-backed ORBs attach
    /// their listener endpoint on `activate`, which is what lets a
    /// reference cross a process boundary.
    pub endpoints: Vec<Endpoint>,
}

impl Ior {
    /// A QoS-unaware reference.
    pub fn new(type_id: impl Into<String>, node: NodeId, key: impl Into<ObjectKey>) -> Ior {
        Ior {
            type_id: type_id.into(),
            node,
            key: key.into(),
            qos_tags: Vec::new(),
            endpoints: Vec::new(),
        }
    }

    /// Builder-style: add a QoS tag (idempotent).
    pub fn with_qos_tag(mut self, tag: impl Into<String>) -> Ior {
        let tag = tag.into();
        if !self.qos_tags.contains(&tag) {
            self.qos_tags.push(tag);
        }
        self
    }

    /// Builder-style: attach an endpoint profile (idempotent).
    pub fn with_endpoint(mut self, endpoint: Endpoint) -> Ior {
        if !self.endpoints.contains(&endpoint) {
            self.endpoints.push(endpoint);
        }
        self
    }

    /// Builder-style: attach several endpoint profiles in order
    /// (idempotent per endpoint). Order matters: socket transports
    /// prefer earlier endpoints and fail over down the list.
    pub fn with_endpoints(mut self, endpoints: impl IntoIterator<Item = Endpoint>) -> Ior {
        for endpoint in endpoints {
            if !self.endpoints.contains(&endpoint) {
                self.endpoints.push(endpoint);
            }
        }
        self
    }

    /// The first endpoint profile, if any.
    pub fn endpoint(&self) -> Option<&Endpoint> {
        self.endpoints.first()
    }

    /// Whether this reference is QoS-aware (Fig. 3's "With QoS?" test).
    pub fn is_qos_aware(&self) -> bool {
        !self.qos_tags.is_empty()
    }

    /// Whether a particular characteristic is offered.
    pub fn offers(&self, characteristic: &str) -> bool {
        self.qos_tags.iter().any(|t| t == characteristic)
    }

    /// Encode onto a CDR stream.
    pub fn encode(&self, enc: &mut CdrEncoder) {
        enc.put_string(&self.type_id);
        enc.put_u32(self.node.0);
        enc.put_string(&self.key.0);
        enc.put_len(self.qos_tags.len());
        for t in &self.qos_tags {
            enc.put_string(t);
        }
        enc.put_len(self.endpoints.len());
        for e in &self.endpoints {
            e.encode(enc);
        }
    }

    /// Decode from a CDR stream.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on malformed input.
    pub fn decode(dec: &mut CdrDecoder<'_>) -> Result<Ior, OrbError> {
        let type_id = dec.get_string()?;
        let node = NodeId(dec.get_u32()?);
        let key = ObjectKey(dec.get_string()?);
        let n = dec.get_len()?;
        let mut qos_tags = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            qos_tags.push(dec.get_string()?);
        }
        // Endpoint profiles were added after the original encoding; a
        // reference encoded without them still decodes (empty profile
        // list) so pre-profile URIs keep working.
        let mut endpoints = Vec::new();
        if !dec.is_at_end() {
            let n = dec.get_len()?;
            endpoints.reserve(n.min(8));
            for _ in 0..n {
                endpoints.push(Endpoint::decode(dec)?);
            }
        }
        Ok(Ior { type_id, node, key, qos_tags, endpoints })
    }

    /// Stringified form, `maqs-ior:<hex of CDR encoding>`, the analogue of
    /// CORBA's `IOR:...` URIs for passing references out of band.
    pub fn to_uri(&self) -> String {
        let mut enc = CdrEncoder::new();
        self.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut s = String::with_capacity(9 + bytes.len() * 2);
        s.push_str("maqs-ior:");
        for b in bytes {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse a `maqs-ior:` URI.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] if the scheme, hex or payload is malformed.
    pub fn from_uri(uri: &str) -> Result<Ior, OrbError> {
        let hex = uri
            .strip_prefix("maqs-ior:")
            .ok_or_else(|| OrbError::Marshal("missing maqs-ior: scheme".to_string()))?;
        if hex.len() % 2 != 0 {
            return Err(OrbError::Marshal("odd-length IOR hex".to_string()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|e| OrbError::Marshal(format!("bad IOR hex: {e}")))?;
            bytes.push(b);
        }
        Ior::decode(&mut CdrDecoder::new(&bytes))
    }
}

impl fmt::Display for Ior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}/{}", self.type_id, self.node, self.key)?;
        if self.is_qos_aware() {
            write!(f, " [qos: {}]", self.qos_tags.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ior {
        Ior::new("IDL:Bank:1.0", NodeId(3), "bank-1")
            .with_qos_tag("replication")
            .with_qos_tag("encryption")
    }

    #[test]
    fn cdr_roundtrip() {
        let ior = sample();
        let mut enc = CdrEncoder::new();
        ior.encode(&mut enc);
        let bytes = enc.into_bytes();
        assert_eq!(Ior::decode(&mut CdrDecoder::new(&bytes)).unwrap(), ior);
    }

    #[test]
    fn uri_roundtrip() {
        let ior = sample();
        let uri = ior.to_uri();
        assert!(uri.starts_with("maqs-ior:"));
        assert_eq!(Ior::from_uri(&uri).unwrap(), ior);
    }

    #[test]
    fn qos_awareness() {
        let plain = Ior::new("IDL:X:1.0", NodeId(0), "x");
        assert!(!plain.is_qos_aware());
        let tagged = plain.clone().with_qos_tag("compression");
        assert!(tagged.is_qos_aware());
        assert!(tagged.offers("compression"));
        assert!(!tagged.offers("replication"));
    }

    #[test]
    fn tags_are_idempotent() {
        let ior = Ior::new("IDL:X:1.0", NodeId(0), "x")
            .with_qos_tag("a")
            .with_qos_tag("a");
        assert_eq!(ior.qos_tags, vec!["a"]);
    }

    #[test]
    fn bad_uris_are_rejected() {
        assert!(Ior::from_uri("ior:abcd").is_err());
        assert!(Ior::from_uri("maqs-ior:abc").is_err()); // odd length
        assert!(Ior::from_uri("maqs-ior:zz").is_err()); // bad hex
        assert!(Ior::from_uri("maqs-ior:00").is_err()); // truncated payload
    }

    #[test]
    fn endpoint_profiles_roundtrip_cdr_and_uri() {
        let ior = sample()
            .with_endpoint(Endpoint::Tcp("127.0.0.1:9443".to_string()))
            .with_endpoint(Endpoint::Uds("/tmp/maqs.sock".to_string()))
            .with_endpoint(Endpoint::Tcp("127.0.0.1:9443".to_string())); // idempotent
        assert_eq!(ior.endpoints.len(), 2);
        assert_eq!(ior.endpoint(), Some(&Endpoint::Tcp("127.0.0.1:9443".to_string())));
        let uri = ior.to_uri();
        assert_eq!(Ior::from_uri(&uri).unwrap(), ior);
    }

    #[test]
    fn pre_profile_encoding_still_decodes() {
        // An IOR encoded without the trailing endpoint-profile list (the
        // pre-wire-boundary format) must still parse, with no profiles.
        let ior = sample();
        let mut enc = CdrEncoder::new();
        enc.put_string(&ior.type_id);
        enc.put_u32(ior.node.0);
        enc.put_string(&ior.key.0);
        enc.put_len(ior.qos_tags.len());
        for t in &ior.qos_tags {
            enc.put_string(t);
        }
        let bytes = enc.into_bytes();
        let decoded = Ior::decode(&mut CdrDecoder::new(&bytes)).unwrap();
        assert_eq!(decoded, ior);
        assert!(decoded.endpoints.is_empty());
    }

    #[test]
    fn display_shows_tags() {
        let s = sample().to_string();
        assert!(s.contains("IDL:Bank:1.0") && s.contains("replication"));
        assert!(!Ior::new("IDL:X:1.0", NodeId(0), "x").to_string().contains("qos"));
    }
}
