//! The dynamic invocation interface (DII).
//!
//! CORBA's DII builds requests at runtime, without generated stubs. The
//! paper leans on it for the *dynamic* interface of QoS transport modules
//! (§4): module-specific operations are not known statically, so they are
//! "handled through the dynamic invocation interface which is part of
//! standard CORBA". [`DynamicRequest`] is a builder over
//! [`Orb::invoke_qos`] / [`Orb::send_command`] that plays that role.
//!
//! # Example
//!
//! ```
//! use netsim::Network;
//! use orb::prelude::*;
//! use orb::dii::DynamicRequest;
//!
//! struct Adder;
//! impl Servant for Adder {
//!     fn interface_id(&self) -> &str { "IDL:Adder:1.0" }
//!     fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
//!         match op {
//!             "add" => Ok(Any::Long(
//!                 args.iter().filter_map(Any::as_long).sum(),
//!             )),
//!             _ => Err(OrbError::BadOperation(op.into())),
//!         }
//!     }
//! }
//!
//! let net = Network::new(1);
//! let server = Orb::start(&net, "server");
//! let client = Orb::start(&net, "client");
//! let ior = server.activate("adder", Box::new(Adder));
//!
//! let sum = DynamicRequest::new(&ior, "add")
//!     .arg(Any::Long(2))
//!     .arg(Any::Long(40))
//!     .invoke(&client)
//!     .unwrap();
//! assert_eq!(sum, Any::Long(42));
//! # server.shutdown(); client.shutdown();
//! ```

use crate::any::Any;
use crate::core::Orb;
use crate::error::OrbError;
use crate::giop::{CommandTarget, QosContext};
use crate::ior::Ior;
use netsim::NodeId;

/// A dynamically assembled request.
#[derive(Debug, Clone)]
pub struct DynamicRequest {
    target: Ior,
    operation: String,
    args: Vec<Any>,
    qos: Option<QosContext>,
}

impl DynamicRequest {
    /// Start building a request for `operation` on `target`.
    pub fn new(target: &Ior, operation: impl Into<String>) -> DynamicRequest {
        DynamicRequest {
            target: target.clone(),
            operation: operation.into(),
            args: Vec::new(),
            qos: None,
        }
    }

    /// Append an argument.
    pub fn arg(mut self, value: Any) -> DynamicRequest {
        self.args.push(value);
        self
    }

    /// Append several arguments.
    pub fn args<I: IntoIterator<Item = Any>>(mut self, values: I) -> DynamicRequest {
        self.args.extend(values);
        self
    }

    /// Attach a negotiated-QoS context.
    pub fn qos(mut self, qos: QosContext) -> DynamicRequest {
        self.qos = Some(qos);
        self
    }

    /// The operation name.
    pub fn operation(&self) -> &str {
        &self.operation
    }

    /// The argument list assembled so far.
    pub fn arg_list(&self) -> &[Any] {
        &self.args
    }

    /// Invoke synchronously through `orb`.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke_qos`].
    pub fn invoke(self, orb: &Orb) -> Result<Any, OrbError> {
        orb.invoke_qos(&self.target, &self.operation, &self.args, self.qos)
    }

    /// Send as a oneway request through `orb`.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke_oneway`].
    pub fn invoke_oneway(self, orb: &Orb) -> Result<(), OrbError> {
        orb.invoke_oneway(&self.target, &self.operation, &self.args, self.qos)
    }
}

/// Builder for *commands* to a remote QoS transport or module — the DII
/// access path to a module's dynamic interface.
#[derive(Debug, Clone)]
pub struct DynamicCommand {
    node: NodeId,
    target: CommandTarget,
    operation: String,
    args: Vec<Any>,
}

impl DynamicCommand {
    /// A command to the QoS transport on `node`.
    pub fn to_transport(node: NodeId, operation: impl Into<String>) -> DynamicCommand {
        DynamicCommand {
            node,
            target: CommandTarget::Transport,
            operation: operation.into(),
            args: Vec::new(),
        }
    }

    /// A command to the named module on `node`.
    pub fn to_module(
        node: NodeId,
        module: impl Into<String>,
        operation: impl Into<String>,
    ) -> DynamicCommand {
        DynamicCommand {
            node,
            target: CommandTarget::Module(module.into()),
            operation: operation.into(),
            args: Vec::new(),
        }
    }

    /// Append an argument.
    pub fn arg(mut self, value: Any) -> DynamicCommand {
        self.args.push(value);
        self
    }

    /// Send the command and wait for the result.
    ///
    /// # Errors
    ///
    /// As [`Orb::send_command`].
    pub fn invoke(self, orb: &Orb) -> Result<Any, OrbError> {
        orb.send_command(self.node, self.target, &self.operation, &self.args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::Servant;
    use netsim::Network;

    struct Concat;
    impl Servant for Concat {
        fn interface_id(&self) -> &str {
            "IDL:Concat:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "join" => Ok(Any::Str(
                    args.iter().filter_map(Any::as_str).collect::<Vec<_>>().join("-"),
                )),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    #[test]
    fn builder_accumulates_args() {
        let ior = Ior::new("IDL:X:1.0", NodeId(0), "x");
        let req = DynamicRequest::new(&ior, "join")
            .arg(Any::from("a"))
            .args(vec![Any::from("b"), Any::from("c")]);
        assert_eq!(req.operation(), "join");
        assert_eq!(req.arg_list().len(), 3);
    }

    #[test]
    fn dynamic_invocation_end_to_end() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("c", Box::new(Concat));
        let r = DynamicRequest::new(&ior, "join")
            .arg(Any::from("x"))
            .arg(Any::from("y"))
            .invoke(&client)
            .unwrap();
        assert_eq!(r, Any::Str("x-y".into()));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn dynamic_command_reaches_remote_transport() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let mods = DynamicCommand::to_transport(server.node(), "list_modules")
            .invoke(&client)
            .unwrap();
        assert_eq!(mods, Any::Sequence(vec![]));
        let err = DynamicCommand::to_module(server.node(), "ghost", "status")
            .invoke(&client)
            .unwrap_err();
        assert!(matches!(err, OrbError::ModuleNotFound(_)));
        server.shutdown();
        client.shutdown();
    }
}
