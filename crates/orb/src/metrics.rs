//! Lock-cheap metrics: counters and fixed-bucket latency histograms.
//!
//! Every [`crate::Orb`] owns a [`MetricsRegistry`]; the request path
//! (core, transport, and the weaving layers above) records into it at
//! well-known names (see DESIGN.md §Observability for the full list).
//! The registry is deliberately simple: one `parking_lot` mutex around
//! two hash maps, histograms with a fixed microsecond bucket ladder, and
//! [`MetricsRegistry::snapshot`] producing plain, sorted data that
//! renderers and monitors can consume without holding any lock.

use crate::sync::{LockRank, OrderedMutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Upper bounds (inclusive, in µs) of the histogram buckets. Values above
/// the last bound land in an overflow bucket.
pub const BUCKET_BOUNDS_US: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000];

#[derive(Debug, Clone, Default)]
struct Histogram {
    buckets: [u64; BUCKET_BOUNDS_US.len() + 1],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    fn observe(&mut self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

/// A registry of named counters and latency histograms.
///
/// Cloning shares the same underlying registry.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<OrderedMutex<Inner>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(OrderedMutex::new(LockRank::MetricsInner, Inner::default())),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record one duration observation (µs) into histogram `name`.
    pub fn observe_us(&self, name: &str, us: u64) {
        let mut inner = self.inner.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(us),
            None => {
                let mut h = Histogram::default();
                h.observe(us);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Run `f`, recording its wall-clock duration into histogram `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.observe_us(name, started.elapsed().as_micros() as u64);
        out
    }

    /// A point-in-time copy of every counter and histogram, sorted by
    /// name. Plain data: safe to render, diff, or ship anywhere.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<(String, u64)> =
            inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count,
                        sum_us: h.sum_us,
                        max_us: h.max_us,
                        buckets: BUCKET_BOUNDS_US
                            .iter()
                            .copied()
                            .zip(h.buckets.iter().copied())
                            .collect(),
                        overflow: h.buckets[BUCKET_BOUNDS_US.len()],
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, histograms }
    }
}

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
    /// `(upper_bound_us, count)` per bucket, ladder order.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observation in (fractional) µs; 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`, bucket by bucket.
    ///
    /// This is the fleet-merge primitive: histograms recorded on
    /// different nodes share the fixed [`BUCKET_BOUNDS_US`] ladder, so
    /// merging is exact at bucket granularity — counts add, `sum_us`
    /// adds, `max_us` takes the max — and quantiles computed over the
    /// merged histogram are within one bucket boundary of what a single
    /// registry observing every sample would report. Buckets are aligned
    /// by bound, so snapshots from older ladders (missing or extra
    /// bounds) still merge: unmatched bounds are appended in order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for &(bound, count) in &other.buckets {
            match self.buckets.iter_mut().find(|(b, _)| *b == bound) {
                Some((_, mine)) => *mine += count,
                None => {
                    self.buckets.push((bound, count));
                    self.buckets.sort_by_key(|&(b, _)| b);
                }
            }
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The observations recorded since `earlier`, assuming `earlier` is a
    /// prior snapshot of the same (cumulative) histogram.
    ///
    /// Per-bucket counts, `count`, `sum_us` and `overflow` subtract with
    /// saturation, so a reset or restarted peer (counts went *down*)
    /// degrades to treating the current snapshot as the delta rather
    /// than panicking or producing garbage negatives. `max_us` is kept
    /// from `self`: a cumulative max cannot be windowed, and callers of
    /// delta data should treat it as "max seen so far".
    pub fn saturating_delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .map(|&(bound, count)| {
                let prior = earlier
                    .buckets
                    .iter()
                    .find(|(b, _)| *b == bound)
                    .map_or(0, |(_, c)| *c);
                (bound, count.saturating_sub(prior))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            max_us: self.max_us,
            buckets,
            overflow: self.overflow.saturating_sub(earlier.overflow),
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket the quantile rank falls into.
    ///
    /// The estimate is honest about the ladder's limits: when the rank
    /// lands in the overflow bucket, the exact value is unknowable from
    /// bucketed data, so [`QuantileEstimate::AboveBuckets`] reports
    /// "≥ last bound" instead of inventing a number. `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut prev_bound = 0u64;
        for &(bound, count) in &self.buckets {
            cum += count;
            if count > 0 && cum as f64 >= target {
                let into = (target - (cum - count) as f64).max(0.0);
                let frac = into / count as f64;
                let width = (bound - prev_bound) as f64;
                return Some(QuantileEstimate::Interpolated(prev_bound as f64 + frac * width));
            }
            prev_bound = bound;
        }
        Some(QuantileEstimate::AboveBuckets(prev_bound))
    }
}

/// A bucket-interpolated quantile ([`HistogramSnapshot::quantile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantileEstimate {
    /// The quantile rank fell inside the bucket ladder; the value is the
    /// linear interpolation within that bucket, in µs.
    Interpolated(f64),
    /// The rank fell into the overflow bucket: all that is known is that
    /// the quantile is at least the ladder's last bound (µs).
    AboveBuckets(u64),
}

impl std::fmt::Display for QuantileEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileEstimate::Interpolated(v) => write!(f, "{v:.0}"),
            QuantileEstimate::AboveBuckets(bound) => write!(f, ">={bound}"),
        }
    }
}

/// Plain-data copy of a whole registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` latency histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram `name`, if it has recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Fold `other` into `self`: counters with the same name add, and
    /// histograms with the same name merge via
    /// [`HistogramSnapshot::merge`]. Names unique to `other` are
    /// inserted. Sort order is preserved, so merged snapshots remain
    /// valid inputs for the exporters and for further merging — this is
    /// how the telemetry aggregator builds a fleet-level snapshot out of
    /// per-node scrapes.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += value,
                None => {
                    self.counters.push((name.clone(), *value));
                    self.counters.sort();
                }
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(hist),
                None => {
                    self.histograms.push((name.clone(), hist.clone()));
                    self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
                }
            }
        }
    }

    /// What was recorded between `earlier` and `self`, assuming both are
    /// snapshots of the same cumulative registry (`earlier` first).
    ///
    /// Counters subtract with saturation and histograms use
    /// [`HistogramSnapshot::saturating_delta`], so a peer that restarted
    /// (values went backwards) yields its full current snapshot as the
    /// window rather than nonsense. Names absent from `earlier` appear
    /// with their full value; names absent from `self` (a registry never
    /// shrinks, but a restarted peer's might) are dropped.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let windowed = match earlier.histogram(n) {
                    Some(prior) => h.saturating_delta(prior),
                    None => h.clone(),
                };
                (n.clone(), windowed)
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }

    /// Whether `self` is a monotone successor of `earlier`: every counter
    /// and every histogram count in `earlier` is ≤ its value here. Used
    /// to assert snapshot consistency under concurrency.
    pub fn dominates(&self, earlier: &MetricsSnapshot) -> bool {
        earlier.counters.iter().all(|(n, v)| self.counter(n) >= *v)
            && earlier.histograms.iter().all(|(n, h)| {
                self.histogram(n).is_some_and(|mine| {
                    mine.count >= h.count && mine.sum_us >= h.sum_us && mine.max_us >= h.max_us
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a");
        m.add("a", 4);
        m.observe_us("lat", 3);
        m.observe_us("lat", 7_000);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_us, 7_003);
        assert_eq!(h.max_us, 7_000);
        assert_eq!(h.mean_us(), 3_501.5);
        // 3µs lands in the ≤5 bucket, 7000µs overflows the ladder.
        assert_eq!(h.buckets.iter().find(|(b, _)| *b == 5).unwrap().1, 1);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn time_records_into_histogram() {
        let m = MetricsRegistry::new();
        let out = m.time("op", || 9);
        assert_eq!(out, 9);
        assert_eq!(m.snapshot().histogram("op").unwrap().count, 1);
    }

    #[test]
    fn snapshot_is_sorted_plain_data() {
        let m = MetricsRegistry::new();
        m.incr("z");
        m.incr("a");
        m.observe_us("zz", 1);
        m.observe_us("aa", 1);
        let s = m.snapshot();
        assert_eq!(s.counters[0].0, "a");
        assert_eq!(s.counters[1].0, "z");
        assert_eq!(s.histograms[0].0, "aa");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = MetricsRegistry::new();
        m.observe_us("lat", 90);
        m.observe_us("lat", 110);
        let h = m.snapshot().histogram("lat").unwrap().clone();
        // p50 rank = 1.0 → exhausts the (50,100] bucket: 100µs exactly.
        assert_eq!(h.quantile(0.5), Some(QuantileEstimate::Interpolated(100.0)));
        // p95 rank = 1.9 → 90% into the (100,250] bucket.
        match h.quantile(0.95) {
            Some(QuantileEstimate::Interpolated(v)) => assert!((v - 235.0).abs() < 1e-9, "{v}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.quantile(0.5).unwrap().to_string(), "100");
    }

    #[test]
    fn quantile_overflow_is_reported_honestly() {
        let m = MetricsRegistry::new();
        m.observe_us("lat", 3);
        m.observe_us("lat", 9_000);
        m.observe_us("lat", 10_000);
        let h = m.snapshot().histogram("lat").unwrap().clone();
        // p99 lands in the overflow bucket: only ">= 5000" is knowable.
        assert_eq!(h.quantile(0.99), Some(QuantileEstimate::AboveBuckets(5_000)));
        assert_eq!(h.quantile(0.99).unwrap().to_string(), ">=5000");
        // An empty histogram has no quantiles.
        let empty =
            HistogramSnapshot { count: 0, sum_us: 0, max_us: 0, buckets: Vec::new(), overflow: 0 };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn dominates_orders_snapshots() {
        let m = MetricsRegistry::new();
        m.incr("c");
        m.observe_us("h", 10);
        let early = m.snapshot();
        assert!(early.dominates(&early));
        m.incr("c");
        m.observe_us("h", 20);
        let late = m.snapshot();
        assert!(late.dominates(&early));
        assert!(!early.dominates(&late));
    }

    #[test]
    fn histograms_merge_bucket_exact() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let reference = MetricsRegistry::new();
        for us in [3, 40, 90, 700] {
            a.observe_us("lat", us);
            reference.observe_us("lat", us);
        }
        for us in [7, 90, 4_000, 9_999] {
            b.observe_us("lat", us);
            reference.observe_us("lat", us);
        }
        let mut merged = a.snapshot().histogram("lat").unwrap().clone();
        merged.merge(b.snapshot().histogram("lat").unwrap());
        // Same fixed ladder on both sides: the merge is exactly the
        // histogram a single registry would have produced.
        assert_eq!(&merged, reference.snapshot().histogram("lat").unwrap());
    }

    #[test]
    fn snapshots_merge_counters_and_new_names() {
        let a = MetricsRegistry::new();
        a.add("shared", 3);
        a.incr("only_a");
        a.observe_us("h_a", 10);
        let b = MetricsRegistry::new();
        b.add("shared", 4);
        b.incr("only_b");
        b.observe_us("h_a", 20);
        b.observe_us("h_b", 30);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("shared"), 7);
        assert_eq!(merged.counter("only_a"), 1);
        assert_eq!(merged.counter("only_b"), 1);
        assert_eq!(merged.histogram("h_a").unwrap().count, 2);
        assert_eq!(merged.histogram("h_b").unwrap().count, 1);
        // Still sorted: merged output must stay exporter-valid.
        assert!(merged.counters.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(merged.histograms.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn delta_since_windows_a_cumulative_registry() {
        let m = MetricsRegistry::new();
        m.add("c", 5);
        m.observe_us("h", 40);
        let early = m.snapshot();
        m.add("c", 2);
        m.observe_us("h", 90);
        m.observe_us("h", 90);
        let late = m.snapshot();
        let delta = late.delta_since(&early);
        assert_eq!(delta.counter("c"), 2);
        let h = delta.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_us, 180);
        assert_eq!(h.buckets.iter().find(|(b, _)| *b == 100).unwrap().1, 2);
        assert_eq!(h.buckets.iter().find(|(b, _)| *b == 50).unwrap().1, 0);
    }

    #[test]
    fn delta_since_survives_a_peer_reset() {
        let before = MetricsRegistry::new();
        before.add("c", 100);
        before.observe_us("h", 10);
        before.observe_us("h", 10);
        // The peer restarted: its registry begins again from zero.
        let after = MetricsRegistry::new();
        after.add("c", 3);
        after.observe_us("h", 20);
        let delta = after.snapshot().delta_since(&before.snapshot());
        // Saturation degrades to "the full current value", never a
        // wrapped negative.
        assert_eq!(delta.counter("c"), 0); // 3.saturating_sub(100)
        assert_eq!(delta.histogram("h").unwrap().count, 0);
        let fresh = after.snapshot().delta_since(&MetricsSnapshot::default());
        assert_eq!(fresh.counter("c"), 3);
        assert_eq!(fresh.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.incr("shared");
        assert_eq!(m.snapshot().counter("shared"), 1);
    }

    #[test]
    fn concurrent_recording_is_monotone() {
        let m = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    m.incr("n");
                    m.observe_us("l", i % 100);
                }
            }));
        }
        let mut prev = m.snapshot();
        for _ in 0..50 {
            let next = m.snapshot();
            assert!(next.dominates(&prev), "snapshot went backwards");
            prev = next;
        }
        for h in handles {
            h.join().unwrap();
        }
        let fin = m.snapshot();
        assert_eq!(fin.counter("n"), 2_000);
        assert_eq!(fin.histogram("l").unwrap().count, 2_000);
    }
}
