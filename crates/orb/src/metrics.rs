//! Lock-cheap metrics: counters and fixed-bucket latency histograms.
//!
//! Every [`crate::Orb`] owns a [`MetricsRegistry`]; the request path
//! (core, transport, and the weaving layers above) records into it at
//! well-known names (see DESIGN.md §Observability for the full list).
//! The registry is deliberately simple: one `parking_lot` mutex around
//! two hash maps, histograms with a fixed microsecond bucket ladder, and
//! [`MetricsRegistry::snapshot`] producing plain, sorted data that
//! renderers and monitors can consume without holding any lock.

use crate::sync::{LockRank, OrderedMutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Upper bounds (inclusive, in µs) of the histogram buckets. Values above
/// the last bound land in an overflow bucket.
pub const BUCKET_BOUNDS_US: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000];

#[derive(Debug, Clone, Default)]
struct Histogram {
    buckets: [u64; BUCKET_BOUNDS_US.len() + 1],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    fn observe(&mut self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }
}

#[derive(Default)]
struct Inner {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
}

/// A registry of named counters and latency histograms.
///
/// Cloning shares the same underlying registry.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<OrderedMutex<Inner>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(OrderedMutex::new(LockRank::MetricsInner, Inner::default())),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record one duration observation (µs) into histogram `name`.
    pub fn observe_us(&self, name: &str, us: u64) {
        let mut inner = self.inner.lock();
        match inner.histograms.get_mut(name) {
            Some(h) => h.observe(us),
            None => {
                let mut h = Histogram::default();
                h.observe(us);
                inner.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Run `f`, recording its wall-clock duration into histogram `name`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let started = Instant::now();
        let out = f();
        self.observe_us(name, started.elapsed().as_micros() as u64);
        out
    }

    /// A point-in-time copy of every counter and histogram, sorted by
    /// name. Plain data: safe to render, diff, or ship anywhere.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut counters: Vec<(String, u64)> =
            inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count,
                        sum_us: h.sum_us,
                        max_us: h.max_us,
                        buckets: BUCKET_BOUNDS_US
                            .iter()
                            .copied()
                            .zip(h.buckets.iter().copied())
                            .collect(),
                        overflow: h.buckets[BUCKET_BOUNDS_US.len()],
                    },
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, histograms }
    }
}

/// Plain-data copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
    /// `(upper_bound_us, count)` per bucket, ladder order.
    pub buckets: Vec<(u64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Mean observation in (fractional) µs; 0.0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket the quantile rank falls into.
    ///
    /// The estimate is honest about the ladder's limits: when the rank
    /// lands in the overflow bucket, the exact value is unknowable from
    /// bucketed data, so [`QuantileEstimate::AboveBuckets`] reports
    /// "≥ last bound" instead of inventing a number. `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut prev_bound = 0u64;
        for &(bound, count) in &self.buckets {
            cum += count;
            if count > 0 && cum as f64 >= target {
                let into = (target - (cum - count) as f64).max(0.0);
                let frac = into / count as f64;
                let width = (bound - prev_bound) as f64;
                return Some(QuantileEstimate::Interpolated(prev_bound as f64 + frac * width));
            }
            prev_bound = bound;
        }
        Some(QuantileEstimate::AboveBuckets(prev_bound))
    }
}

/// A bucket-interpolated quantile ([`HistogramSnapshot::quantile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantileEstimate {
    /// The quantile rank fell inside the bucket ladder; the value is the
    /// linear interpolation within that bucket, in µs.
    Interpolated(f64),
    /// The rank fell into the overflow bucket: all that is known is that
    /// the quantile is at least the ladder's last bound (µs).
    AboveBuckets(u64),
}

impl std::fmt::Display for QuantileEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileEstimate::Interpolated(v) => write!(f, "{v:.0}"),
            QuantileEstimate::AboveBuckets(bound) => write!(f, ">={bound}"),
        }
    }
}

/// Plain-data copy of a whole registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` latency histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram `name`, if it has recorded anything.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Whether `self` is a monotone successor of `earlier`: every counter
    /// and every histogram count in `earlier` is ≤ its value here. Used
    /// to assert snapshot consistency under concurrency.
    pub fn dominates(&self, earlier: &MetricsSnapshot) -> bool {
        earlier.counters.iter().all(|(n, v)| self.counter(n) >= *v)
            && earlier.histograms.iter().all(|(n, h)| {
                self.histogram(n).is_some_and(|mine| {
                    mine.count >= h.count && mine.sum_us >= h.sum_us && mine.max_us >= h.max_us
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a");
        m.add("a", 4);
        m.observe_us("lat", 3);
        m.observe_us("lat", 7_000);
        let s = m.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_us, 7_003);
        assert_eq!(h.max_us, 7_000);
        assert_eq!(h.mean_us(), 3_501.5);
        // 3µs lands in the ≤5 bucket, 7000µs overflows the ladder.
        assert_eq!(h.buckets.iter().find(|(b, _)| *b == 5).unwrap().1, 1);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn time_records_into_histogram() {
        let m = MetricsRegistry::new();
        let out = m.time("op", || 9);
        assert_eq!(out, 9);
        assert_eq!(m.snapshot().histogram("op").unwrap().count, 1);
    }

    #[test]
    fn snapshot_is_sorted_plain_data() {
        let m = MetricsRegistry::new();
        m.incr("z");
        m.incr("a");
        m.observe_us("zz", 1);
        m.observe_us("aa", 1);
        let s = m.snapshot();
        assert_eq!(s.counters[0].0, "a");
        assert_eq!(s.counters[1].0, "z");
        assert_eq!(s.histograms[0].0, "aa");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = MetricsRegistry::new();
        m.observe_us("lat", 90);
        m.observe_us("lat", 110);
        let h = m.snapshot().histogram("lat").unwrap().clone();
        // p50 rank = 1.0 → exhausts the (50,100] bucket: 100µs exactly.
        assert_eq!(h.quantile(0.5), Some(QuantileEstimate::Interpolated(100.0)));
        // p95 rank = 1.9 → 90% into the (100,250] bucket.
        match h.quantile(0.95) {
            Some(QuantileEstimate::Interpolated(v)) => assert!((v - 235.0).abs() < 1e-9, "{v}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.quantile(0.5).unwrap().to_string(), "100");
    }

    #[test]
    fn quantile_overflow_is_reported_honestly() {
        let m = MetricsRegistry::new();
        m.observe_us("lat", 3);
        m.observe_us("lat", 9_000);
        m.observe_us("lat", 10_000);
        let h = m.snapshot().histogram("lat").unwrap().clone();
        // p99 lands in the overflow bucket: only ">= 5000" is knowable.
        assert_eq!(h.quantile(0.99), Some(QuantileEstimate::AboveBuckets(5_000)));
        assert_eq!(h.quantile(0.99).unwrap().to_string(), ">=5000");
        // An empty histogram has no quantiles.
        let empty =
            HistogramSnapshot { count: 0, sum_us: 0, max_us: 0, buckets: Vec::new(), overflow: 0 };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn dominates_orders_snapshots() {
        let m = MetricsRegistry::new();
        m.incr("c");
        m.observe_us("h", 10);
        let early = m.snapshot();
        assert!(early.dominates(&early));
        m.incr("c");
        m.observe_us("h", 20);
        let late = m.snapshot();
        assert!(late.dominates(&early));
        assert!(!early.dominates(&late));
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m2.incr("shared");
        assert_eq!(m.snapshot().counter("shared"), 1);
    }

    #[test]
    fn concurrent_recording_is_monotone() {
        let m = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    m.incr("n");
                    m.observe_us("l", i % 100);
                }
            }));
        }
        let mut prev = m.snapshot();
        for _ in 0..50 {
            let next = m.snapshot();
            assert!(next.dominates(&prev), "snapshot went backwards");
            prev = next;
        }
        for h in handles {
            h.join().unwrap();
        }
        let fin = m.snapshot();
        assert_eq!(fin.counter("n"), 2_000);
        assert_eq!(fin.histogram("l").unwrap().count, 2_000);
    }
}
