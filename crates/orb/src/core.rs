//! The ORB core: request brokering and the Fig. 3 invocation interface.
//!
//! Each [`Orb`] owns one [`WireTransport`] (its "host" — the
//! deterministic simulator by default, real sockets via
//! [`Orb::start_wire`]), an object adapter, a QoS binding layer, and a
//! pseudo-object registry. A background **receive loop** reads framed
//! packets off the wire; requests are queued to
//! a small dispatcher pool (so a servant may itself make outbound calls
//! without deadlocking the loop), replies are correlated back to waiting
//! callers.
//!
//! The send path implements the client half of Fig. 3:
//!
//! 1. collocated QoS-unaware requests short-circuit straight into the
//!    local adapter (a standard ORB optimization, kept measurable for
//!    experiment E1);
//! 2. if the binding (peer, object) is assigned to a QoS module, the
//!    module's outbound transform produces the wire messages, framed as
//!    [`Packet::Qos`];
//! 3. otherwise the request travels as plain GIOP ([`Packet::Plain`]) —
//!    including *commands* and not-yet-negotiated QoS traffic, which is
//!    exactly how the paper bootstraps negotiation.
//!
//! The receive path implements the server half: plain packets go straight
//! to GIOP decoding; QoS packets first run the named module's inbound
//! transform (which may swallow duplicates); commands are routed to the
//! QoS transport or the named module; pseudo-object keys (`pseudo:NAME`)
//! hit the local registry; everything else is adapter dispatch.

use crate::adapter::{ObjectAdapter, Servant};
use crate::any::Any;
use crate::error::OrbError;
use crate::flight::{FlightEventKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::giop::{
    self, frame_plain_reply, frame_plain_request, frame_qos, CommandTarget, GiopMessage, GiopPeek,
    Packet, PacketView, QosContext, ReplyMessage, RequestKind, RequestMessage,
};
use crate::ior::{Ior, ObjectKey};
use crate::metrics::MetricsRegistry;
use crate::pseudo::PseudoObjectRegistry;
use crate::trace::{self, TraceContext, TRACE_CONTEXT_ID};
use crate::qos_binding::QosTransport;
use crate::sync::{LockRank, OrderedCondvar, OrderedMutex};
use crate::wire::{Endpoint, NetSimTransport, WireFrame, WireTransport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use netsim::{NetHandle, Network, NodeId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Prefix marking object keys that resolve in the pseudo-object registry.
pub const PSEUDO_KEY_PREFIX: &str = "pseudo:";

/// How the receive loop spreads incoming requests across the
/// per-dispatcher queues ([`OrbConfig::dispatch_routing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchRouting {
    /// Route by a stable hash of the object key: all calls on one key
    /// stay ordered on one dispatcher while distinct keys spread across
    /// the pool. The default — it preserves the per-servant FIFO a
    /// single dispatcher used to give.
    KeyAffinity,
    /// Spray requests round-robin for maximum spread. Use when servants
    /// are stateless and cross-call ordering per key does not matter.
    RoundRobin,
}

/// Tuning knobs for an [`Orb`].
#[derive(Debug, Clone)]
pub struct OrbConfig {
    /// Wall-clock timeout for synchronous invocations.
    pub request_timeout: Duration,
    /// Short-circuit collocated QoS-unaware calls into the local adapter.
    pub collocated_shortcut: bool,
    /// Number of dispatcher threads executing incoming requests. Each
    /// dispatcher owns a private queue; the receive loop routes into
    /// them per [`OrbConfig::dispatch_routing`], so dispatchers never
    /// contend on a shared work channel.
    pub dispatch_threads: usize,
    /// Request-to-dispatcher routing policy (default
    /// [`DispatchRouting::KeyAffinity`]).
    pub dispatch_routing: DispatchRouting,
    /// Maximum frames the receive loop drains from the transport inbox
    /// per wakeup (≥ 1) before flushing per-dispatcher batches. Larger
    /// values amortize queue wakeups under load; light-load latency is
    /// unaffected because draining stops the moment the inbox is empty.
    pub recv_batch: usize,
    /// Trace-sampling period consulted by [`Orb::trace_sampled`]: attach
    /// a [`TraceContext`] to every `n`-th request. `1` (the default)
    /// traces everything, `0` traces nothing. Metrics are unconditional
    /// either way; only the per-request trace decode/encode and span
    /// pushes are skipped on unsampled requests.
    pub trace_sample_every: u32,
    /// Capacity of the ORB's [`FlightRecorder`] ring (events retained).
    /// `0` disables retention; cumulative event counts still accrue.
    pub flight_capacity: usize,
}

impl Default for OrbConfig {
    fn default() -> OrbConfig {
        OrbConfig {
            request_timeout: Duration::from_secs(5),
            collocated_shortcut: true,
            dispatch_threads: 1,
            dispatch_routing: DispatchRouting::KeyAffinity,
            recv_batch: 32,
            trace_sample_every: 1,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Counters exposed by [`Orb::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrbStats {
    /// Requests dispatched by this ORB (as a server).
    pub requests_handled: u64,
    /// Replies delivered to local callers.
    pub replies_matched: u64,
    /// Replies that arrived for no waiting caller (e.g. fan-out extras).
    pub replies_orphaned: u64,
    /// Packets dropped because they could not be decoded or un-wrapped.
    pub packets_dropped: u64,
    /// Requests answered via the collocated shortcut.
    pub collocated_calls: u64,
}

/// Number of independent locks striping the pending-reply table. Reply
/// matching is lookup-dominated; striping keeps concurrent callers with
/// unrelated request ids from serializing on one mutex.
pub(crate) const PENDING_SHARDS: usize = 16;

/// One rendezvous between a waiting caller and the receive loop.
///
/// A slot belongs to exactly one caller thread (see [`current_slot`])
/// and is reused across calls instead of allocating a channel per
/// request. `armed` records the request id the slot currently serves,
/// so a late reply to a *previous* request on the same thread is
/// recognised as stale and counted orphaned rather than delivered to
/// the wrong caller.
struct ReplySlot {
    state: OrderedMutex<SlotState>,
    cvar: OrderedCondvar,
}

struct SlotState {
    /// Request id currently armed on this slot; `0` = disarmed.
    armed: u64,
    queue: VecDeque<ReplyMessage>,
}

impl ReplySlot {
    fn new() -> ReplySlot {
        ReplySlot {
            state: OrderedMutex::new(
                LockRank::ReplySlot,
                SlotState { armed: 0, queue: VecDeque::new() },
            ),
            cvar: OrderedCondvar::new(),
        }
    }

    fn arm(&self, id: u64) {
        let mut s = self.state.lock();
        s.armed = id;
        s.queue.clear();
    }

    fn disarm(&self) {
        let mut s = self.state.lock();
        s.armed = 0;
        s.queue.clear();
    }

    /// Deliver `reply` if the slot is still armed for `id`; a refusal
    /// means the caller gave up (timeout) and the reply is an orphan.
    ///
    /// `counted` runs under the slot lock, after the armed guard accepts
    /// the reply and before the waiter can pop it. Stats bumped there are
    /// visible by the time the caller's `invoke` returns — bumping after
    /// `push` instead lets a caller observe its own completed call as
    /// uncounted (Metrics 600 and Flight 700s rank above ReplySlot 510,
    /// so acquiring them here respects the lock order).
    fn push(&self, id: u64, reply: ReplyMessage, counted: impl FnOnce()) -> bool {
        let mut s = self.state.lock();
        if s.armed != id {
            return false;
        }
        s.queue.push_back(reply);
        counted();
        self.cvar.notify_all();
        true
    }

    /// Take one queued reply for `id` without blocking.
    fn try_pop(&self, id: u64) -> Option<ReplyMessage> {
        let mut s = self.state.lock();
        if s.armed != id {
            return None;
        }
        s.queue.pop_front()
    }

    /// Block until a reply for `id` arrives or `deadline` passes.
    fn wait_until(&self, id: u64, deadline: Instant) -> Option<ReplyMessage> {
        let mut s = self.state.lock();
        loop {
            if s.armed != id {
                return None;
            }
            if let Some(r) = s.queue.pop_front() {
                return Some(r);
            }
            if Instant::now() >= deadline {
                return None;
            }
            self.cvar.wait_until(&mut s, deadline);
        }
    }
}

thread_local! {
    /// Per-thread rendezvous slot. A thread has at most one synchronous
    /// invocation outstanding at a time (nested calls made *by a
    /// servant* run on dispatcher threads, which carry their own slot),
    /// so one reusable slot per thread replaces a per-call channel.
    static REPLY_SLOT: Arc<ReplySlot> = Arc::new(ReplySlot::new());

    /// Receive-loop sampling counter for `transport.inbound_us` (each
    /// ORB's receive loop is one thread, so a plain `Cell` suffices).
    static INBOUND_SAMPLE: std::cell::Cell<u32> = std::cell::Cell::new(0);
}

fn current_slot() -> Arc<ReplySlot> {
    REPLY_SLOT.with(Arc::clone)
}

struct Pending {
    slot: Arc<ReplySlot>,
    /// Fan-out collectors peek the entry and leave it registered so
    /// several replies can accumulate; point-to-point calls are *taken*
    /// out of the shard so the lock drops before delivery.
    collect: bool,
}

/// Parameters of one collecting invocation — the shared core of
/// [`Orb::invoke_collect`] and [`Orb::probe_collect`], bundled so the
/// call site names what each value is.
struct CollectCall<'a> {
    ior: &'a Ior,
    op: &'a str,
    args: &'a [Any],
    qos: Option<QosContext>,
    /// Return as soon as this many replies arrived (or the deadline hit).
    min_replies: usize,
    timeout: Duration,
    kind: RequestKind,
}

/// Lock-free counters behind [`Orb::stats`]. Each counter is
/// independently monotone and `stats()` reads a relaxed snapshot,
/// which is all the cross-counter invariants rely on.
#[derive(Default)]
struct StatCells {
    requests_handled: AtomicU64,
    replies_matched: AtomicU64,
    replies_orphaned: AtomicU64,
    packets_dropped: AtomicU64,
    collocated_calls: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> OrbStats {
        OrbStats {
            requests_handled: self.requests_handled.load(Ordering::Relaxed),
            replies_matched: self.replies_matched.load(Ordering::Relaxed),
            replies_orphaned: self.replies_orphaned.load(Ordering::Relaxed),
            packets_dropped: self.packets_dropped.load(Ordering::Relaxed),
            collocated_calls: self.collocated_calls.load(Ordering::Relaxed),
        }
    }
}

#[inline]
fn bump(cell: &AtomicU64) {
    cell.fetch_add(1, Ordering::Relaxed);
}

struct OrbInner {
    wire: Arc<dyn WireTransport>,
    /// The simulator handle when the wire is netsim-backed (virtual
    /// clock access, chaos hooks); `None` for socket-backed ORBs.
    sim: Option<NetHandle>,
    node: NodeId,
    name: String,
    adapter: ObjectAdapter,
    transport: QosTransport,
    pseudo: PseudoObjectRegistry,
    /// Pending-reply table, striped over [`PENDING_SHARDS`] locks keyed
    /// by request id.
    pending: [OrderedMutex<HashMap<u64, Pending>>; PENDING_SHARDS],
    next_request: AtomicU64,
    config: OrbConfig,
    shutdown: AtomicBool,
    stats: StatCells,
    trace_counter: AtomicU64,
    metrics: MetricsRegistry,
    flight: FlightRecorder,
    /// One private queue per dispatcher thread (sharded delivery): the
    /// receive loop is the only sender, so each channel is effectively
    /// SPSC and dispatchers never contend with each other for work.
    dispatch_tx: Vec<Sender<DispatchCmd>>,
}

impl OrbInner {
    #[inline]
    fn shard(&self, id: u64) -> &OrderedMutex<HashMap<u64, Pending>> {
        &self.pending[(id as usize) % PENDING_SHARDS]
    }
}

enum DispatchCmd {
    /// A single request — the common case under light load, kept
    /// separate from [`DispatchCmd::Batch`] so it costs no `Vec`.
    One(DispatchWork),
    /// A burst of requests drained from the wire in one receive-loop
    /// pass; one queue wakeup covers them all.
    Batch(Vec<DispatchWork>),
    /// Wake-and-exit sentinel; [`Orb::shutdown`] queues one per
    /// dispatcher thread so every blocked `recv()` returns.
    Shutdown,
}

struct DispatchWork {
    via_module: Option<String>,
    /// The raw GIOP request body. The receive loop only peeks the
    /// routing prefix ([`giop::peek`]); the full decode — args, QoS
    /// params, contexts — runs on the dispatcher thread so the single
    /// receive loop never becomes the decode bottleneck.
    body: Bytes,
    /// Modelled wire transit of the carrying message, virtual µs.
    transit_vus: u64,
    /// When the receive loop picked the frame up; the dispatcher
    /// observes the gap as `orb.queue_wait_us`.
    received: Instant,
}

/// A reply handle for one in-flight [`Orb::invoke_async`] request.
///
/// Futures-free GIOP pipelining: each handle owns a *private*
/// [`ReplySlot`] (not the caller thread's pooled one), so a single
/// client thread can keep any number of calls in flight through the
/// sharded pending table and harvest them in any order with
/// [`PendingCall::wait`]. Dropping an unharvested handle unregisters
/// the request; its late reply is counted orphaned, never misdelivered
/// (the armed-request-id guard applies to private slots exactly as to
/// pooled ones).
pub struct PendingCall {
    orb: Orb,
    id: u64,
    slot: Arc<ReplySlot>,
    started: Instant,
    deadline: Instant,
}

impl PendingCall {
    /// The GIOP request id this handle is waiting on.
    pub fn request_id(&self) -> u64 {
        self.id
    }

    /// Park until the reply arrives or the ORB's request timeout
    /// (counted from issue time) expires, then decode the result.
    ///
    /// # Errors
    ///
    /// Remote exceptions, [`OrbError::Timeout`], as [`Orb::invoke`].
    pub fn wait(self) -> Result<Any, OrbError> {
        let reply = self.slot.wait_until(self.id, self.deadline).ok_or_else(|| {
            OrbError::Timeout(format!("request {}: no reply before pipeline deadline", self.id))
        });
        // Dropping `self` (on both paths) unregisters the pending entry
        // and disarms the slot — the same order as the synchronous path.
        let reply = reply?;
        self.orb
            .inner
            .metrics
            .observe_us("orb.roundtrip_us", self.started.elapsed().as_micros() as u64);
        reply.into_result()
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        self.orb.unregister_pending(self.id, &self.slot);
    }
}

/// An object request broker bound to one simulated network node.
///
/// Cloning shares the same broker. Dropping the last clone does *not*
/// stop the background threads; call [`Orb::shutdown`] for a clean stop.
#[derive(Clone)]
pub struct Orb {
    inner: Arc<OrbInner>,
}

impl fmt::Debug for Orb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Orb")
            .field("node", &self.inner.node)
            .field("name", &self.inner.name)
            .finish()
    }
}

impl Orb {
    /// Start an ORB on a fresh node of `net` with default configuration.
    pub fn start(net: &Network, name: &str) -> Orb {
        Orb::start_with(net, name, OrbConfig::default())
    }

    /// Start an ORB with explicit configuration.
    pub fn start_with(net: &Network, name: &str, config: OrbConfig) -> Orb {
        let handle = net.attach(name);
        let flight = FlightRecorder::new(handle.name(), config.flight_capacity);
        // Land fault-script ticks in this node's black box, so a chaos
        // dump shows the injected faults interleaved with the lifecycle
        // events they caused.
        {
            let flight = flight.clone();
            net.add_fault_observer(Arc::new(move |at_us, desc| {
                flight.record_detail(
                    FlightEventKind::FaultTick,
                    "netsim",
                    None,
                    format!("t={at_us}us {desc}"),
                );
            }));
        }
        let sim = handle.clone();
        let wire: Arc<dyn WireTransport> = Arc::new(NetSimTransport::new(handle));
        Orb::start_inner(wire, Some(sim), flight, name, config)
    }

    /// Start an ORB on an arbitrary wire transport — real TCP or
    /// Unix-domain sockets ([`crate::wire`]) instead of the simulator.
    ///
    /// The transport supplies the node identity; references the ORB
    /// activates carry the transport's [`Endpoint`] as an IOR profile so
    /// peers in other processes can dial in. Simulator conveniences
    /// ([`Orb::net_handle`], chaos fault observers) are unavailable.
    pub fn start_wire(wire: Arc<dyn WireTransport>, name: &str, config: OrbConfig) -> Orb {
        let flight = FlightRecorder::new(name, config.flight_capacity);
        Orb::start_inner(wire, None, flight, name, config)
    }

    fn start_inner(
        wire: Arc<dyn WireTransport>,
        sim: Option<NetHandle>,
        flight: FlightRecorder,
        name: &str,
        config: OrbConfig,
    ) -> Orb {
        let n_dispatchers = config.dispatch_threads.max(1);
        let mut dispatch_tx = Vec::with_capacity(n_dispatchers);
        let mut dispatch_rx = Vec::with_capacity(n_dispatchers);
        for _ in 0..n_dispatchers {
            let (tx, rx) = unbounded::<DispatchCmd>();
            dispatch_tx.push(tx);
            dispatch_rx.push(rx);
        }
        let node = wire.node();
        // Wire lifecycle events (dial, redial, failover, backpressure,
        // resets) land in the same flight ring as request events, so a
        // flight_tail around an incident shows both layers interleaved.
        wire.attach_flight(&flight);
        let inner = Arc::new(OrbInner {
            wire,
            sim,
            node,
            name: name.to_string(),
            adapter: ObjectAdapter::new(),
            transport: QosTransport::new(),
            pseudo: PseudoObjectRegistry::new(),
            pending: std::array::from_fn(|_| {
                OrderedMutex::new(LockRank::PendingShard, HashMap::new())
            }),
            next_request: AtomicU64::new(1),
            config,
            shutdown: AtomicBool::new(false),
            stats: StatCells::default(),
            trace_counter: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            flight,
            dispatch_tx,
        });
        let orb = Orb { inner };
        orb.spawn_receive_loop();
        for rx in dispatch_rx {
            orb.spawn_dispatcher(rx);
        }
        orb
    }

    /// The network node this ORB runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The name this ORB was started with.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The wire transport moving this ORB's frames.
    pub fn wire(&self) -> &Arc<dyn WireTransport> {
        &self.inner.wire
    }

    /// The underlying simulator handle (virtual clock, name, …).
    ///
    /// # Panics
    ///
    /// Panics for ORBs started on a non-simulator wire transport
    /// ([`Orb::start_wire`]); gate on [`Orb::is_sim_backed`] first.
    pub fn net_handle(&self) -> &NetHandle {
        self.inner
            .sim
            .as_ref()
            .expect("net_handle(): this ORB runs on a socket wire transport, not netsim")
    }

    /// Whether this ORB runs on the deterministic simulator.
    pub fn is_sim_backed(&self) -> bool {
        self.inner.sim.is_some()
    }

    /// Teach the wire transport how to reach the node hosting `ior`
    /// (no-op for references without endpoint profiles, e.g. on the
    /// simulator). Invocations do this automatically; it is public for
    /// callers that address peers by [`NodeId`] directly, such as
    /// command/introspection clients attaching across processes.
    ///
    /// # Errors
    ///
    /// [`OrbError::CommFailure`] if the transport supports none of the
    /// listed endpoints.
    pub fn register_endpoints(&self, ior: &Ior) -> Result<(), OrbError> {
        if ior.endpoints.is_empty() {
            return Ok(());
        }
        self.inner.wire.register_peer(ior.node, &ior.endpoints).map_err(OrbError::from)
    }

    /// The ORB's object adapter.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.inner.adapter
    }

    /// The ORB's QoS transport (module/factory/binding administration).
    pub fn qos_transport(&self) -> &QosTransport {
        &self.inner.transport
    }

    /// The ORB's pseudo-object registry.
    pub fn pseudo_objects(&self) -> &PseudoObjectRegistry {
        &self.inner.pseudo
    }

    /// A snapshot of the broker counters.
    pub fn stats(&self) -> OrbStats {
        self.inner.stats.snapshot()
    }

    /// Client-side trace-sampling decision
    /// ([`OrbConfig::trace_sample_every`]): `true` when the next
    /// outgoing request should carry a [`TraceContext`]. Stubs consult
    /// this *before* building a context, so unsampled requests skip the
    /// trace encode on the way out and every decode/span push
    /// downstream; metrics are recorded unconditionally either way.
    pub fn trace_sampled(&self) -> bool {
        match self.inner.config.trace_sample_every {
            0 => false,
            1 => true,
            n => self.inner.trace_counter.fetch_add(1, Ordering::Relaxed) % u64::from(n) == 0,
        }
    }

    /// The ORB's metrics registry (request-path counters/histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The ORB's flight recorder (the always-on black box of lifecycle
    /// events; see [`crate::flight`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Activate a servant and return a QoS-unaware reference to it.
    pub fn activate(&self, key: &str, servant: Box<dyn Servant>) -> Ior {
        self.activate_with_tags(key, servant, &[])
    }

    /// Activate a servant and return a reference tagged with the QoS
    /// characteristics offered for it (the Fig. 3 IOR tag).
    pub fn activate_with_tags(&self, key: &str, servant: Box<dyn Servant>, tags: &[&str]) -> Ior {
        let servant: Arc<dyn Servant> = Arc::from(servant);
        let type_id = servant.interface_id().to_string();
        self.inner.adapter.activate(key, servant);
        let mut ior = Ior::new(type_id, self.node(), key);
        for t in tags {
            ior = ior.with_qos_tag(*t);
        }
        self.attach_endpoint(ior)
    }

    /// Attach this ORB's dialable listener to `ior` as a tagged profile.
    ///
    /// Socket-backed ORBs publish their listener so the reference works
    /// across process boundaries; simulator references stay profile-free
    /// (identity routing, byte-stable encodings for every existing
    /// test). `activate` does this automatically — call it yourself only
    /// for references built outside the ORB (e.g. `MaqsNode::serve`).
    pub fn attach_endpoint(&self, ior: Ior) -> Ior {
        match self.inner.wire.local_endpoint() {
            Endpoint::Sim(_) => ior,
            ep => ior.with_endpoint(ep),
        }
    }

    /// Deactivate an object.
    pub fn deactivate(&self, key: &str) {
        self.inner.adapter.deactivate(&ObjectKey(key.to_string()));
    }

    /// Synchronous QoS-unaware invocation.
    ///
    /// # Errors
    ///
    /// Remote exceptions, [`OrbError::Timeout`] if no reply arrives in
    /// [`OrbConfig::request_timeout`], or transport errors.
    pub fn invoke(&self, ior: &Ior, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        self.invoke_qos(ior, op, args, None)
    }

    /// Synchronous invocation with an optional negotiated-QoS context.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke`].
    pub fn invoke_qos(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Any],
        qos: Option<QosContext>,
    ) -> Result<Any, OrbError> {
        self.invoke_traced(ior, op, args, qos, None).map(|(value, _)| value)
    }

    /// Synchronous invocation carrying a [`TraceContext`] in the request's
    /// service-context slot. The returned context is the one the reply
    /// carried back — the client-supplied trace plus every span the
    /// server-side layers appended — with this ORB's own `orb.client`
    /// span added on top. `None` in means `None` out.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke`].
    pub fn invoke_traced(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Any],
        qos: Option<QosContext>,
        trace: Option<TraceContext>,
    ) -> Result<(Any, Option<TraceContext>), OrbError> {
        self.check_running()?;
        let metrics = &self.inner.metrics;
        // Collocated shortcut (only for plain calls: QoS-annotated traffic
        // must take the full path so mediator/module semantics hold).
        if self.inner.config.collocated_shortcut && qos.is_none() && ior.node == self.node() {
            bump(&self.inner.stats.collocated_calls);
            metrics.incr("orb.collocated_calls");
            self.inner.flight.record(
                FlightEventKind::CollocatedCall,
                "orb.client",
                trace.as_ref().map(|t| t.trace_id),
            );
            let started = Instant::now();
            return match trace {
                None => {
                    let result = self.inner.adapter.dispatch(&ior.key, op, args);
                    metrics.observe_us("orb.collocated_us", started.elapsed().as_micros() as u64);
                    result.map(|v| (v, None))
                }
                Some(ctx) => {
                    // Same thread end to end: install so the skeleton's
                    // spans land in this trace, then add the adapter span.
                    let scope = trace::begin(ctx, &self.inner.name);
                    let result = self.inner.adapter.dispatch(&ior.key, op, args);
                    let us = started.elapsed().as_micros() as u64;
                    let mut ctx = scope.finish();
                    ctx.push("adapter", &self.inner.name, us);
                    metrics.observe_us("orb.collocated_us", us);
                    result.map(|v| (v, Some(ctx)))
                }
            };
        }
        let _ = self.register_endpoints(ior);
        let trace_id = trace.as_ref().map(|t| t.trace_id);
        let (id, slot) = self.register_pending(false);
        let mut request = RequestMessage {
            request_id: id,
            reply_to: self.node(),
            object_key: ior.key.clone(),
            operation: op.to_string(),
            args: args.to_vec(),
            response_expected: true,
            kind: RequestKind::ServiceRequest,
            qos,
            contexts: Vec::new(),
        };
        if let Some(ctx) = &trace {
            request.set_context(TRACE_CONTEXT_ID, ctx.to_bytes());
        }
        let started = Instant::now();
        let send_result = self.send_request(ior.node, &request, trace_id);
        if let Err(e) = send_result {
            self.unregister_pending(id, &slot);
            return Err(e);
        }
        let reply = self.await_reply(id, &slot, self.inner.config.request_timeout);
        self.unregister_pending(id, &slot);
        let reply = reply?;
        let roundtrip_us = started.elapsed().as_micros() as u64;
        metrics.observe_us("orb.roundtrip_us", roundtrip_us);
        let trace_out = match trace_id {
            None => None,
            Some(trace_id) => {
                // Prefer the server-enriched context from the reply slot;
                // fall back to a bare continuation of the same trace if the
                // reply lost it (e.g. an exception path).
                let mut ctx = reply
                    .context(TRACE_CONTEXT_ID)
                    .and_then(|b| TraceContext::from_bytes(b).ok())
                    .unwrap_or_else(|| TraceContext::with_id(trace_id));
                ctx.push("orb.client", &self.inner.name, roundtrip_us);
                Some(ctx)
            }
        };
        reply.into_result().map(|v| (v, trace_out))
    }

    /// Issue a request without blocking for the reply: GIOP pipelining.
    ///
    /// Returns a [`PendingCall`] to harvest later; one thread may hold
    /// any number in flight (each handle carries its own private reply
    /// slot, so the per-thread pooled slot is not involved). Unlike
    /// [`Orb::invoke_qos`] there is no collocated shortcut — the call
    /// always travels the wire so in-flight semantics are uniform — and
    /// no trace context (pipelined callers that need spans should use
    /// [`Orb::invoke_traced`] synchronously).
    ///
    /// # Errors
    ///
    /// Local send errors only; remote failures and timeouts surface at
    /// [`PendingCall::wait`].
    pub fn invoke_async(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Any],
        qos: Option<QosContext>,
    ) -> Result<PendingCall, OrbError> {
        self.check_running()?;
        let _ = self.register_endpoints(ior);
        let slot = Arc::new(ReplySlot::new());
        let id = self.inner.next_request.fetch_add(1, Ordering::Relaxed);
        slot.arm(id);
        self.inner
            .shard(id)
            .lock()
            .insert(id, Pending { slot: Arc::clone(&slot), collect: false });
        let request = RequestMessage {
            request_id: id,
            reply_to: self.node(),
            object_key: ior.key.clone(),
            operation: op.to_string(),
            args: args.to_vec(),
            response_expected: true,
            kind: RequestKind::ServiceRequest,
            qos,
            contexts: Vec::new(),
        };
        let started = Instant::now();
        if let Err(e) = self.send_request(ior.node, &request, None) {
            self.unregister_pending(id, &slot);
            return Err(e);
        }
        Ok(PendingCall {
            orb: self.clone(),
            id,
            slot,
            started,
            deadline: started + self.inner.config.request_timeout,
        })
    }

    /// Invocation that collects replies from multiple responders (replica
    /// fan-out). Waits until `min_replies` have arrived or `timeout`
    /// elapses, and returns everything received (possibly more than
    /// `min_replies` if extras raced in).
    ///
    /// # Errors
    ///
    /// [`OrbError::Timeout`] if *no* reply arrived at all; partial results
    /// are returned as `Ok` so voters can quorum on what they have.
    pub fn invoke_collect(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Any],
        qos: Option<QosContext>,
        min_replies: usize,
        timeout: Duration,
    ) -> Result<Vec<(NodeId, Result<Any, OrbError>)>, OrbError> {
        self.invoke_collect_kind(CollectCall {
            ior,
            op,
            args,
            qos,
            min_replies,
            timeout,
            kind: RequestKind::ServiceRequest,
        })
    }

    /// Liveness probe: a collecting `_non_existent` ping tagged
    /// [`RequestKind::Probe`], so both ends count it under the
    /// `orb.probe.*` metric family instead of the request-path
    /// `orb.requests_*` counters availability math is computed from.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke_collect`].
    pub fn probe_collect(
        &self,
        ior: &Ior,
        timeout: Duration,
    ) -> Result<Vec<(NodeId, Result<Any, OrbError>)>, OrbError> {
        self.invoke_collect_kind(CollectCall {
            ior,
            op: "_non_existent",
            args: &[],
            qos: None,
            min_replies: 1,
            timeout,
            kind: RequestKind::Probe,
        })
    }

    fn invoke_collect_kind(
        &self,
        call: CollectCall<'_>,
    ) -> Result<Vec<(NodeId, Result<Any, OrbError>)>, OrbError> {
        let CollectCall { ior, op, args, qos, min_replies, timeout, kind } = call;
        self.check_running()?;
        let _ = self.register_endpoints(ior);
        let (id, slot) = self.register_pending(true);
        let request = RequestMessage {
            request_id: id,
            reply_to: self.node(),
            object_key: ior.key.clone(),
            operation: op.to_string(),
            args: args.to_vec(),
            response_expected: true,
            kind,
            qos,
            contexts: Vec::new(),
        };
        if let Err(e) = self.send_request(ior.node, &request, None) {
            self.unregister_pending(id, &slot);
            return Err(e);
        }
        let deadline = Instant::now() + timeout;
        let mut replies = Vec::new();
        while replies.len() < min_replies {
            match slot.wait_until(id, deadline) {
                Some(reply) => replies.push((reply.from, reply.into_result())),
                None => break,
            }
        }
        // Drain any extras that arrived while we were counting.
        while let Some(reply) = slot.try_pop(id) {
            replies.push((reply.from, reply.into_result()));
        }
        self.unregister_pending(id, &slot);
        if replies.is_empty() {
            return Err(OrbError::Timeout(format!("{op}: no replies within {timeout:?}")));
        }
        Ok(replies)
    }

    /// Fire-and-forget invocation (CORBA `oneway`).
    ///
    /// # Errors
    ///
    /// Local send errors only; remote failures are invisible by design.
    pub fn invoke_oneway(
        &self,
        ior: &Ior,
        op: &str,
        args: &[Any],
        qos: Option<QosContext>,
    ) -> Result<(), OrbError> {
        self.check_running()?;
        let _ = self.register_endpoints(ior);
        let request = RequestMessage {
            request_id: self.inner.next_request.fetch_add(1, Ordering::Relaxed),
            reply_to: self.node(),
            object_key: ior.key.clone(),
            operation: op.to_string(),
            args: args.to_vec(),
            response_expected: false,
            kind: RequestKind::ServiceRequest,
            qos,
            contexts: Vec::new(),
        };
        self.send_request(ior.node, &request, None)
    }

    /// Send a *command* (Fig. 3) to the QoS transport or a module on
    /// `node` and wait for the result. Commands always travel the plain
    /// GIOP path.
    ///
    /// # Errors
    ///
    /// Remote command errors, [`OrbError::Timeout`], or transport errors.
    pub fn send_command(
        &self,
        node: NodeId,
        target: CommandTarget,
        op: &str,
        args: &[Any],
    ) -> Result<Any, OrbError> {
        self.check_running()?;
        let (id, slot) = self.register_pending(false);
        let request = RequestMessage {
            request_id: id,
            reply_to: self.node(),
            object_key: ObjectKey(String::new()),
            operation: op.to_string(),
            args: args.to_vec(),
            response_expected: true,
            kind: RequestKind::Command(target),
            qos: None,
            contexts: Vec::new(),
        };
        if let Err(e) = self.send_wire(node, frame_plain_request(&request)) {
            self.unregister_pending(id, &slot);
            return Err(e);
        }
        let reply = self.await_reply(id, &slot, self.inner.config.request_timeout);
        self.unregister_pending(id, &slot);
        reply?.into_result()
    }

    /// Stop the receive loop and dispatchers. Idempotent.
    ///
    /// Both loops block on their queues rather than polling: shutdown
    /// queues one [`DispatchCmd::Shutdown`] sentinel per dispatcher and
    /// pokes the network handle so the blocking receive wakes at once.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.inner.dispatch_tx {
            let _ = tx.send(DispatchCmd::Shutdown);
        }
        // Wake the blocked receive loop, then stop the transport itself
        // (closes sockets and listeners on socket backends).
        self.inner.wire.poke();
        self.inner.wire.shutdown();
    }

    /// Whether [`Orb::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    // ---- internals ------------------------------------------------------

    fn check_running(&self) -> Result<(), OrbError> {
        if self.is_shut_down() {
            Err(OrbError::Shutdown)
        } else {
            Ok(())
        }
    }

    fn register_pending(&self, collect: bool) -> (u64, Arc<ReplySlot>) {
        let id = self.inner.next_request.fetch_add(1, Ordering::Relaxed);
        let slot = current_slot();
        slot.arm(id);
        self.inner.shard(id).lock().insert(id, Pending { slot: Arc::clone(&slot), collect });
        (id, slot)
    }

    fn unregister_pending(&self, id: u64, slot: &ReplySlot) {
        self.inner.shard(id).lock().remove(&id);
        slot.disarm();
    }

    fn await_reply(
        &self,
        id: u64,
        slot: &ReplySlot,
        timeout: Duration,
    ) -> Result<ReplyMessage, OrbError> {
        slot.wait_until(id, Instant::now() + timeout)
            .ok_or_else(|| OrbError::Timeout(format!("request {id}: no reply within {timeout:?}")))
    }

    /// The client half of the Fig. 3 decision tree.
    ///
    /// The request is encoded exactly once: the plain path writes
    /// envelope and GIOP body into a single wire buffer, the QoS path
    /// hands the module the bare GIOP body and frames each transformed
    /// output. No `RequestMessage` clone, no intermediate `Packet`.
    fn send_request(
        &self,
        dst: NodeId,
        request: &RequestMessage,
        trace_id: Option<u64>,
    ) -> Result<(), OrbError> {
        let metrics = &self.inner.metrics;
        if matches!(request.kind, RequestKind::Probe) {
            metrics.incr("orb.probe.requests_sent");
            self.inner.flight.record(FlightEventKind::ProbeSent, "orb.client", trace_id);
        } else {
            metrics.incr("orb.requests_sent");
            self.inner.flight.record(FlightEventKind::RequestSent, "orb.client", trace_id);
        }
        if request.qos.is_some() {
            if let Some(module) = self.inner.transport.bound_module(dst, &request.object_key) {
                let bytes = GiopMessage::encode_request(request);
                let started = Instant::now();
                let outs = module.outbound(dst, bytes)?;
                metrics.observe_us("transport.outbound_us", started.elapsed().as_micros() as u64);
                metrics.incr("transport.qos_packets_out");
                for (node, body) in outs {
                    self.send_wire(node, frame_qos(module.name(), &body))?;
                }
                return Ok(());
            }
            // QoS-aware but unbound: fall back to GIOP/IIOP (Fig. 3) —
            // this is the path negotiation itself travels on.
        }
        self.send_wire(dst, frame_plain_request(request))
    }

    fn send_wire(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), OrbError> {
        self.inner.wire.send(dst, frame).map_err(OrbError::from)
    }

    fn spawn_receive_loop(&self) -> JoinHandle<()> {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("orb-recv-{}", inner.name))
            .spawn(move || {
                // Event-driven: block on the wire for the first frame of
                // a burst (`shutdown()` pokes the transport — an empty
                // frame, the backend-independent wakeup — so the blocked
                // recv wakes), then opportunistically drain up to
                // `recv_batch` more frames without blocking. Requests
                // accumulate in per-dispatcher buckets and flush as one
                // command per dispatcher per burst; replies are matched
                // inline.
                let n_queues = inner.dispatch_tx.len();
                let mut buckets: Vec<Vec<DispatchWork>> =
                    (0..n_queues).map(|_| Vec::new()).collect();
                let mut rr_next = 0usize;
                let burst = inner.config.recv_batch.max(1);
                loop {
                    let frame = match inner.wire.recv() {
                        Ok(f) => f,
                        Err(_) => break,
                    };
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if !frame.payload.is_empty() {
                        Orb::handle_frame(&inner, &frame, &mut buckets, &mut rr_next);
                    }
                    let mut drained = 1;
                    // Bounded gather: when the inbox runs dry mid-burst,
                    // yield once or twice before flushing. Under load the
                    // senders use the donated timeslice to refill the
                    // inbox (on single-core hosts they *cannot* send
                    // while this loop runs), so batches grow and each
                    // dispatcher wakeup amortizes over more requests;
                    // idle connections never reach this path (the outer
                    // blocking recv got a frame first), so it adds no
                    // latency to quiet traffic.
                    let mut gather = 2u32;
                    while drained < burst {
                        match inner.wire.try_recv() {
                            Ok(Some(f)) => {
                                if !f.payload.is_empty() {
                                    Orb::handle_frame(&inner, &f, &mut buckets, &mut rr_next);
                                }
                                drained += 1;
                            }
                            Ok(None) => {
                                if gather == 0 {
                                    break;
                                }
                                gather -= 1;
                                std::thread::yield_now();
                            }
                            Err(_) => break,
                        }
                    }
                    if inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    for (idx, bucket) in buckets.iter_mut().enumerate() {
                        match bucket.len() {
                            0 => {}
                            1 => {
                                let work = bucket.pop().expect("bucket length checked");
                                let _ = inner.dispatch_tx[idx].send(DispatchCmd::One(work));
                            }
                            _ => {
                                let batch = std::mem::take(bucket);
                                let _ = inner.dispatch_tx[idx].send(DispatchCmd::Batch(batch));
                            }
                        }
                    }
                }
            })
            .expect("spawn orb receive loop")
    }

    fn spawn_dispatcher(&self, rx: Receiver<DispatchCmd>) -> JoinHandle<()> {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("orb-dispatch-{}", inner.name))
            .spawn(move || {
                // Event-driven: block on this dispatcher's private
                // queue; `shutdown()` enqueues one Shutdown sentinel per
                // dispatcher. (Spin-before-park was tried here and
                // rejected: on a single-core host the sender cannot run
                // while the receiver spins, so polling burns exactly the
                // timeslices the producer needs and throughput drops
                // ~35%. Blocking immediately is strictly better; park
                // amortization comes from batching, not spinning.)
                loop {
                    match rx.recv() {
                        Ok(DispatchCmd::One(work)) => Orb::run_work(&inner, work),
                        Ok(DispatchCmd::Batch(batch)) => {
                            for work in batch {
                                Orb::run_work(&inner, work);
                            }
                        }
                        Ok(DispatchCmd::Shutdown) | Err(_) => break,
                    }
                }
            })
            .expect("spawn orb dispatcher")
    }

    /// Dispatcher-side entry: account queue wait, run the full GIOP
    /// decode the receive loop skipped, then execute.
    fn run_work(inner: &Arc<OrbInner>, work: DispatchWork) {
        let DispatchWork { via_module, body, transit_vus, received } = work;
        inner
            .metrics
            .observe_us("orb.queue_wait_us", received.elapsed().as_micros() as u64);
        let request = match GiopMessage::from_bytes(&body) {
            Ok(GiopMessage::Request(r)) => r,
            // The routing peek accepted the prefix but the full decode
            // failed (torn or malicious body): account it like any other
            // undecodable packet.
            _ => {
                bump(&inner.stats.packets_dropped);
                inner.metrics.incr("orb.packets_dropped");
                inner.flight.record(FlightEventKind::PacketDropped, "wire", None);
                return;
            }
        };
        Orb::execute_request(inner, via_module, request, transit_vus);
    }

    /// Receive-loop frame handler. Requests are *routed*, not decoded:
    /// [`giop::peek`] reads only the tag and object key, the body ships
    /// raw to the dispatcher picked by `dispatch_routing`, and the full
    /// decode happens there. Replies are decoded and matched inline —
    /// the pending caller is parked on its slot and nothing else can
    /// deliver to it.
    fn handle_frame(
        inner: &Arc<OrbInner>,
        frame: &WireFrame,
        buckets: &mut [Vec<DispatchWork>],
        rr_next: &mut usize,
    ) {
        let src = frame.src;
        let transit_vus = frame.transit_us;
        let metrics = &inner.metrics;
        metrics.incr("wire.msgs_received");
        metrics.add("wire.bytes_received", frame.payload.len() as u64);
        metrics.observe_us("wire.transit_vus", transit_vus);
        let received = Instant::now();
        let drop_packet = || {
            bump(&inner.stats.packets_dropped);
            metrics.incr("orb.packets_dropped");
            inner.flight.record(FlightEventKind::PacketDropped, "wire", None);
        };
        // The view decode allocates nothing: the body is a refcounted
        // slice of the frame and the module name borrows from it. An
        // owned name is only materialized when a *request* crosses to a
        // dispatcher; the reply path never needs one.
        let (giop_bytes, via_module): (Bytes, Option<&str>) = match Packet::decode_view(
            &frame.payload,
        ) {
            Err(_) => {
                drop_packet();
                return;
            }
            Ok(PacketView::Plain(body)) => (body, None),
            Ok(PacketView::Qos { module, body }) => match inner.transport.module(module) {
                Some(m) => {
                    // Timing every inverse transform puts two clock
                    // reads on the QoS hot path; sampling 1-in-32 keeps
                    // the histogram live at a fraction of the cost.
                    let sampled = INBOUND_SAMPLE.with(|c| {
                        let n = c.get();
                        c.set(n.wrapping_add(1));
                        n & 31 == 0
                    });
                    let started = sampled.then(Instant::now);
                    let transformed = m.inbound(src, &body);
                    if let Some(started) = started {
                        metrics.observe_us(
                            "transport.inbound_us",
                            started.elapsed().as_micros() as u64,
                        );
                    }
                    metrics.incr("transport.qos_packets_in");
                    match transformed {
                        Ok(Some(out)) => {
                            let bytes = match out {
                                // Identity transforms hand the input slice
                                // straight back; re-share the refcounted
                                // frame instead of copying the body.
                                std::borrow::Cow::Borrowed(b)
                                    if b.len() == body.len() && b.as_ptr() == body.as_ptr() =>
                                {
                                    body.clone()
                                }
                                std::borrow::Cow::Borrowed(b) => Bytes::copy_from_slice(b),
                                std::borrow::Cow::Owned(v) => Bytes::from(v),
                            };
                            (bytes, Some(module))
                        }
                        Ok(None) => return, // module swallowed it (e.g. duplicate)
                        Err(_) => {
                            drop_packet();
                            return;
                        }
                    }
                }
                None => {
                    drop_packet();
                    return;
                }
            },
        };
        match giop::peek(&giop_bytes) {
            Err(_) => drop_packet(),
            Ok(GiopPeek::Request { key_hash }) => {
                let idx = match inner.config.dispatch_routing {
                    DispatchRouting::KeyAffinity => (key_hash % buckets.len() as u64) as usize,
                    DispatchRouting::RoundRobin => {
                        let idx = *rr_next % buckets.len();
                        *rr_next = rr_next.wrapping_add(1);
                        idx
                    }
                };
                buckets[idx].push(DispatchWork {
                    via_module: via_module.map(str::to_owned),
                    body: giop_bytes,
                    transit_vus,
                    received,
                });
                metrics.observe_us("orb.recv_route_us", received.elapsed().as_micros() as u64);
            }
            Ok(GiopPeek::Reply) => {
                let mut reply = match GiopMessage::from_bytes(&giop_bytes) {
                    Ok(GiopMessage::Reply(r)) => r,
                    _ => {
                        drop_packet();
                        return;
                    }
                };
                // Stamp the reply's wire leg into the trace it carries, so
                // the client sees both directions of the network cost.
                let mut reply_trace_id = None;
                if let Some(mut ctx) = reply
                    .context(TRACE_CONTEXT_ID)
                    .and_then(|b| TraceContext::from_bytes(b).ok())
                {
                    reply_trace_id = Some(ctx.trace_id);
                    ctx.push("wire.reply", &inner.name, transit_vus);
                    reply.set_context(TRACE_CONTEXT_ID, ctx.to_bytes());
                }
                let id = reply.request_id;
                // Take the entry out of its shard (fan-out collectors
                // are peeked and left registered) and drop the lock
                // *before* delivering, so a slow consumer never holds up
                // unrelated reply matching on the same shard.
                let slot = {
                    let mut shard = inner.shard(id).lock();
                    match shard.get(&id) {
                        None => None,
                        Some(p) if p.collect => Some(Arc::clone(&p.slot)),
                        Some(_) => shard.remove(&id).map(|p| p.slot),
                    }
                };
                let delivered = match slot {
                    Some(slot) => slot.push(id, reply, || {
                        bump(&inner.stats.replies_matched);
                        metrics.incr("orb.replies_matched");
                        inner.flight.record(
                            FlightEventKind::ReplyMatched,
                            "orb.client",
                            reply_trace_id,
                        );
                    }),
                    None => false,
                };
                if !delivered {
                    bump(&inner.stats.replies_orphaned);
                    metrics.incr("orb.replies_orphaned");
                    inner.flight.record(
                        FlightEventKind::ReplyOrphaned,
                        "orb.client",
                        reply_trace_id,
                    );
                }
                metrics.observe_us("orb.reply_match_us", received.elapsed().as_micros() as u64);
            }
        }
    }

    /// The server half of the Fig. 3 decision tree.
    fn execute_request(
        inner: &Arc<OrbInner>,
        via_module: Option<String>,
        request: RequestMessage,
        transit_vus: u64,
    ) {
        let metrics = &inner.metrics;
        // Install the request's trace (if it carries one) on this
        // dispatcher thread so adapter/skeleton/servant spans land in it.
        let ctx_in = request
            .context(TRACE_CONTEXT_ID)
            .and_then(|b| TraceContext::from_bytes(b).ok());
        let trace_id = ctx_in.as_ref().map(|c| c.trace_id);
        let scope = ctx_in.map(|mut ctx| {
            ctx.push("wire", &inner.name, transit_vus);
            trace::begin(ctx, &inner.name)
        });
        let started = Instant::now();
        let result = match &request.kind {
            RequestKind::Command(CommandTarget::Transport) => {
                inner.transport.command(&request.operation, &request.args)
            }
            RequestKind::Command(CommandTarget::Module(name)) => match inner.transport.module(name) {
                Some(m) => m.command(&request.operation, &request.args),
                None => Err(OrbError::ModuleNotFound(name.clone())),
            },
            RequestKind::ServiceRequest | RequestKind::Probe => {
                if let Some(name) = request.object_key.0.strip_prefix(PSEUDO_KEY_PREFIX) {
                    inner.pseudo.invoke(name, &request.operation, &request.args)
                } else {
                    trace::time("adapter", || {
                        inner.adapter.dispatch(&request.object_key, &request.operation, &request.args)
                    })
                }
            }
        };
        let dispatch_us = started.elapsed().as_micros() as u64;
        if matches!(request.kind, RequestKind::Probe) {
            // Keep failure-detector traffic out of the request-path
            // counters so availability math over `orb.requests_*` only
            // sees application calls.
            metrics.observe_us("orb.probe.dispatch_us", dispatch_us);
            metrics.incr("orb.probe.requests_handled");
            inner.flight.record(FlightEventKind::ProbeHandled, "orb.server", trace_id);
        } else {
            metrics.observe_us("orb.dispatch_us", dispatch_us);
            metrics.incr("orb.requests_handled");
            bump(&inner.stats.requests_handled);
            inner.flight.record(FlightEventKind::RequestDispatched, "orb.server", trace_id);
        }
        let trace_out = scope.map(|s| {
            let mut ctx = s.finish();
            ctx.push("orb.server", &inner.name, dispatch_us);
            ctx
        });
        if !request.response_expected {
            return;
        }
        let mut reply = ReplyMessage::from_result(request.request_id, inner.node, result);
        if let Some(ctx) = trace_out {
            reply.set_context(TRACE_CONTEXT_ID, ctx.to_bytes());
        }
        // Route the reply back through the same module the request came
        // in by, so transforms like compression are symmetric. Either
        // way the reply is encoded exactly once, straight into the
        // frame that goes on the wire.
        let frame = match via_module.and_then(|m| inner.transport.module(&m)) {
            Some(module) => {
                let bytes = GiopMessage::encode_reply(&reply);
                let started = Instant::now();
                let outs = module.outbound(request.reply_to, bytes);
                metrics.observe_us("transport.outbound_us", started.elapsed().as_micros() as u64);
                match outs {
                    Ok(mut outs) if outs.len() == 1 => {
                        let (node, body) = outs.remove(0);
                        debug_assert_eq!(node, request.reply_to);
                        frame_qos(module.name(), &body)
                    }
                    _ => return, // fan-out modules answer per-destination themselves
                }
            }
            None => frame_plain_reply(&reply),
        };
        let _ = inner.wire.send(request.reply_to, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos_binding::{Outbound, QosModule};

    struct Echo;
    impl Servant for Echo {
        fn interface_id(&self) -> &str {
            "IDL:Echo:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => Ok(args.first().cloned().unwrap_or(Any::Void)),
                "fail" => Err(OrbError::UserException("boom".to_string())),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    fn pair() -> (Network, Orb, Orb, Ior) {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("echo", Box::new(Echo));
        (net, server, client, ior)
    }

    #[test]
    fn remote_roundtrip() {
        let (_net, server, client, ior) = pair();
        let r = client.invoke(&ior, "echo", &[Any::from("hi")]).unwrap();
        assert_eq!(r, Any::Str("hi".into()));
        assert_eq!(server.stats().requests_handled, 1);
        assert_eq!(client.stats().replies_matched, 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn remote_exception_propagates() {
        let (_net, server, client, ior) = pair();
        let err = client.invoke(&ior, "fail", &[]).unwrap_err();
        assert_eq!(err, OrbError::UserException("boom".into()));
        let err = client.invoke(&ior, "nope", &[]).unwrap_err();
        assert!(matches!(err, OrbError::BadOperation(_)));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn unknown_object() {
        let (_net, server, client, _) = pair();
        let bogus = Ior::new("IDL:X:1.0", server.node(), "ghost");
        assert!(matches!(client.invoke(&bogus, "x", &[]), Err(OrbError::ObjectNotExist(_))));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn collocated_shortcut_counts() {
        let (_net, server, _client, ior) = pair();
        let r = server.invoke(&ior, "echo", &[Any::Long(1)]).unwrap();
        assert_eq!(r, Any::Long(1));
        assert_eq!(server.stats().collocated_calls, 1);
        server.shutdown();
    }

    #[test]
    fn collocated_without_shortcut_goes_over_wire() {
        let net = Network::new(1);
        let cfg = OrbConfig { collocated_shortcut: false, ..OrbConfig::default() };
        let orb = Orb::start_with(&net, "solo", cfg);
        let ior = orb.activate("echo", Box::new(Echo));
        let r = orb.invoke(&ior, "echo", &[Any::Long(2)]).unwrap();
        assert_eq!(r, Any::Long(2));
        assert_eq!(orb.stats().collocated_calls, 0);
        assert_eq!(orb.stats().requests_handled, 1);
        orb.shutdown();
    }

    #[test]
    fn oneway_does_not_wait() {
        let (_net, server, client, ior) = pair();
        client.invoke_oneway(&ior, "echo", &[Any::Long(3)], None).unwrap();
        // Give the server a moment, then check it processed the request.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(server.stats().requests_handled, 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn timeout_on_crashed_server() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start_with(
            &net,
            "client",
            OrbConfig { request_timeout: Duration::from_millis(100), ..OrbConfig::default() },
        );
        let ior = server.activate("echo", Box::new(Echo));
        net.crash(server.node());
        let err = client.invoke(&ior, "echo", &[Any::Void]).unwrap_err();
        assert!(matches!(err, OrbError::Timeout(_)));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn remote_transport_command() {
        let (_net, server, client, _ior) = pair();
        let mods = client
            .send_command(server.node(), CommandTarget::Transport, "list_modules", &[])
            .unwrap();
        assert_eq!(mods, Any::Sequence(vec![]));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn pseudo_object_reachable_remotely() {
        let (_net, server, client, _ior) = pair();
        struct Answer;
        impl Servant for Answer {
            fn interface_id(&self) -> &str {
                "IDL:Pseudo/Answer:1.0"
            }
            fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
                match op {
                    "get" => Ok(Any::Long(42)),
                    other => Err(OrbError::BadOperation(other.to_string())),
                }
            }
        }
        server.pseudo_objects().register("Answer", Arc::new(Answer));
        let ior = Ior::new("IDL:Pseudo/Answer:1.0", server.node(), "pseudo:Answer");
        assert_eq!(client.invoke(&ior, "get", &[]).unwrap(), Any::Long(42));
        server.shutdown();
        client.shutdown();
    }

    /// Module that reverses the body bytes — detectable if only one side runs.
    struct Mirror;
    impl QosModule for Mirror {
        fn name(&self) -> &str {
            "mirror"
        }
        fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            Err(OrbError::BadOperation(op.to_string()))
        }
        fn outbound(&self, dst: NodeId, mut bytes: Vec<u8>) -> Result<Outbound, OrbError> {
            bytes.reverse();
            Ok(vec![(dst, bytes)])
        }
        fn inbound<'a>(
            &self,
            _src: NodeId,
            bytes: &'a [u8],
        ) -> Result<Option<std::borrow::Cow<'a, [u8]>>, OrbError> {
            let mut bytes = bytes.to_vec();
            bytes.reverse();
            Ok(Some(std::borrow::Cow::Owned(bytes)))
        }
    }

    #[test]
    fn qos_bound_traffic_goes_through_module_both_ways() {
        let (_net, server, client, ior) = pair();
        client.qos_transport().install(Arc::new(Mirror));
        server.qos_transport().install(Arc::new(Mirror));
        client
            .qos_transport()
            .bind(crate::qos_binding::BindingKey { peer: None, key: ior.key.clone() }, "mirror")
            .unwrap();
        let qos = Some(QosContext::new("mirror"));
        let r = client.invoke_qos(&ior, "echo", &[Any::from("qos!")], qos).unwrap();
        assert_eq!(r, Any::Str("qos!".into()));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn qos_aware_but_unbound_falls_back_to_plain() {
        let (_net, server, client, ior) = pair();
        let qos = Some(QosContext::new("anything"));
        let r = client.invoke_qos(&ior, "echo", &[Any::Long(7)], qos).unwrap();
        assert_eq!(r, Any::Long(7));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn invoke_collect_gathers_single_reply() {
        let (_net, server, client, ior) = pair();
        let replies = client
            .invoke_collect(&ior, "echo", &[Any::Long(5)], None, 1, Duration::from_secs(1))
            .unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, server.node());
        assert_eq!(replies[0].1, Ok(Any::Long(5)));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn probes_do_not_move_request_counters() {
        let (_net, server, client, ior) = pair();
        let replies = client.probe_collect(&ior, Duration::from_secs(1)).unwrap();
        assert_eq!(replies[0].1, Ok(Any::Bool(false)), "_non_existent answers false");
        // Probe traffic lands in its own counter family on both ends...
        assert_eq!(client.metrics().snapshot().counter("orb.probe.requests_sent"), 1);
        assert_eq!(server.metrics().snapshot().counter("orb.probe.requests_handled"), 1);
        // ...and the request-path counters availability is computed from
        // stay untouched.
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), 0);
        assert_eq!(server.metrics().snapshot().counter("orb.requests_handled"), 0);
        assert!(server.metrics().snapshot().histogram("orb.dispatch_us").is_none());
        assert_eq!(server.stats().requests_handled, 0);
        // A real call afterwards moves only the request-path family.
        client.invoke(&ior, "echo", &[Any::Long(1)]).unwrap();
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), 1);
        assert_eq!(client.metrics().snapshot().counter("orb.probe.requests_sent"), 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn traced_remote_call_carries_one_trace_id_and_layer_spans() {
        let (_net, server, client, ior) = pair();
        let ctx = TraceContext::new(client.node());
        let want_id = ctx.trace_id;
        let (value, trace) =
            client.invoke_traced(&ior, "echo", &[Any::from("t")], None, Some(ctx)).unwrap();
        assert_eq!(value, Any::Str("t".into()));
        let trace = trace.expect("traced call returns a context");
        assert_eq!(trace.trace_id, want_id);
        for layer in ["wire", "adapter", "orb.server", "wire.reply", "orb.client"] {
            assert!(trace.span(layer).is_some(), "missing span {layer}: {trace:?}");
        }
        // Metrics recorded on both sides.
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), 1);
        assert_eq!(server.metrics().snapshot().counter("orb.requests_handled"), 1);
        assert!(server.metrics().snapshot().histogram("orb.dispatch_us").is_some());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn traced_collocated_call_records_adapter_span() {
        let (_net, server, _client, ior) = pair();
        let ctx = TraceContext::new(server.node());
        let (_, trace) =
            server.invoke_traced(&ior, "echo", &[Any::Long(1)], None, Some(ctx)).unwrap();
        let trace = trace.unwrap();
        assert!(trace.span("adapter").is_some());
        assert!(trace.span("wire").is_none(), "no wire leg on the shortcut");
        assert_eq!(server.metrics().snapshot().counter("orb.collocated_calls"), 1);
        server.shutdown();
    }

    #[test]
    fn untraced_calls_return_no_context() {
        let (_net, server, client, ior) = pair();
        let (_, trace) = client.invoke_traced(&ior, "echo", &[Any::Long(2)], None, None).unwrap();
        assert!(trace.is_none());
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_calls() {
        let (_net, server, client, ior) = pair();
        client.shutdown();
        assert_eq!(client.invoke(&ior, "echo", &[]), Err(OrbError::Shutdown));
        server.shutdown();
    }

    #[test]
    fn garbage_packets_are_counted_not_fatal() {
        let (net, server, client, ior) = pair();
        let raw = net.attach("attacker");
        raw.send(server.node(), vec![1, 2, 3]).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(server.stats().packets_dropped, 1);
        // Server still works.
        assert_eq!(client.invoke(&ior, "echo", &[Any::Long(1)]).unwrap(), Any::Long(1));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn pending_table_is_sharded_enough() {
        // The contention-relief claim in DESIGN §6d rests on this floor.
        assert!(PENDING_SHARDS >= 8, "pending table must keep at least 8 shards");
    }

    /// A servant whose `slow` op outlives the client timeout, so the
    /// reply arrives after the caller gave up and unregistered.
    struct Sluggish;
    impl Servant for Sluggish {
        fn interface_id(&self) -> &str {
            "IDL:Sluggish:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "slow" => {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(Any::Long(9))
                }
                "fast" => Ok(Any::Long(1)),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
    }

    #[test]
    fn late_reply_is_orphaned_never_misdelivered() {
        let net = Network::new(1);
        // Two dispatchers so the follow-up call is served *while* the
        // slow one is still sleeping — the stale reply then lands after
        // the caller's slot has been re-armed for a newer request.
        // RoundRobin routing: both calls target the same key, and the
        // default KeyAffinity would (correctly) serialize them on one
        // dispatcher, which is exactly what this test must avoid.
        let server = Orb::start_with(
            &net,
            "server",
            OrbConfig {
                dispatch_threads: 2,
                dispatch_routing: DispatchRouting::RoundRobin,
                ..OrbConfig::default()
            },
        );
        let client = Orb::start_with(
            &net,
            "client",
            OrbConfig { request_timeout: Duration::from_millis(50), ..OrbConfig::default() },
        );
        let ior = server.activate("slug", Box::new(Sluggish));
        // Times out while the servant is still sleeping…
        let err = client.invoke(&ior, "slow", &[]).unwrap_err();
        assert!(matches!(err, OrbError::Timeout(_)));
        // …and the very next call reuses the same thread's reply slot.
        // If the armed-id guard or the shard unregister were broken, the
        // late Long(9) reply could leak into this call's rendezvous.
        let r = client.invoke(&ior, "fast", &[]).unwrap();
        assert_eq!(r, Any::Long(1));
        // Wait for the stale reply to land, then check the invariant:
        // every reply received is either matched or orphaned.
        std::thread::sleep(Duration::from_millis(300));
        let s = client.stats();
        assert_eq!(s.replies_matched, 1, "only the fast call was delivered");
        assert_eq!(s.replies_orphaned, 1, "the late slow reply was orphaned");
        let snap = client.metrics().snapshot();
        assert_eq!(snap.counter("orb.replies_matched"), s.replies_matched);
        assert_eq!(snap.counter("orb.replies_orphaned"), s.replies_orphaned);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn invoke_async_pipelines_many_calls_from_one_thread() {
        let net = Network::new(1);
        let server = Orb::start_with(
            &net,
            "server",
            OrbConfig { dispatch_threads: 4, ..OrbConfig::default() },
        );
        let client = Orb::start(&net, "client");
        let ior = server.activate("echo", Box::new(Echo));
        // One thread, 40 calls in flight at once through the pending
        // table, harvested in issue order.
        let pending: Vec<PendingCall> = (0..40)
            .map(|i| client.invoke_async(&ior, "echo", &[Any::Long(i)], None).unwrap())
            .collect();
        let ids: Vec<u64> = pending.iter().map(PendingCall::request_id).collect();
        assert_eq!(ids.len(), 40);
        for (i, call) in pending.into_iter().enumerate() {
            assert_eq!(call.wait().unwrap(), Any::Long(i as i32));
        }
        let s = client.stats();
        assert_eq!(s.replies_matched, 40);
        assert_eq!(s.replies_orphaned, 0);
        assert_eq!(server.stats().requests_handled, 40);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn dropped_pending_call_orphans_its_reply() {
        let (_net, server, client, ior) = pair();
        // Issue and abandon: the handle's Drop unregisters the request,
        // so the reply must be orphaned — and the *next* call on this
        // thread must be unaffected (private slots never alias the
        // pooled per-thread slot).
        let call = client.invoke_async(&ior, "echo", &[Any::Long(1)], None).unwrap();
        drop(call);
        let r = client.invoke(&ior, "echo", &[Any::Long(2)]).unwrap();
        assert_eq!(r, Any::Long(2));
        let deadline = Instant::now() + Duration::from_secs(2);
        while client.stats().replies_orphaned < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let s = client.stats();
        assert_eq!(s.replies_orphaned, 1, "abandoned call's reply is orphaned");
        assert_eq!(s.replies_matched, 1, "only the live call was delivered");
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn trace_sampling_period_gates_trace_sampled() {
        let net = Network::new(1);
        let every4 = Orb::start_with(
            &net,
            "every4",
            OrbConfig { trace_sample_every: 4, ..OrbConfig::default() },
        );
        let hits = (0..8).filter(|_| every4.trace_sampled()).count();
        assert_eq!(hits, 2, "period 4 samples 2 of 8");
        let never = Orb::start_with(
            &net,
            "never",
            OrbConfig { trace_sample_every: 0, ..OrbConfig::default() },
        );
        assert!(!never.trace_sampled());
        let always = Orb::start(&net, "always");
        assert!((0..5).all(|_| always.trace_sampled()), "default samples everything");
        every4.shutdown();
        never.shutdown();
        always.shutdown();
    }

    #[test]
    fn flight_recorder_logs_unsampled_calls_matching_metrics() {
        use crate::flight::FlightEventKind as K;
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start_with(
            &net,
            "client",
            OrbConfig { trace_sample_every: 3, ..OrbConfig::default() },
        );
        let ior = server.activate("echo", Box::new(Echo));
        for i in 0..9 {
            // The stub-side sampling protocol: mint a context only when
            // the ORB says this call is sampled.
            let trace = client.trace_sampled().then(|| TraceContext::new(client.node()));
            client.invoke_traced(&ior, "echo", &[Any::Long(i)], None, trace).unwrap();
        }
        // Recorder counts match the metrics counters exactly: sampling
        // gates tracing, never recording.
        let snap = client.metrics().snapshot();
        assert_eq!(client.flight().count(K::RequestSent), snap.counter("orb.requests_sent"));
        assert_eq!(client.flight().count(K::RequestSent), 9);
        assert_eq!(server.flight().count(K::RequestDispatched), 9);
        // Reply matching is recorded on the receive loop; give it a beat.
        let deadline = Instant::now() + Duration::from_secs(2);
        while client.flight().count(K::ReplyMatched) < 9 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(client.flight().count(K::ReplyMatched), 9);
        // Period 3 over 9 calls: 3 sampled (with trace ids), 6 without.
        let sent: Vec<_> = client
            .flight()
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == K::RequestSent)
            .collect();
        assert_eq!(sent.iter().filter(|e| e.trace_id.is_some()).count(), 3);
        assert_eq!(sent.iter().filter(|e| e.trace_id.is_none()).count(), 6);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn nested_outbound_call_from_servant() {
        // A forwarding servant that calls another object during dispatch;
        // requires the dispatcher pool to be distinct from the recv loop.
        let net = Network::new(1);
        let backend = Orb::start(&net, "backend");
        let front = Orb::start(&net, "front");
        let client = Orb::start(&net, "client");
        let backend_ior = backend.activate("echo", Box::new(Echo));

        struct Forwarder {
            orb: Orb,
            target: Ior,
        }
        impl Servant for Forwarder {
            fn interface_id(&self) -> &str {
                "IDL:Forwarder:1.0"
            }
            fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
                self.orb.invoke(&self.target, op, args)
            }
        }
        let fw_ior = front.activate(
            "fw",
            Box::new(Forwarder { orb: front.clone(), target: backend_ior }),
        );
        let r = client.invoke(&fw_ior, "echo", &[Any::from("deep")]).unwrap();
        assert_eq!(r, Any::Str("deep".into()));
        backend.shutdown();
        front.shutdown();
        client.shutdown();
    }
}
