//! The QoS binding layer: reflective, dynamically loadable QoS modules
//! and the binding table routing traffic through them.
//!
//! This is the §4 half of the paper — what it calls the "QoS transport".
//! (The *wire* transport — sockets vs the simulator — lives in
//! [`crate::wire`]; this module is the registry/binding machinery that
//! sits **above** the wire and transforms GIOP bodies.) The ORB's
//! invocation interface hands
//! QoS-aware traffic to the **QoS transport**, "an entity which
//! administrates all QoS transport modules". Each module offers:
//!
//! * a **common static interface** — load, unload, configure, status —
//!   modelled as a pseudo-object ([`QosModule::command`] plus the
//!   transport-level commands), and
//! * a **specific dynamic interface** — reached through the DII as
//!   commands addressed to the module by name.
//!
//! Modules transform outbound GIOP bytes ([`QosModule::outbound`]) and
//! apply the inverse on the receiving side ([`QosModule::inbound`]); a
//! module may also redirect or fan out a message (group multicast) or
//! swallow one (duplicate suppression). Client/server relationships are
//! *bound* to a module; unbound QoS-aware traffic falls back to plain
//! GIOP/IIOP, which is how initial negotiation travels (Fig. 3).

use crate::sync::{LockRank, OrderedRwLock};
use crate::any::Any;
use crate::error::OrbError;
use crate::ior::ObjectKey;
use netsim::NodeId;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Destinations and payloads produced by a module's outbound transform.
pub type Outbound = Vec<(NodeId, Vec<u8>)>;

/// A transport-level QoS module.
///
/// Implementations must be cheap to share (`Send + Sync`); the transport
/// holds them in `Arc`s and calls them from the ORB's send path and
/// receive loop concurrently.
pub trait QosModule: Send + Sync {
    /// The module's unique name, used for binding and command addressing.
    fn name(&self) -> &str;

    /// The module's *dynamic* interface: handle a command operation.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] for unknown commands; module-specific
    /// errors otherwise.
    fn command(&self, op: &str, args: &[Any]) -> Result<Any, OrbError>;

    /// Outbound transform: given the destination and the GIOP bytes,
    /// produce the messages to actually put on the wire.
    ///
    /// The default is the identity transform to the original destination.
    ///
    /// # Errors
    ///
    /// Module-specific; errors abort the send.
    fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        Ok(vec![(dst, bytes)])
    }

    /// Inbound transform: invert [`QosModule::outbound`] on received
    /// bytes. Returning `Ok(None)` swallows the message (e.g. duplicate
    /// suppression after a fan-out).
    ///
    /// The input borrows straight out of the wire frame and the default
    /// hands the same slice back as `Cow::Borrowed` — identity modules
    /// (bandwidth policing, multicast receive) never copy the body. A
    /// module that rewrites the payload returns `Cow::Owned`.
    ///
    /// # Errors
    ///
    /// Module-specific; errors drop the message.
    fn inbound<'a>(&self, src: NodeId, bytes: &'a [u8]) -> Result<Option<Cow<'a, [u8]>>, OrbError> {
        let _ = src;
        Ok(Some(Cow::Borrowed(bytes)))
    }
}

/// Constructor for dynamically loadable modules.
///
/// The paper's "common static interface allows the dynamic loading of QoS
/// modules on request": factories are registered under a module-type
/// name, and a `load_module` command instantiates one with a
/// configuration value.
pub type ModuleFactory = Arc<dyn Fn(&Any) -> Result<Arc<dyn QosModule>, OrbError> + Send + Sync>;

/// Identifies one client/server QoS relationship for binding purposes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BindingKey {
    /// The remote peer (server node for clients, client node for servers).
    pub peer: Option<NodeId>,
    /// The object the binding concerns.
    pub key: ObjectKey,
}

struct QosBindingState {
    factories: HashMap<String, ModuleFactory>,
    modules: HashMap<String, Arc<dyn QosModule>>,
    bindings: HashMap<BindingKey, String>,
}

/// Memoized results of [`QosTransport::bound_module`], including
/// negative ones (plain-path traffic probes the table on every send).
/// The nested map keys by peer then object-key string so lookups borrow
/// — no `ObjectKey` clone on the hot path.
#[derive(Default)]
struct ResolveCache {
    /// Value of [`QosTransport::epoch`] the entries were computed at;
    /// a mismatch means an admin mutation happened and the cache is
    /// stale wholesale.
    epoch: u64,
    map: HashMap<NodeId, HashMap<String, Option<Arc<dyn QosModule>>>>,
}

/// Monotonic id generator for [`QosTransport::instance`].
static NEXT_TRANSPORT_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// How many `(transport, peer)` pairs a thread's L1 resolve cache may
/// hold before it is wholesale cleared. Bounds memory in test suites
/// that start and drop many ORBs on one thread; real deployments have
/// a handful of transports and peers and never hit the cap.
const L1_PAIR_CAP: usize = 64;

thread_local! {
    /// Per-thread L1 over the shared [`ResolveCache`] (the L2). Keyed by
    /// `(transport instance, peer)`, then object-key string; each entry
    /// remembers the epoch it was computed at so a stale hit is
    /// impossible — an admin mutation bumps the transport epoch and the
    /// comparison below fails. A hit costs two `HashMap` lookups and an
    /// atomic load: no allocation, no rank-ordered lock. This is what
    /// keeps the QoS-over-plain delta flat when several dispatchers
    /// probe the binding table concurrently — the L2 `RwLock` read is
    /// uncontended only in the read-mostly steady state, but its guard
    /// still costs an atomic RMW per call; the L1 costs none.
    #[allow(clippy::type_complexity)]
    static L1_RESOLVE: std::cell::RefCell<
        HashMap<(u64, NodeId), HashMap<String, (u64, Option<Arc<dyn QosModule>>)>>,
    > = std::cell::RefCell::new(HashMap::new());

    /// Per-thread L1 over the `modules` table, keyed by transport
    /// instance then module name, with the same epoch-tagging discipline
    /// as [`L1_RESOLVE`]. The receive loop resolves the module named in
    /// every QoS envelope; without this cache each received QoS packet
    /// pays the rank-ordered admin read lock.
    #[allow(clippy::type_complexity)]
    static L1_MODULES: std::cell::RefCell<
        HashMap<u64, HashMap<String, (u64, Option<Arc<dyn QosModule>>)>>,
    > = std::cell::RefCell::new(HashMap::new());
}

/// Administers loaded QoS modules and their bindings (Fig. 3).
#[derive(Clone)]
pub struct QosTransport {
    state: Arc<OrderedRwLock<QosBindingState>>,
    /// Bumped on every module/binding mutation; readers compare it to
    /// [`ResolveCache::epoch`] to detect staleness without walking the
    /// admin tables.
    epoch: Arc<AtomicU64>,
    cache: Arc<OrderedRwLock<ResolveCache>>,
    /// Process-unique id distinguishing this transport's entries in the
    /// thread-local L1 resolve cache. Clones share it (they share the
    /// same state, so cached resolutions are interchangeable).
    instance: u64,
}

impl fmt::Debug for QosTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.read();
        f.debug_struct("QosTransport")
            .field("factories", &st.factories.len())
            .field("modules", &st.modules.keys().collect::<Vec<_>>())
            .field("bindings", &st.bindings.len())
            .finish()
    }
}

impl Default for QosTransport {
    fn default() -> QosTransport {
        QosTransport::new()
    }
}

impl QosTransport {
    /// An empty transport: no factories, no modules, no bindings.
    pub fn new() -> QosTransport {
        QosTransport {
            state: Arc::new(OrderedRwLock::new(LockRank::QosBindingState, QosBindingState {
                factories: HashMap::new(),
                modules: HashMap::new(),
                bindings: HashMap::new(),
            })),
            epoch: Arc::new(AtomicU64::new(0)),
            cache: Arc::new(OrderedRwLock::new(LockRank::ResolveCache, ResolveCache::default())),
            instance: NEXT_TRANSPORT_INSTANCE.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Invalidate memoized binding resolutions after an admin mutation.
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Register a factory for a loadable module type.
    pub fn register_factory(&self, type_name: impl Into<String>, factory: ModuleFactory) {
        self.state.write().factories.insert(type_name.into(), factory);
    }

    /// Instantiate and install a module of registered type `type_name`.
    ///
    /// # Errors
    ///
    /// [`OrbError::ModuleNotFound`] if no factory is registered, or the
    /// factory's own error.
    pub fn load_module(&self, type_name: &str, config: &Any) -> Result<String, OrbError> {
        let factory = self
            .state
            .read()
            .factories
            .get(type_name)
            .cloned()
            .ok_or_else(|| OrbError::ModuleNotFound(format!("no factory for {type_name}")))?;
        let module = factory(config)?;
        let name = module.name().to_string();
        self.state.write().modules.insert(name.clone(), module);
        self.bump_epoch();
        Ok(name)
    }

    /// Install an already constructed module.
    pub fn install(&self, module: Arc<dyn QosModule>) {
        self.state.write().modules.insert(module.name().to_string(), module);
        self.bump_epoch();
    }

    /// Remove a module and all bindings that point at it.
    ///
    /// # Errors
    ///
    /// [`OrbError::ModuleNotFound`] if no such module is loaded.
    pub fn unload_module(&self, name: &str) -> Result<(), OrbError> {
        let mut st = self.state.write();
        if st.modules.remove(name).is_none() {
            return Err(OrbError::ModuleNotFound(name.to_string()));
        }
        st.bindings.retain(|_, m| m != name);
        drop(st);
        self.bump_epoch();
        Ok(())
    }

    /// Look up a loaded module by name.
    ///
    /// Called per received QoS packet, so resolutions (including
    /// negative ones) go through an epoch-tagged thread-local cache: a
    /// hit costs two map probes and an atomic load — no allocation, no
    /// rank-ordered lock.
    pub fn module(&self, name: &str) -> Option<Arc<dyn QosModule>> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let l1_hit = L1_MODULES.with(|l1| {
            let l1 = l1.borrow();
            l1.get(&self.instance)
                .and_then(|m| m.get(name))
                .and_then(|(e, hit)| (*e == epoch).then(|| hit.clone()))
        });
        if let Some(hit) = l1_hit {
            return hit;
        }
        let resolved = self.state.read().modules.get(name).cloned();
        // Tagged with the pre-lookup epoch: if a mutation raced in
        // between, the tag is already stale and the entry can never hit.
        L1_MODULES.with(|l1| {
            let mut l1 = l1.borrow_mut();
            if l1.len() >= L1_PAIR_CAP && !l1.contains_key(&self.instance) {
                l1.clear();
            }
            l1.entry(self.instance)
                .or_default()
                .insert(name.to_string(), (epoch, resolved.clone()));
        });
        resolved
    }

    /// Names of all loaded modules, sorted.
    pub fn loaded_modules(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.read().modules.keys().cloned().collect();
        names.sort();
        names
    }

    /// Bind a client/server relationship to a module.
    ///
    /// # Errors
    ///
    /// [`OrbError::ModuleNotFound`] if the module is not loaded.
    pub fn bind(&self, binding: BindingKey, module: &str) -> Result<(), OrbError> {
        let mut st = self.state.write();
        if !st.modules.contains_key(module) {
            return Err(OrbError::ModuleNotFound(module.to_string()));
        }
        st.bindings.insert(binding, module.to_string());
        drop(st);
        self.bump_epoch();
        Ok(())
    }

    /// Remove a binding, returning the module it pointed at.
    pub fn unbind(&self, binding: &BindingKey) -> Option<String> {
        let removed = self.state.write().bindings.remove(binding);
        self.bump_epoch();
        removed
    }

    /// The module bound to a relationship, trying the exact
    /// `(peer, key)` binding first and falling back to a wildcard
    /// `(None, key)` binding. `None` means: use plain GIOP/IIOP.
    ///
    /// Every send probes this, so resolutions (including misses) are
    /// memoized per `(peer, key)` and invalidated wholesale whenever a
    /// module or binding changes.
    pub fn bound_module(&self, peer: NodeId, key: &ObjectKey) -> Option<Arc<dyn QosModule>> {
        let epoch = self.epoch.load(Ordering::Acquire);
        // L1: thread-local, epoch-tagged. A hit touches no lock and
        // allocates nothing (the inner map is probed by `&str`).
        let l1_hit = L1_RESOLVE.with(|l1| {
            let l1 = l1.borrow();
            l1.get(&(self.instance, peer))
                .and_then(|m| m.get(key.0.as_str()))
                .and_then(|(e, hit)| (*e == epoch).then(|| hit.clone()))
        });
        if let Some(hit) = l1_hit {
            return hit;
        }
        // L2: shared, rank-ordered. Serves warm-up on threads that have
        // not resolved this pair yet without re-walking the admin tables.
        let l2_hit = {
            let cache = self.cache.read();
            if cache.epoch == epoch {
                cache.map.get(&peer).and_then(|m| m.get(key.0.as_str())).cloned()
            } else {
                None
            }
        };
        let resolved = match l2_hit {
            Some(hit) => hit,
            None => {
                let resolved = self.resolve(peer, key);
                // Only memoize if no admin mutation raced with the
                // resolution; a stale entry written under an old epoch is
                // never served (the epoch check above fails) and is
                // cleared on the next miss.
                if self.epoch.load(Ordering::Acquire) == epoch {
                    let mut cache = self.cache.write();
                    if cache.epoch != epoch {
                        cache.map.clear();
                        cache.epoch = epoch;
                    }
                    cache.map.entry(peer).or_default().insert(key.0.clone(), resolved.clone());
                }
                resolved
            }
        };
        // Refill the L1 tagged with the epoch loaded *before* the lookup:
        // if an admin mutation raced in, the entry's tag is already stale
        // and the comparison above will never serve it.
        L1_RESOLVE.with(|l1| {
            let mut l1 = l1.borrow_mut();
            if l1.len() >= L1_PAIR_CAP && !l1.contains_key(&(self.instance, peer)) {
                l1.clear();
            }
            l1.entry((self.instance, peer))
                .or_default()
                .insert(key.0.clone(), (epoch, resolved.clone()));
        });
        resolved
    }

    fn resolve(&self, peer: NodeId, key: &ObjectKey) -> Option<Arc<dyn QosModule>> {
        let st = self.state.read();
        let name = st
            .bindings
            .get(&BindingKey { peer: Some(peer), key: key.clone() })
            .or_else(|| st.bindings.get(&BindingKey { peer: None, key: key.clone() }))?;
        st.modules.get(name).cloned()
    }

    /// The transport's own command interface (the "Transport-Command"
    /// branch of Fig. 3): `load_module(type, config)`,
    /// `unload_module(name)`, `list_modules()`, `bind(key, module)`,
    /// `unbind(key)`.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadOperation`] for unknown commands,
    /// [`OrbError::BadParam`] for malformed arguments, and the underlying
    /// operation's error otherwise.
    pub fn command(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "load_module" => {
                let type_name = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("load_module(type, config)".to_string()))?;
                let config = args.get(1).cloned().unwrap_or(Any::Void);
                let name = self.load_module(type_name, &config)?;
                Ok(Any::Str(name))
            }
            "unload_module" => {
                let name = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("unload_module(name)".to_string()))?;
                self.unload_module(name)?;
                Ok(Any::Void)
            }
            "list_modules" => Ok(Any::Sequence(
                self.loaded_modules().into_iter().map(Any::Str).collect(),
            )),
            "bind" => {
                let key = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("bind(object_key, module)".to_string()))?;
                let module = args
                    .get(1)
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("bind(object_key, module)".to_string()))?;
                self.bind(BindingKey { peer: None, key: ObjectKey(key.to_string()) }, module)?;
                Ok(Any::Void)
            }
            "unbind" => {
                let key = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("unbind(object_key)".to_string()))?;
                let removed = self.unbind(&BindingKey { peer: None, key: ObjectKey(key.to_string()) });
                Ok(Any::Bool(removed.is_some()))
            }
            other => Err(OrbError::BadOperation(format!("transport command {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A module that XORs every byte — enough to verify both transforms run.
    struct XorModule {
        name: String,
        key: u8,
    }

    impl QosModule for XorModule {
        fn name(&self) -> &str {
            &self.name
        }
        fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "key" => Ok(Any::Octet(self.key)),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
        fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
            Ok(vec![(dst, bytes.iter().map(|b| b ^ self.key).collect())])
        }
        fn inbound<'a>(
            &self,
            _src: NodeId,
            bytes: &'a [u8],
        ) -> Result<Option<Cow<'a, [u8]>>, OrbError> {
            Ok(Some(Cow::Owned(bytes.iter().map(|b| b ^ self.key).collect())))
        }
    }

    fn xor_factory() -> ModuleFactory {
        Arc::new(|config: &Any| {
            let key = config.field("key").and_then(Any::as_i64).unwrap_or(0x55) as u8;
            Ok(Arc::new(XorModule { name: "xor".to_string(), key }) as Arc<dyn QosModule>)
        })
    }

    #[test]
    fn load_bind_and_transform() {
        let t = QosTransport::new();
        t.register_factory("xor", xor_factory());
        let name = t.load_module("xor", &Any::Void).unwrap();
        assert_eq!(name, "xor");
        assert_eq!(t.loaded_modules(), vec!["xor"]);

        let key = ObjectKey("obj".into());
        t.bind(BindingKey { peer: None, key: key.clone() }, "xor").unwrap();
        let m = t.bound_module(NodeId(9), &key).expect("wildcard binding matches any peer");
        let out = m.outbound(NodeId(1), vec![0x00, 0xFF]).unwrap();
        assert_eq!(out, vec![(NodeId(1), vec![0x55, 0xAA])]);
        let back = m.inbound(NodeId(1), &out[0].1).unwrap().unwrap();
        assert_eq!(back, vec![0x00, 0xFF]);
    }

    #[test]
    fn bound_module_cache_tracks_admin_mutations() {
        let t = QosTransport::new();
        t.install(Arc::new(XorModule { name: "a".into(), key: 1 }));
        t.install(Arc::new(XorModule { name: "b".into(), key: 2 }));
        let key = ObjectKey("o".into());
        // A negative resolution is memoized…
        assert!(t.bound_module(NodeId(3), &key).is_none());
        assert!(t.bound_module(NodeId(3), &key).is_none());
        // …but a later bind must invalidate it.
        t.bind(BindingKey { peer: None, key: key.clone() }, "a").unwrap();
        assert_eq!(t.bound_module(NodeId(3), &key).unwrap().name(), "a");
        // Repeated hits come from the cache and still agree.
        for _ in 0..3 {
            assert_eq!(t.bound_module(NodeId(3), &key).unwrap().name(), "a");
        }
        // Rebinding and unbinding are observed immediately.
        t.bind(BindingKey { peer: None, key: key.clone() }, "b").unwrap();
        assert_eq!(t.bound_module(NodeId(3), &key).unwrap().name(), "b");
        t.unbind(&BindingKey { peer: None, key: key.clone() });
        assert!(t.bound_module(NodeId(3), &key).is_none());
        // Unloading a module kills resolutions that pointed at it.
        t.bind(BindingKey { peer: Some(NodeId(7)), key: key.clone() }, "a").unwrap();
        assert_eq!(t.bound_module(NodeId(7), &key).unwrap().name(), "a");
        t.unload_module("a").unwrap();
        assert!(t.bound_module(NodeId(7), &key).is_none());
    }

    #[test]
    fn thread_local_cache_isolates_transport_instances() {
        // Two transports, same peer and key, different bindings: the
        // thread-local L1 must key on the transport instance, not just
        // (peer, key), or the second lookup here would serve the first
        // transport's memoized answer.
        let t1 = QosTransport::new();
        let t2 = QosTransport::new();
        t1.install(Arc::new(XorModule { name: "a".into(), key: 1 }));
        t2.install(Arc::new(XorModule { name: "b".into(), key: 2 }));
        let key = ObjectKey("o".into());
        t1.bind(BindingKey { peer: None, key: key.clone() }, "a").unwrap();
        t2.bind(BindingKey { peer: None, key: key.clone() }, "b").unwrap();
        for _ in 0..3 {
            assert_eq!(t1.bound_module(NodeId(1), &key).unwrap().name(), "a");
            assert_eq!(t2.bound_module(NodeId(1), &key).unwrap().name(), "b");
        }
        // A clone shares the instance id — its hits are interchangeable,
        // and a mutation through the clone invalidates the original's L1.
        let t1b = t1.clone();
        assert_eq!(t1b.bound_module(NodeId(1), &key).unwrap().name(), "a");
        t1b.install(Arc::new(XorModule { name: "b".into(), key: 2 }));
        t1b.bind(BindingKey { peer: None, key: key.clone() }, "b").unwrap();
        assert_eq!(t1.bound_module(NodeId(1), &key).unwrap().name(), "b");
    }

    #[test]
    fn peer_binding_beats_wildcard() {
        let t = QosTransport::new();
        t.install(Arc::new(XorModule { name: "a".into(), key: 1 }));
        t.install(Arc::new(XorModule { name: "b".into(), key: 2 }));
        let key = ObjectKey("o".into());
        t.bind(BindingKey { peer: None, key: key.clone() }, "a").unwrap();
        t.bind(BindingKey { peer: Some(NodeId(5)), key: key.clone() }, "b").unwrap();
        assert_eq!(t.bound_module(NodeId(5), &key).unwrap().name(), "b");
        assert_eq!(t.bound_module(NodeId(6), &key).unwrap().name(), "a");
    }

    #[test]
    fn unload_removes_bindings() {
        let t = QosTransport::new();
        t.install(Arc::new(XorModule { name: "x".into(), key: 0 }));
        let key = ObjectKey("o".into());
        t.bind(BindingKey { peer: None, key: key.clone() }, "x").unwrap();
        t.unload_module("x").unwrap();
        assert!(t.bound_module(NodeId(0), &key).is_none());
        assert!(t.unload_module("x").is_err());
    }

    #[test]
    fn bind_to_missing_module_fails() {
        let t = QosTransport::new();
        let err = t.bind(BindingKey { peer: None, key: ObjectKey("o".into()) }, "ghost");
        assert!(matches!(err, Err(OrbError::ModuleNotFound(_))));
    }

    #[test]
    fn transport_command_interface() {
        let t = QosTransport::new();
        t.register_factory("xor", xor_factory());
        let cfg = Any::Struct("Cfg".into(), vec![("key".into(), Any::Octet(7))]);
        let name = t.command("load_module", &[Any::from("xor"), cfg]).unwrap();
        assert_eq!(name, Any::Str("xor".into()));
        assert_eq!(
            t.command("list_modules", &[]).unwrap(),
            Any::Sequence(vec![Any::Str("xor".into())])
        );
        t.command("bind", &[Any::from("obj"), Any::from("xor")]).unwrap();
        assert!(t.bound_module(NodeId(0), &ObjectKey("obj".into())).is_some());
        assert_eq!(t.command("unbind", &[Any::from("obj")]).unwrap(), Any::Bool(true));
        assert_eq!(t.command("unbind", &[Any::from("obj")]).unwrap(), Any::Bool(false));
        t.command("unload_module", &[Any::from("xor")]).unwrap();
        assert!(t.command("load_module", &[Any::from("ghost")]).is_err());
        assert!(t.command("frob", &[]).is_err());
    }

    #[test]
    fn module_dynamic_interface_via_command() {
        let t = QosTransport::new();
        t.install(Arc::new(XorModule { name: "x".into(), key: 9 }));
        let m = t.module("x").unwrap();
        assert_eq!(m.command("key", &[]).unwrap(), Any::Octet(9));
        assert!(m.command("nope", &[]).is_err());
    }
}
