//! ORB error types, modelled after the CORBA system exceptions.

use std::fmt;

/// Errors raised by the ORB runtime and by servants.
///
/// The variants mirror the CORBA system exceptions the paper's framework
/// relies on, plus [`OrbError::QosNotNegotiated`], the exception the woven
/// server skeleton raises for operations of a QoS characteristic that is
/// assigned to the interface but not currently negotiated (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrbError {
    /// The object key does not name an active servant (`OBJECT_NOT_EXIST`).
    ObjectNotExist(String),
    /// The operation is not part of the interface (`BAD_OPERATION`).
    BadOperation(String),
    /// Wrong argument count or types for an operation (`BAD_PARAM`).
    BadParam(String),
    /// Marshalling or unmarshalling failed (`MARSHAL`).
    Marshal(String),
    /// A transient communication failure; the request may be retried
    /// (`TRANSIENT`).
    Transient(String),
    /// The peer cannot be reached at all (`COMM_FAILURE`).
    CommFailure(String),
    /// No reply arrived within the configured timeout (`TIMEOUT`).
    Timeout(String),
    /// The caller lacks permission for the operation (`NO_PERMISSION`).
    NoPermission(String),
    /// A user-defined exception raised by the servant.
    UserException(String),
    /// A QoS operation was invoked but its characteristic is not the one
    /// currently negotiated for this binding (MAQS-specific, §3.3).
    QosNotNegotiated(String),
    /// A QoS agreement could not be established or was violated.
    QosViolation(String),
    /// A named QoS transport module is not loaded (Fig. 3 dispatch).
    ModuleNotFound(String),
    /// The resilience layer's circuit breaker for this binding is open:
    /// the call was rejected locally without going on the wire
    /// (MAQS-specific).
    CircuitOpen(String),
    /// The ORB has been shut down.
    Shutdown,
}

impl OrbError {
    /// Short CORBA-style exception name, used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            OrbError::ObjectNotExist(_) => "OBJECT_NOT_EXIST",
            OrbError::BadOperation(_) => "BAD_OPERATION",
            OrbError::BadParam(_) => "BAD_PARAM",
            OrbError::Marshal(_) => "MARSHAL",
            OrbError::Transient(_) => "TRANSIENT",
            OrbError::CommFailure(_) => "COMM_FAILURE",
            OrbError::Timeout(_) => "TIMEOUT",
            OrbError::NoPermission(_) => "NO_PERMISSION",
            OrbError::UserException(_) => "USER_EXCEPTION",
            OrbError::QosNotNegotiated(_) => "QOS_NOT_NEGOTIATED",
            OrbError::QosViolation(_) => "QOS_VIOLATION",
            OrbError::ModuleNotFound(_) => "MODULE_NOT_FOUND",
            OrbError::CircuitOpen(_) => "CIRCUIT_OPEN",
            OrbError::Shutdown => "SHUTDOWN",
        }
    }

    /// Human-readable detail message.
    pub fn detail(&self) -> &str {
        match self {
            OrbError::ObjectNotExist(s)
            | OrbError::BadOperation(s)
            | OrbError::BadParam(s)
            | OrbError::Marshal(s)
            | OrbError::Transient(s)
            | OrbError::CommFailure(s)
            | OrbError::Timeout(s)
            | OrbError::NoPermission(s)
            | OrbError::UserException(s)
            | OrbError::QosNotNegotiated(s)
            | OrbError::QosViolation(s)
            | OrbError::ModuleNotFound(s)
            | OrbError::CircuitOpen(s) => s,
            OrbError::Shutdown => "orb shut down",
        }
    }

    /// Reconstruct an error from its wire form (`kind`, `detail`).
    pub fn from_wire(kind: &str, detail: String) -> OrbError {
        match kind {
            "OBJECT_NOT_EXIST" => OrbError::ObjectNotExist(detail),
            "BAD_OPERATION" => OrbError::BadOperation(detail),
            "BAD_PARAM" => OrbError::BadParam(detail),
            "MARSHAL" => OrbError::Marshal(detail),
            "TRANSIENT" => OrbError::Transient(detail),
            "COMM_FAILURE" => OrbError::CommFailure(detail),
            "TIMEOUT" => OrbError::Timeout(detail),
            "NO_PERMISSION" => OrbError::NoPermission(detail),
            "USER_EXCEPTION" => OrbError::UserException(detail),
            "QOS_NOT_NEGOTIATED" => OrbError::QosNotNegotiated(detail),
            "QOS_VIOLATION" => OrbError::QosViolation(detail),
            "MODULE_NOT_FOUND" => OrbError::ModuleNotFound(detail),
            "CIRCUIT_OPEN" => OrbError::CircuitOpen(detail),
            "SHUTDOWN" => OrbError::Shutdown,
            other => OrbError::Marshal(format!("unknown exception kind {other}: {detail}")),
        }
    }

    /// Whether a retry of the failed request may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, OrbError::Transient(_) | OrbError::Timeout(_) | OrbError::CommFailure(_))
    }
}

impl fmt::Display for OrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for OrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip_all_variants() {
        let all = vec![
            OrbError::ObjectNotExist("k".into()),
            OrbError::BadOperation("op".into()),
            OrbError::BadParam("p".into()),
            OrbError::Marshal("m".into()),
            OrbError::Transient("t".into()),
            OrbError::CommFailure("c".into()),
            OrbError::Timeout("to".into()),
            OrbError::NoPermission("np".into()),
            OrbError::UserException("ue".into()),
            OrbError::QosNotNegotiated("q".into()),
            OrbError::QosViolation("qv".into()),
            OrbError::ModuleNotFound("mod".into()),
            OrbError::CircuitOpen("breaker".into()),
            OrbError::Shutdown,
        ];
        for e in all {
            let back = OrbError::from_wire(e.kind(), e.detail().to_string());
            assert_eq!(back, e);
        }
    }

    #[test]
    fn unknown_kind_degrades_to_marshal() {
        let e = OrbError::from_wire("NOPE", "x".into());
        assert!(matches!(e, OrbError::Marshal(_)));
    }

    #[test]
    fn retryable_classification() {
        assert!(OrbError::Transient("".into()).is_retryable());
        assert!(OrbError::Timeout("".into()).is_retryable());
        assert!(!OrbError::BadOperation("".into()).is_retryable());
        // A locally-open breaker must not be retried into: the point is
        // to shed load until the cooldown elapses.
        assert!(!OrbError::CircuitOpen("".into()).is_retryable());
    }

    #[test]
    fn display_contains_kind_and_detail() {
        let s = OrbError::BadOperation("frob".into()).to_string();
        assert!(s.contains("BAD_OPERATION") && s.contains("frob"));
    }
}
