//! Common Data Representation (CDR)-style marshalling.
//!
//! A faithful-in-spirit re-implementation of CORBA's CDR: primitives are
//! encoded little-endian at naturally aligned offsets (a `u32` starts at a
//! 4-byte boundary, a `u64` at an 8-byte boundary, …), strings are
//! length-prefixed and NUL-terminated, sequences are length-prefixed.
//!
//! # Example
//!
//! ```
//! use orb::cdr::{CdrEncoder, CdrDecoder};
//!
//! let mut enc = CdrEncoder::new();
//! enc.put_u8(7);
//! enc.put_u32(0xDEAD_BEEF); // padded to offset 4
//! enc.put_string("hi");
//! let bytes = enc.into_bytes();
//!
//! let mut dec = CdrDecoder::new(&bytes);
//! assert_eq!(dec.get_u8().unwrap(), 7);
//! assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
//! assert_eq!(dec.get_string().unwrap(), "hi");
//! assert!(dec.is_at_end());
//! ```

use crate::error::OrbError;

/// Maximum length accepted for strings, byte buffers and sequences, a
/// defence against corrupt or hostile length prefixes.
pub const MAX_LEN: u32 = 64 * 1024 * 1024;

/// An append-only CDR encoder.
#[derive(Debug, Default, Clone)]
pub struct CdrEncoder {
    buf: Vec<u8>,
}

impl CdrEncoder {
    /// A new, empty encoder.
    pub fn new() -> CdrEncoder {
        CdrEncoder::default()
    }

    /// A new encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> CdrEncoder {
        CdrEncoder { buf: Vec::with_capacity(cap) }
    }

    /// Finish encoding and return the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn align(&mut self, n: usize) {
        let pad = (n - self.buf.len() % n) % n;
        self.buf.extend(std::iter::repeat(0u8).take(pad));
    }

    /// Pad with zero octets so the next write starts on an `n`-byte
    /// boundary. Useful for framing layers that embed independently
    /// aligned sub-encodings in one buffer.
    pub fn align_to(&mut self, n: usize) {
        self.align(n);
    }

    /// Append raw octets verbatim: no length prefix, no alignment.
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Reserve a 4-aligned `u32` slot (written as zero) and return its
    /// offset, to be filled in later with [`CdrEncoder::patch_u32`] once
    /// the value (typically a trailing-body length) is known.
    pub fn reserve_u32(&mut self) -> usize {
        self.align(4);
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        at
    }

    /// Overwrite the `u32` slot previously returned by
    /// [`CdrEncoder::reserve_u32`].
    ///
    /// # Panics
    ///
    /// Panics if `at` does not address 4 reserved bytes in the buffer.
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` (one octet, 0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append an octet.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append an `i16` at 2-byte alignment.
    pub fn put_i16(&mut self, v: i16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u16` at 2-byte alignment.
    pub fn put_u16(&mut self, v: u16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i32` at 4-byte alignment.
    pub fn put_i32(&mut self, v: i32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` at 4-byte alignment.
    pub fn put_u32(&mut self, v: u32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` at 8-byte alignment.
    pub fn put_i64(&mut self, v: i64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` at 8-byte alignment.
    pub fn put_u64(&mut self, v: u64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` at 4-byte alignment.
    pub fn put_f32(&mut self, v: f32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` at 8-byte alignment.
    pub fn put_f64(&mut self, v: f64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a string: `u32` length (including NUL), bytes, NUL.
    pub fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Append a byte sequence: `u32` length, raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Append a sequence length prefix (callers then encode the elements).
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// A cursor-based CDR decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct CdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! get_prim {
    ($name:ident, $ty:ty, $align:expr) => {
        /// Decode the primitive at its natural alignment.
        ///
        /// # Errors
        ///
        /// Returns [`OrbError::Marshal`] if the buffer is exhausted.
        pub fn $name(&mut self) -> Result<$ty, OrbError> {
            self.align($align);
            const N: usize = std::mem::size_of::<$ty>();
            let end = self.pos.checked_add(N).ok_or_else(|| overflow())?;
            let slice = self.buf.get(self.pos..end).ok_or_else(|| eof(stringify!($ty)))?;
            self.pos = end;
            Ok(<$ty>::from_le_bytes(slice.try_into().expect("length checked")))
        }
    };
}

fn eof(what: &str) -> OrbError {
    OrbError::Marshal(format!("unexpected end of CDR buffer reading {what}"))
}

fn overflow() -> OrbError {
    OrbError::Marshal("CDR cursor overflow".to_string())
}

impl<'a> CdrDecoder<'a> {
    /// Decode from `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> CdrDecoder<'a> {
        CdrDecoder { buf, pos: 0 }
    }

    /// Current cursor offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// The unread remainder of the buffer.
    pub fn remaining(&self) -> &'a [u8] {
        &self.buf[self.pos.min(self.buf.len())..]
    }

    fn align(&mut self, n: usize) {
        let pad = (n - self.pos % n) % n;
        self.pos += pad;
    }

    /// Skip padding so the next read starts on an `n`-byte boundary
    /// (the decoder mirror of [`CdrEncoder::align_to`]).
    pub fn align_to(&mut self, n: usize) {
        self.align(n);
    }

    /// Read `n` raw octets with no length prefix, returning the
    /// underlying slice (no copy).
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], OrbError> {
        let end = self.pos.checked_add(n).ok_or_else(overflow)?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| eof("raw bytes"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Decode a `bool`.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion or a value other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, OrbError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(OrbError::Marshal(format!("invalid bool octet {v}"))),
        }
    }

    /// Decode an octet.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion.
    pub fn get_u8(&mut self) -> Result<u8, OrbError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| eof("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    get_prim!(get_i16, i16, 2);
    get_prim!(get_u16, u16, 2);
    get_prim!(get_i32, i32, 4);
    get_prim!(get_u32, u32, 4);
    get_prim!(get_i64, i64, 8);
    get_prim!(get_u64, u64, 8);
    get_prim!(get_f32, f32, 4);
    get_prim!(get_f64, f64, 8);

    /// Decode a string (length-prefixed, NUL-terminated, UTF-8),
    /// borrowing it straight out of the buffer — no allocation. The hot
    /// receive path uses this to read the QoS-envelope module name
    /// without an owned `String` per packet.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion, missing NUL, oversized length
    /// or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, OrbError> {
        let len = self.get_u32()?;
        if len == 0 || len > MAX_LEN {
            return Err(OrbError::Marshal(format!("bad string length {len}")));
        }
        let n = len as usize;
        let end = self.pos.checked_add(n).ok_or_else(overflow)?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| eof("string"))?;
        self.pos = end;
        let (body, nul) = slice.split_at(n - 1);
        if nul != [0] {
            return Err(OrbError::Marshal("string missing NUL terminator".to_string()));
        }
        std::str::from_utf8(body)
            .map_err(|e| OrbError::Marshal(format!("invalid UTF-8 in string: {e}")))
    }

    /// Decode a string into an owned `String`; see [`CdrDecoder::get_str`].
    ///
    /// # Errors
    ///
    /// As [`CdrDecoder::get_str`].
    pub fn get_string(&mut self) -> Result<String, OrbError> {
        self.get_str().map(str::to_owned)
    }

    /// Decode a byte sequence.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion or oversized length.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, OrbError> {
        let len = self.get_u32()?;
        if len > MAX_LEN {
            return Err(OrbError::Marshal(format!("bad bytes length {len}")));
        }
        let n = len as usize;
        let end = self.pos.checked_add(n).ok_or_else(overflow)?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| eof("bytes"))?;
        self.pos = end;
        Ok(slice.to_vec())
    }

    /// Decode a sequence length prefix.
    ///
    /// # Errors
    ///
    /// [`OrbError::Marshal`] on exhaustion or oversized length.
    pub fn get_len(&mut self) -> Result<usize, OrbError> {
        let len = self.get_u32()?;
        if len > MAX_LEN {
            return Err(OrbError::Marshal(format!("bad sequence length {len}")));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = CdrEncoder::new();
        e.put_bool(true);
        e.put_u8(0xAB);
        e.put_i16(-2);
        e.put_u16(65_000);
        e.put_i32(-70_000);
        e.put_u32(4_000_000_000);
        e.put_i64(i64::MIN);
        e.put_u64(u64::MAX);
        e.put_f32(1.5);
        e.put_f64(-2.25);
        let b = e.into_bytes();
        let mut d = CdrDecoder::new(&b);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_i16().unwrap(), -2);
        assert_eq!(d.get_u16().unwrap(), 65_000);
        assert_eq!(d.get_i32().unwrap(), -70_000);
        assert_eq!(d.get_u32().unwrap(), 4_000_000_000);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_f32().unwrap(), 1.5);
        assert_eq!(d.get_f64().unwrap(), -2.25);
        assert!(d.is_at_end());
    }

    #[test]
    fn alignment_is_natural() {
        let mut e = CdrEncoder::new();
        e.put_u8(1); // offset 0
        e.put_u32(2); // padded to offset 4
        assert_eq!(e.len(), 8);
        let mut e2 = CdrEncoder::new();
        e2.put_u8(1);
        e2.put_u64(2); // padded to offset 8
        assert_eq!(e2.into_bytes().len(), 16);
    }

    #[test]
    fn string_roundtrip_including_empty_and_unicode() {
        for s in ["", "x", "hello world", "héllo ☃", "a\nb\tc"] {
            let mut e = CdrEncoder::new();
            e.put_string(s);
            let b = e.into_bytes();
            assert_eq!(CdrDecoder::new(&b).get_string().unwrap(), s);
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let data = vec![0u8, 255, 3, 7];
        let mut e = CdrEncoder::new();
        e.put_bytes(&data);
        let b = e.into_bytes();
        assert_eq!(CdrDecoder::new(&b).get_bytes().unwrap(), data);
    }

    #[test]
    fn truncated_buffer_is_marshal_error() {
        let mut e = CdrEncoder::new();
        e.put_u64(42);
        let b = e.into_bytes();
        let mut d = CdrDecoder::new(&b[..4]);
        assert!(matches!(d.get_u64(), Err(OrbError::Marshal(_))));
    }

    #[test]
    fn bogus_lengths_are_rejected() {
        // String with length 0 (CDR strings always have >= 1 for the NUL).
        let mut e = CdrEncoder::new();
        e.put_u32(0);
        let b = e.into_bytes();
        assert!(CdrDecoder::new(&b).get_string().is_err());
        // Huge claimed length.
        let mut e = CdrEncoder::new();
        e.put_u32(u32::MAX);
        let b = e.into_bytes();
        assert!(CdrDecoder::new(&b).get_bytes().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let b = [3u8];
        assert!(CdrDecoder::new(&b).get_bool().is_err());
    }

    #[test]
    fn missing_nul_rejected() {
        let mut e = CdrEncoder::new();
        e.put_u32(3);
        let mut b = e.into_bytes();
        b.extend_from_slice(b"abc"); // 3 bytes, none of them NUL
        assert!(CdrDecoder::new(&b).get_string().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = CdrEncoder::new();
        e.put_u32(3);
        let mut b = e.into_bytes();
        b.extend_from_slice(&[0xFF, 0xFE, 0x00]);
        assert!(CdrDecoder::new(&b).get_string().is_err());
    }

    #[test]
    fn reserve_patch_and_raw_roundtrip() {
        let mut e = CdrEncoder::new();
        e.put_raw(b"MAQ1");
        e.put_u8(0);
        let at = e.reserve_u32(); // 4-aligned: offset 8
        assert_eq!(at, 8);
        e.align_to(8);
        let body_start = e.len();
        assert_eq!(body_start % 8, 0);
        e.put_raw(b"body");
        e.patch_u32(at, 4);
        let b = e.into_bytes();

        let mut d = CdrDecoder::new(&b);
        assert_eq!(d.get_raw(4).unwrap(), b"MAQ1");
        assert_eq!(d.get_u8().unwrap(), 0);
        let len = d.get_u32().unwrap() as usize;
        d.align_to(8);
        assert_eq!(d.position(), body_start);
        assert_eq!(d.get_raw(len).unwrap(), b"body");
        assert!(d.is_at_end());
    }

    #[test]
    fn get_raw_past_end_is_marshal_error() {
        let b = [1u8, 2];
        let mut d = CdrDecoder::new(&b);
        assert!(matches!(d.get_raw(3), Err(OrbError::Marshal(_))));
        assert_eq!(d.get_raw(2).unwrap(), &[1, 2]);
    }

    #[test]
    fn decoder_remaining_and_position() {
        let mut e = CdrEncoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let b = e.into_bytes();
        let mut d = CdrDecoder::new(&b);
        assert_eq!(d.get_u8().unwrap(), 1);
        assert_eq!(d.position(), 1);
        assert_eq!(d.remaining(), &[2]);
    }
}
