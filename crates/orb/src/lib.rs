//! A CORBA-like object-oriented middleware, built from scratch.
//!
//! This crate is the middleware substrate of MAQS-RS, reproducing the
//! runtime structure of Fig. 1 of Becker & Geihs (ICDCS 2001): client →
//! stub → ORB → (network) → ORB → object adapter → skeleton → servant. It
//! provides everything the paper assumes from "an object-oriented
//! middleware like CORBA":
//!
//! * **CDR marshalling** ([`cdr`]) — aligned little-endian encoding of
//!   primitives, strings and sequences.
//! * **TypeCode / Any** ([`any`]) — self-describing values, the foundation
//!   of the dynamic invocation interface.
//! * **Interoperable object references** ([`ior`]) — object identity plus
//!   *QoS tags*, the "distinct tag in the IOR" of Fig. 3 that marks a
//!   reference as QoS-aware.
//! * **GIOP-like protocol** ([`giop`]) — request/reply messages, including
//!   the paper's dual use of a request as *service-request* or *command*.
//! * **Object adapter** ([`adapter`]) — servant registry and dispatch.
//! * **The ORB core** ([`core`]) — invocation interface implementing the
//!   Fig. 3 decision tree: untagged requests take the plain GIOP path,
//!   QoS-aware requests go through the QoS transport, commands are routed
//!   to the QoS transport or a named module.
//! * **QoS binding layer** ([`qos_binding`]) — dynamically loadable QoS
//!   modules with a common static (pseudo-object) interface and a
//!   module-specific dynamic interface (via DII), plus the binding table
//!   routing traffic through them.
//! * **Wire transports** ([`wire`]) — the pluggable byte-moving layer:
//!   the deterministic simulator wrapper, real TCP, and Unix-domain
//!   sockets behind one [`wire::WireTransport`] trait.
//! * **DII** ([`dii`]) — dynamic request construction.
//! * **Pseudo objects** ([`pseudo`]) — locally implemented objects, used
//!   for the static interfaces of QoS modules.
//! * **Tracing** ([`trace`]) — per-request trace contexts carried in a
//!   GIOP service-context slot, giving a per-layer cost breakdown.
//! * **Metrics** ([`metrics`]) — counters and latency histograms recorded
//!   at every layer of the request path, with mergeable/delta snapshots
//!   for fleet aggregation.
//! * **Coarse clock** ([`clock`]) — a ticker-amortized monotonic clock
//!   for timestamping paths too hot for per-call `Instant::now`.
//! * **Flight recorder** ([`flight`]) — an always-on, bounded ring buffer
//!   of structured lifecycle events, the middleware's black box.
//! * **Exporters** ([`export`]) — Prometheus text exposition, Chrome
//!   `trace_event` JSON, and JSONL egress for the observability plane.
//!
//! The network underneath is [`netsim`]; see that crate for link and fault
//! models.
//!
//! # Example
//!
//! ```
//! use netsim::Network;
//! use orb::prelude::*;
//!
//! // A trivial servant implementing one operation.
//! struct Echo;
//! impl Servant for Echo {
//!     fn interface_id(&self) -> &str { "IDL:Echo:1.0" }
//!     fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
//!         match op {
//!             "echo" => Ok(args[0].clone()),
//!             _ => Err(OrbError::BadOperation(op.to_string())),
//!         }
//!     }
//! }
//!
//! let net = Network::new(1);
//! let server = Orb::start(&net, "server");
//! let client = Orb::start(&net, "client");
//! let ior = server.activate("echo-1", Box::new(Echo));
//!
//! let reply = client.invoke(&ior, "echo", &[Any::from("hi")]).unwrap();
//! assert_eq!(reply.as_str(), Some("hi"));
//! # server.shutdown(); client.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod any;
pub mod cdr;
pub mod clock;
pub mod core;
pub mod dii;
pub mod error;
pub mod export;
pub mod flight;
pub mod giop;
pub mod ior;
pub mod metrics;
pub mod pseudo;
pub mod qos_binding;
pub mod retry;
pub mod sync;
pub mod trace;
pub mod wire;

/// Deprecated alias of [`qos_binding`].
///
/// Historically this module was called `transport`, but it is the QoS
/// module registry/binding table of §4, not a transport: the layer that
/// actually moves bytes is [`wire`]. The alias keeps old paths
/// compiling; new code should say what it means.
#[deprecated(since = "0.7.0", note = "renamed to `orb::qos_binding`; the wire layer is `orb::wire`")]
pub mod transport {
    pub use crate::qos_binding::*;
}

/// Convenient re-exports of the types used by almost every ORB client.
pub mod prelude {
    pub use crate::adapter::Servant;
    pub use crate::any::{Any, TypeCode};
    pub use crate::core::Orb;
    pub use crate::error::OrbError;
    pub use crate::ior::Ior;
}

pub use crate::adapter::{ObjectAdapter, Servant};
pub use crate::any::{Any, TypeCode};
pub use crate::core::{DispatchRouting, Orb, OrbConfig, PendingCall};
pub use crate::error::OrbError;
pub use crate::flight::{FlightDump, FlightEvent, FlightEventKind, FlightRecorder};
pub use crate::ior::{Ior, ObjectKey};
pub use crate::metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, QuantileEstimate};
pub use crate::retry::RetryPolicy;
pub use crate::sync::{LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
pub use crate::qos_binding::{ModuleFactory, QosModule, QosTransport};
pub use crate::trace::{Span, TraceContext};
pub use crate::wire::fault::{FaultyTransport, WireFault, WireFaultScript};
pub use crate::wire::{
    BackpressurePolicy, ConnHealth, Endpoint, NetSimTransport, TcpTransport, UdsTransport,
    WireConfig, WireError, WireEvent, WireFrame, WireObserver, WireTransport,
};
