//! Pseudo objects: locally implemented, ORB-internal objects.
//!
//! CORBA exposes ORB internals (the ORB itself, POA, …) as *pseudo
//! objects*: entities that look like objects but are implemented inside
//! the local ORB and never cross the wire. The paper models each QoS
//! module's **static interface** as a pseudo object "and therefore \[it\]
//! can be accessed like any other object" (§4). This registry is the
//! MAQS-RS analogue of `resolve_initial_references`.

use crate::sync::{LockRank, OrderedRwLock};
use crate::adapter::Servant;
use crate::any::Any;
use crate::error::OrbError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Well-known name of the QoS transport pseudo object.
pub const QOS_TRANSPORT_NAME: &str = "QoSTransport";

/// Registry of named pseudo objects local to one ORB.
#[derive(Clone)]
pub struct PseudoObjectRegistry {
    objects: Arc<OrderedRwLock<HashMap<String, Arc<dyn Servant>>>>,
}

impl Default for PseudoObjectRegistry {
    fn default() -> PseudoObjectRegistry {
        PseudoObjectRegistry {
            objects: Arc::new(OrderedRwLock::new(LockRank::PseudoObjects, HashMap::new())),
        }
    }
}

impl fmt::Debug for PseudoObjectRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.objects.read().keys().cloned().collect();
        f.debug_struct("PseudoObjectRegistry").field("names", &names).finish()
    }
}

impl PseudoObjectRegistry {
    /// A new, empty registry.
    pub fn new() -> PseudoObjectRegistry {
        PseudoObjectRegistry::default()
    }

    /// Register `object` under `name`, replacing any previous entry.
    pub fn register(&self, name: impl Into<String>, object: Arc<dyn Servant>) {
        self.objects.write().insert(name.into(), object);
    }

    /// The CORBA `resolve_initial_references` analogue.
    ///
    /// # Errors
    ///
    /// [`OrbError::ObjectNotExist`] if no pseudo object has that name.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Servant>, OrbError> {
        self.objects
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| OrbError::ObjectNotExist(format!("pseudo object {name}")))
    }

    /// Invoke an operation on a named pseudo object.
    ///
    /// # Errors
    ///
    /// [`OrbError::ObjectNotExist`] for unknown names, plus whatever the
    /// object's dispatch raises.
    pub fn invoke(&self, name: &str, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        self.resolve(name)?.dispatch(op, args)
    }

    /// Names of all registered pseudo objects, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.objects.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Clock;
    impl Servant for Clock {
        fn interface_id(&self) -> &str {
            "IDL:Pseudo/Clock:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "zero" => Ok(Any::ULongLong(0)),
                other => Err(OrbError::BadOperation(other.to_string())),
            }
        }
    }

    #[test]
    fn register_resolve_invoke() {
        let reg = PseudoObjectRegistry::new();
        reg.register("Clock", Arc::new(Clock));
        assert_eq!(reg.names(), vec!["Clock"]);
        assert_eq!(reg.invoke("Clock", "zero", &[]).unwrap(), Any::ULongLong(0));
        assert!(reg.resolve("Clock").is_ok());
    }

    #[test]
    fn unknown_name_is_object_not_exist() {
        let reg = PseudoObjectRegistry::new();
        assert!(matches!(reg.resolve("Ghost"), Err(OrbError::ObjectNotExist(_))));
        assert!(matches!(reg.invoke("Ghost", "x", &[]), Err(OrbError::ObjectNotExist(_))));
    }
}
