//! Deterministic socket-level fault injection — netsim's chaos
//! discipline for the *real* wire backends.
//!
//! The simulator can tear links, drop packets and skew clocks under a
//! seeded [`netsim::FaultScript`]; until now the TCP/UDS code paths had
//! no equivalent, so their failure handling was only ever exercised by
//! whatever the OS happened to do. [`FaultyTransport`] closes that gap:
//! it decorates any [`WireTransport`] and injects scripted socket-level
//! faults at the transport boundary, deterministically, from a seed —
//! so the fault-matrix conformance suite replays bit-identically under
//! `MAQS_CHAOS_SEED`.
//!
//! ```
//! use orb::wire::fault::{FaultyTransport, WireFault, WireFaultScript};
//! use orb::{NetSimTransport, WireTransport};
//! use std::sync::Arc;
//!
//! let net = netsim::Network::new(1);
//! let inner = Arc::new(NetSimTransport::new(net.attach("a")));
//! let script = WireFaultScript::seeded(7).on_send(2, WireFault::ConnReset);
//! let wire = FaultyTransport::new(inner, script);
//! assert!(wire.send(wire.node(), b"ok".to_vec()).is_ok()); // send #0
//! assert!(wire.send(wire.node(), b"ok".to_vec()).is_ok()); // send #1
//! assert!(wire.send(wire.node(), b"ok".to_vec()).is_err()); // send #2: reset
//! assert_eq!(wire.injected(), 1);
//! wire.shutdown();
//! ```

use super::{
    ConnHealth, Endpoint, WireError, WireFrame, WireObserver, WireTransport,
};
use crate::flight::{FlightEventKind, FlightRecorder};
use crate::sync::{LockRank, OrderedMutex};
use netsim::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One injectable socket-level failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The dial is refused: the send fails [`WireError::Unreachable`]
    /// without reaching the backend (a down listener, a full SYN queue).
    DialRefused,
    /// The connection resets mid-frame: the send fails [`WireError::Io`]
    /// after the frame is already partially committed — the peer may or
    /// may not have seen it (the at-most-once ambiguity window real
    /// resets have).
    ConnReset,
    /// A torn write: only the first half of the frame reaches the
    /// backend. The send *succeeds* from the caller's view — exactly how
    /// a buffered partial write looks — and the receiver gets a
    /// detectably truncated frame.
    TornFrame,
    /// The frame vanishes silently: `send` returns `Ok` and nothing is
    /// delivered (a drop after the socket buffer accepted the bytes).
    DropFrame,
    /// The frame is delayed by the given duration before the backend
    /// sees it — slow-drip bytes from a congested or shaped path.
    SlowDrip(Duration),
}

/// When a fault fires, measured in sends through this transport
/// (0-indexed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Exactly send number `n`.
    OnSend(u64),
    /// Every `k`-th send (`n % k == k - 1`, so `every(1, …)` is every
    /// send and `every(3, …)` fires on sends 2, 5, 8…).
    EverySend(u64),
    /// Each send independently with probability `permille`/1000, drawn
    /// from the seeded deterministic stream.
    WithProbability(u32),
}

/// A deterministic schedule of [`WireFault`]s, the socket analogue of
/// netsim's `FaultScript`. Rules are checked in the order added; the
/// first match wins for a given send.
#[derive(Debug, Clone, Default)]
pub struct WireFaultScript {
    rules: Vec<(Trigger, WireFault)>,
    seed: u64,
}

impl WireFaultScript {
    /// An empty script (no faults) with seed 0.
    pub fn new() -> WireFaultScript {
        WireFaultScript::default()
    }

    /// An empty script whose probabilistic rules draw from `seed`
    /// (tests take this from `MAQS_CHAOS_SEED`).
    pub fn seeded(seed: u64) -> WireFaultScript {
        WireFaultScript { rules: Vec::new(), seed }
    }

    /// Inject `fault` on exactly the `n`-th send (0-indexed).
    #[must_use]
    pub fn on_send(mut self, n: u64, fault: WireFault) -> WireFaultScript {
        self.rules.push((Trigger::OnSend(n), fault));
        self
    }

    /// Inject `fault` on every `k`-th send (`k >= 1`).
    #[must_use]
    pub fn every(mut self, k: u64, fault: WireFault) -> WireFaultScript {
        self.rules.push((Trigger::EverySend(k.max(1)), fault));
        self
    }

    /// Inject `fault` on each send independently with probability
    /// `permille`/1000, deterministically from the seed.
    #[must_use]
    pub fn with_probability(mut self, permille: u32, fault: WireFault) -> WireFaultScript {
        self.rules.push((Trigger::WithProbability(permille.min(1000)), fault));
        self
    }

    /// Human-readable summary (`seed=7: on_send(2)=ConnReset, …`).
    pub fn describe(&self) -> String {
        let mut s = format!("seed={}:", self.seed);
        if self.rules.is_empty() {
            s.push_str(" (no faults)");
            return s;
        }
        for (i, (trigger, fault)) in self.rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match trigger {
                Trigger::OnSend(n) => s.push_str(&format!(" on_send({n})={fault:?}")),
                Trigger::EverySend(k) => s.push_str(&format!(" every({k})={fault:?}")),
                Trigger::WithProbability(p) => {
                    s.push_str(&format!(" p({p}/1000)={fault:?}"))
                }
            }
        }
        s
    }
}

/// A [`WireTransport`] decorator that injects scripted, seeded faults
/// into the send path and can stall the receive path on demand; see the
/// [module docs](self). Wraps *any* backend — the same script runs
/// against netsim, TCP and UDS in the conformance fault matrix.
pub struct FaultyTransport {
    inner: Arc<dyn WireTransport>,
    script: WireFaultScript,
    /// Sends seen so far (the trigger clock).
    sends: AtomicU64,
    /// Deterministic xorshift state for probabilistic rules.
    rng: AtomicU64,
    /// Faults actually injected.
    injected: AtomicU64,
    /// While set, delivered frames are parked in `held` instead of
    /// being returned from `recv` — a reader that accepts but never
    /// drains, from the peer's point of view.
    stalled: AtomicBool,
    held: OrderedMutex<VecDeque<WireFrame>>,
    flight: OnceLock<FlightRecorder>,
}

impl FaultyTransport {
    /// Decorate `inner` with `script`.
    pub fn new(inner: Arc<dyn WireTransport>, script: WireFaultScript) -> FaultyTransport {
        // Xorshift needs a nonzero state; fold the seed into a fixed
        // odd constant so seed 0 still works.
        let rng = script.seed ^ 0x9E37_79B9_7F4A_7C15;
        FaultyTransport {
            inner,
            script,
            sends: AtomicU64::new(0),
            rng: AtomicU64::new(if rng == 0 { 1 } else { rng }),
            injected: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            held: OrderedMutex::new(LockRank::WireFaultState, VecDeque::new()),
            flight: OnceLock::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &Arc<dyn WireTransport> {
        &self.inner
    }

    /// How many faults the script has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Stall or un-stall the receive path. While stalled, this
    /// transport keeps *accepting* frames (the sender sees no error —
    /// its outbox and socket buffers absorb the flow until backpressure
    /// kicks in) but `recv` parks them. Un-stalling releases everything
    /// parked, in order.
    pub fn set_stalled(&self, stalled: bool) {
        let was = self.stalled.swap(stalled, Ordering::SeqCst);
        if was && !stalled {
            // Wake a receiver blocked inside inner.recv() so it comes
            // back around and drains the held queue.
            self.inner.poke();
        }
    }

    /// Next value of the deterministic per-transport random stream.
    fn next_rand(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x
    }

    /// Which fault (if any) fires for send number `n`.
    fn fault_for(&self, n: u64) -> Option<WireFault> {
        for (trigger, fault) in &self.script.rules {
            let hit = match trigger {
                Trigger::OnSend(at) => n == *at,
                Trigger::EverySend(k) => n % k == k - 1,
                Trigger::WithProbability(permille) => {
                    (self.next_rand() % 1000) < u64::from(*permille)
                }
            };
            if hit {
                return Some(*fault);
            }
        }
        None
    }

    fn note(&self, fault: WireFault, dst: NodeId, outcome: &str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(flight) = self.flight.get() {
            flight.record_detail(
                FlightEventKind::FaultTick,
                "wire.fault",
                None,
                format!("injected {fault:?} on send to node {}: {outcome}", dst.0),
            );
        }
    }
}

impl WireTransport for FaultyTransport {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn local_endpoint(&self) -> Endpoint {
        self.inner.local_endpoint()
    }

    fn register_peer(&self, node: NodeId, endpoints: &[Endpoint]) -> Result<(), WireError> {
        self.inner.register_peer(node, endpoints)
    }

    fn send(&self, dst: NodeId, frame: Vec<u8>) -> Result<(), WireError> {
        let n = self.sends.fetch_add(1, Ordering::SeqCst);
        match self.fault_for(n) {
            None => self.inner.send(dst, frame),
            Some(WireFault::DialRefused) => {
                self.note(WireFault::DialRefused, dst, "dial refused");
                Err(WireError::Unreachable(format!(
                    "injected: dial to node {} refused",
                    dst.0
                )))
            }
            Some(WireFault::ConnReset) => {
                self.note(WireFault::ConnReset, dst, "connection reset mid-frame");
                Err(WireError::Io(format!(
                    "injected: connection to node {} reset mid-frame",
                    dst.0
                )))
            }
            Some(WireFault::TornFrame) => {
                let keep = frame.len() / 2;
                self.note(WireFault::TornFrame, dst, "frame torn in half");
                self.inner.send(dst, frame[..keep].to_vec())
            }
            Some(WireFault::DropFrame) => {
                self.note(WireFault::DropFrame, dst, "frame dropped silently");
                Ok(())
            }
            Some(WireFault::SlowDrip(delay)) => {
                self.note(WireFault::SlowDrip(delay), dst, "bytes slow-dripped");
                std::thread::sleep(delay);
                self.inner.send(dst, frame)
            }
        }
    }

    fn recv(&self) -> Result<WireFrame, WireError> {
        loop {
            if !self.stalled.load(Ordering::SeqCst) {
                if let Some(frame) = self.held.lock().pop_front() {
                    return Ok(frame);
                }
            }
            let frame = self.inner.recv()?;
            if self.stalled.load(Ordering::SeqCst) && !frame.payload.is_empty() {
                // A stalled reader: accept the frame, never deliver it
                // (until un-stalled). Keep blocking for more.
                self.held.lock().push_back(frame);
                continue;
            }
            return Ok(frame);
        }
    }

    fn try_recv(&self) -> Result<Option<WireFrame>, WireError> {
        if !self.stalled.load(Ordering::SeqCst) {
            if let Some(frame) = self.held.lock().pop_front() {
                return Ok(Some(frame));
            }
        }
        loop {
            let frame = match self.inner.try_recv()? {
                Some(f) => f,
                None => return Ok(None),
            };
            if self.stalled.load(Ordering::SeqCst) && !frame.payload.is_empty() {
                // Same stalled-reader semantics as `recv`: accept but
                // hold the frame, then keep draining.
                self.held.lock().push_back(frame);
                continue;
            }
            return Ok(Some(frame));
        }
    }

    fn poke(&self) {
        self.inner.poke();
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn attach_flight(&self, flight: &FlightRecorder) {
        let _ = self.flight.set(flight.clone());
        self.inner.attach_flight(flight);
    }

    fn peer_health(&self) -> Vec<(NodeId, ConnHealth)> {
        self.inner.peer_health()
    }

    fn add_wire_observer(&self, obs: WireObserver) {
        self.inner.add_wire_observer(obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::NetSimTransport;

    fn pair() -> (Arc<NetSimTransport>, Arc<NetSimTransport>) {
        let net = netsim::Network::new(1);
        (
            Arc::new(NetSimTransport::new(net.attach("a"))),
            Arc::new(NetSimTransport::new(net.attach("b"))),
        )
    }

    #[test]
    fn on_send_trigger_is_exact() {
        let (a, b) = pair();
        let dst = b.node();
        let faulty = FaultyTransport::new(a, WireFaultScript::new().on_send(1, WireFault::ConnReset));
        assert!(faulty.send(dst, vec![0]).is_ok());
        assert!(matches!(faulty.send(dst, vec![1]), Err(WireError::Io(_))));
        assert!(faulty.send(dst, vec![2]).is_ok());
        assert_eq!(faulty.injected(), 1);
        faulty.shutdown();
        b.shutdown();
    }

    #[test]
    fn every_trigger_cadence() {
        let (a, b) = pair();
        let dst = b.node();
        let faulty = FaultyTransport::new(a, WireFaultScript::new().every(3, WireFault::DropFrame));
        let mut dropped = 0;
        for i in 0..9 {
            faulty.send(dst, vec![i]).unwrap(); // DropFrame still returns Ok
        }
        // Sends 2, 5, 8 were dropped.
        for _ in 0..6 {
            let f = b.recv().unwrap();
            assert!(![2u8, 5, 8].contains(&f.payload[0]), "dropped frame was delivered");
            dropped += 1;
        }
        assert_eq!(dropped, 6);
        assert_eq!(faulty.injected(), 3);
        faulty.shutdown();
        b.shutdown();
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let (a, b) = pair();
            let dst = b.node();
            let faulty = FaultyTransport::new(
                a,
                WireFaultScript::seeded(seed).with_probability(500, WireFault::ConnReset),
            );
            let v = (0..32).map(|_| faulty.send(dst, vec![0]).is_err()).collect();
            faulty.shutdown();
            b.shutdown();
            v
        };
        assert_eq!(outcomes(7), outcomes(7), "same seed must replay identically");
        assert_ne!(outcomes(7), outcomes(8), "different seeds should diverge");
    }

    #[test]
    fn stalled_reader_parks_then_releases_in_order() {
        let (a, b) = pair();
        let src = a.node();
        let dst = b.node();
        let faulty = Arc::new(FaultyTransport::new(b, WireFaultScript::new()));
        faulty.set_stalled(true);
        a.send(dst, vec![1]).unwrap();
        a.send(dst, vec![2]).unwrap();
        // Give the frames time to land, then un-stall from another
        // thread while recv blocks.
        let f2 = Arc::clone(&faulty);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            f2.set_stalled(false);
        });
        // Un-stalling pokes the inner transport, so empty wakeup frames
        // may interleave; skip them like the ORB receive loop does.
        let mut recv_frame = || loop {
            let f = faulty.recv().unwrap();
            if !f.payload.is_empty() {
                return f;
            }
        };
        let first = recv_frame();
        assert_eq!(first.src, src);
        assert_eq!(&first.payload[..], &[1]);
        assert_eq!(&recv_frame().payload[..], &[2]);
        waker.join().unwrap();
        faulty.shutdown();
        a.shutdown();
    }

    #[test]
    fn describe_names_rules() {
        let s = WireFaultScript::seeded(7)
            .on_send(2, WireFault::ConnReset)
            .every(5, WireFault::DropFrame)
            .with_probability(100, WireFault::DialRefused);
        let d = s.describe();
        assert!(d.contains("seed=7"));
        assert!(d.contains("on_send(2)=ConnReset"));
        assert!(d.contains("every(5)=DropFrame"));
        assert!(d.contains("p(100/1000)=DialRefused"));
        assert!(WireFaultScript::new().describe().contains("no faults"));
    }
}
