//! `qidlc` — compile a QIDL spec to its Rust language mapping.
//!
//! ```text
//! qidlc <spec.qidl>
//! ```
//!
//! The generated code is written to stdout. Exit codes: `0` success,
//! `1` the spec does not compile, `2` usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: qidlc <spec.qidl>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("qidlc: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    match qidl::compile(&src) {
        Ok(spec) => {
            print!("{}", qidl::codegen::generate(&spec));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("qidlc: {path}: {e}");
            ExitCode::from(1)
        }
    }
}
