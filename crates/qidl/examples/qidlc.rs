fn main() {
    let src = std::fs::read_to_string(std::env::args().nth(1).unwrap()).unwrap();
    let spec = qidl::compile(&src).unwrap();
    print!("{}", qidl::codegen::generate(&spec));
}
