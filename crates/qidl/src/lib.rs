//! QIDL — the Quality of Service Interface Definition Language.
//!
//! The paper's §3.2 extends CORBA IDL with QoS specifications: *QoS
//! characteristics* are declared as first-class specification entities
//! (parameters plus the operations of the QoS responsibility), and
//! interfaces are *assigned* characteristics — at interface granularity
//! only, finer granularity being explicitly forbidden ("QoS specifications
//! in QIDL can be assigned to interfaces only"). The QIDL compiler then
//! acts as an **aspect weaver** (§3.3): its language mapping generates the
//! client-side mediators and server-side QoS skeletons that keep QoS and
//! application concerns apart.
//!
//! This crate is the full language pipeline:
//!
//! * [`lexer`] — tokenizer with comments, positions and error reporting;
//! * [`ast`] — the abstract syntax tree;
//! * [`parser`] — recursive-descent parser;
//! * [`pretty`] — pretty-printer (AST → canonical QIDL source);
//! * [`sema`] — semantic analysis (name resolution, duplicate and cycle
//!   checks, QoS-assignment validation);
//! * [`repo`] — the interface repository: runtime-queryable metadata, the
//!   reflective half of the pipeline;
//! * [`codegen`] — the Rust language mapping: emits stubs with mediator
//!   delegation, server skeletons with prolog/epilog weaving, and QoS
//!   implementation skeletons, reproducing Fig. 2.
//!
//! # Grammar (EBNF)
//!
//! ```text
//! spec        := definition* EOF
//! definition  := struct | exception | qos | interface
//! struct      := "struct" IDENT "{" (type IDENT ";")* "}" ";"
//! exception   := "exception" IDENT "{" (type IDENT ";")* "}" ";"
//! qos         := "qos" IDENT ("category" IDENT)? "{" qos_item* "}" ";"
//! qos_item    := "param" type IDENT ("=" literal)? ";"
//!              | "management" "{" operation* "}" ";"
//!              | "peer" "{" operation* "}" ";"
//!              | "integration" "{" operation* "}" ";"
//! interface   := "interface" IDENT (":" IDENT ("," IDENT)*)?
//!                ("with" "qos" IDENT ("," IDENT)*)?
//!                "{" (operation | attribute)* "}" ";"
//! operation   := "oneway"? type IDENT "(" params? ")"
//!                ("raises" "(" IDENT ("," IDENT)* ")")? ";"
//! attribute   := "readonly"? "attribute" type IDENT ";"
//! params      := param ("," param)*
//! param       := ("in" | "out" | "inout")? type IDENT
//! type        := "void" | "boolean" | "octet" | "long" | "unsigned" "long"
//!              | "long" "long" | "unsigned" "long" "long" | "double"
//!              | "string" | "any" | "sequence" "<" type ">" | IDENT
//! literal     := INT | FLOAT | STRING | "TRUE" | "FALSE"
//! ```
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     qos Compression category performance {
//!         param long level = 6;
//!         management {
//!             void set_level(in long level);
//!         };
//!     };
//!     interface FileStore with qos Compression {
//!         void put(in string name, in sequence<octet> data);
//!         sequence<octet> get(in string name);
//!     };
//! "#;
//! let spec = qidl::compile(src).unwrap();
//! assert_eq!(spec.interfaces().count(), 1);
//! let rust = qidl::codegen::generate(&spec);
//! assert!(rust.contains("pub struct FileStoreStub"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod repo;
pub mod sema;

pub use ast::Spec;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::ParseError;
pub use repo::InterfaceRepository;
pub use sema::SemaError;

use std::fmt;

/// Any error produced by the QIDL pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QidlError {
    /// Tokenization failed.
    Lex(LexError),
    /// Parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Sema(SemaError),
}

impl fmt::Display for QidlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QidlError::Lex(e) => write!(f, "lex error: {e}"),
            QidlError::Parse(e) => write!(f, "parse error: {e}"),
            QidlError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for QidlError {}

impl From<LexError> for QidlError {
    fn from(e: LexError) -> QidlError {
        QidlError::Lex(e)
    }
}
impl From<ParseError> for QidlError {
    fn from(e: ParseError) -> QidlError {
        QidlError::Parse(e)
    }
}
impl From<SemaError> for QidlError {
    fn from(e: SemaError) -> QidlError {
        QidlError::Sema(e)
    }
}

/// Compile QIDL source into a semantically checked [`Spec`].
///
/// This is the front half of the QIDL compiler: lex, parse, analyse.
/// Feed the result to [`codegen::generate`] for the Rust language
/// mapping, or to [`InterfaceRepository::load`] for runtime reflection.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error found.
pub fn compile(source: &str) -> Result<Spec, QidlError> {
    let tokens = lexer::lex(source)?;
    let spec = parser::parse(&tokens)?;
    sema::check(&spec)?;
    Ok(spec)
}

/// Run the full front-end, accumulating *every* finding as a
/// [`Diagnostic`] instead of stopping at the first error.
///
/// Lexical (`QL001`) and syntactic (`QL002`) failures are fatal — no
/// [`Spec`] can be produced — so the spec is `None` and exactly one
/// diagnostic is returned. Once a spec parses, [`sema::analyze`] reports
/// all semantic violations at once; the spec is still returned so later
/// passes (e.g. `qoslint`) can keep analysing it.
pub fn analyze(source: &str) -> (Option<Spec>, Diagnostics) {
    let tokens = match lexer::lex(source) {
        Ok(t) => t,
        Err(e) => {
            let d = Diagnostic::error(diag::codes::LEX, e.message.clone())
                .with_span(lexer::Span::point(e.pos));
            return (None, std::iter::once(d).collect());
        }
    };
    let spec = match parser::parse(&tokens) {
        Ok(s) => s,
        Err(e) => {
            let d = Diagnostic::error(diag::codes::PARSE, e.message.clone()).with_span(e.span);
            return (None, std::iter::once(d).collect());
        }
    };
    let diags = sema::analyze(&spec);
    (Some(spec), diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_accepts_valid_source() {
        let spec = compile("interface Empty {};").unwrap();
        assert_eq!(spec.interfaces().count(), 1);
    }

    #[test]
    fn compile_reports_stage_errors() {
        assert!(matches!(compile("interface \u{1}"), Err(QidlError::Lex(_))));
        assert!(matches!(compile("interface {"), Err(QidlError::Parse(_))));
        assert!(matches!(compile("interface I with qos Missing {};"), Err(QidlError::Sema(_))));
    }

    #[test]
    fn error_display_mentions_stage() {
        let e = compile("interface {").unwrap_err();
        assert!(e.to_string().starts_with("parse error"));
    }

    #[test]
    fn analyze_maps_stage_failures_to_codes() {
        let (spec, diags) = analyze("interface \u{1}");
        assert!(spec.is_none());
        assert_eq!(diags.iter().next().unwrap().code, diag::codes::LEX);

        let (spec, diags) = analyze("interface {");
        assert!(spec.is_none());
        assert_eq!(diags.iter().next().unwrap().code, diag::codes::PARSE);

        let (spec, diags) = analyze("interface I : Ghost, Phantom {};");
        assert!(spec.is_some(), "semantic errors still yield a spec");
        assert_eq!(diags.len(), 2);

        let (spec, diags) = analyze("interface I {};");
        assert!(spec.is_some());
        assert!(diags.is_empty());
    }
}
