//! Semantic analysis for QIDL specifications.
//!
//! Enforces the language rules the parser cannot: name uniqueness,
//! resolution of named types / base interfaces / assigned QoS
//! characteristics, inheritance acyclicity, default-value typing,
//! `oneway` constraints, and the reservation of `_`-prefixed operation
//! names (used by the ORB built-ins and the weaving runtime).
//!
//! [`analyze`] accumulates *every* violation as a
//! [`Diagnostic`](crate::diag::Diagnostic) with a source span;
//! [`check`]/[`check_with`] are thin wrappers that keep the historical
//! first-error-only [`Result`] API.

use crate::ast::*;
use crate::diag::{codes, Code, Diagnostic, Diagnostics};
use crate::lexer::Span;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A semantic error (the first one found, see [`check`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description of the problem.
    pub message: String,
    /// Where it occurred, when known.
    pub span: Option<Span>,
}

impl SemaError {
    /// A spanless semantic error.
    pub fn new(message: impl Into<String>) -> SemaError {
        SemaError { message: message.into(), span: None }
    }
}

impl From<&Diagnostic> for SemaError {
    fn from(d: &Diagnostic) -> SemaError {
        SemaError { message: d.message.clone(), span: d.span }
    }
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SemaError {}

/// Names visible from outside the spec being checked (e.g. definitions
/// already loaded into an [`crate::InterfaceRepository`]).
#[derive(Debug, Clone, Default)]
pub struct Externals {
    /// Struct names resolvable externally.
    pub structs: HashSet<String>,
    /// Exception names resolvable externally.
    pub exceptions: HashSet<String>,
    /// QoS characteristic names resolvable externally.
    pub qos: HashSet<String>,
    /// Interface names resolvable externally.
    pub interfaces: HashSet<String>,
}

/// Check a parsed [`Spec`] as a self-contained compilation unit.
///
/// # Errors
///
/// Returns the first violation found. Use [`analyze`] to get them all.
pub fn check(spec: &Spec) -> Result<(), SemaError> {
    check_with(spec, &Externals::default())
}

/// Check a parsed [`Spec`] against additional externally known names.
///
/// # Errors
///
/// Returns the first violation found. Use [`analyze_with`] to get them
/// all.
pub fn check_with(spec: &Spec, env: &Externals) -> Result<(), SemaError> {
    match analyze_with(spec, env).first_error() {
        Some(d) => Err(SemaError::from(d)),
        None => Ok(()),
    }
}

/// Analyze a self-contained [`Spec`], accumulating every violation.
pub fn analyze(spec: &Spec) -> Diagnostics {
    analyze_with(spec, &Externals::default())
}

/// Analyze a [`Spec`] against externally known names, accumulating
/// every violation instead of stopping at the first.
pub fn analyze_with(spec: &Spec, env: &Externals) -> Diagnostics {
    let mut acc = Diagnostics::new();

    let mut names: HashSet<&str> = HashSet::new();
    for def in &spec.definitions {
        if !names.insert(def.name()) {
            acc.push(err(
                codes::DUPLICATE,
                format!("duplicate definition `{}`", def.name()),
                def.span(),
            ));
        }
    }

    let mut structs: HashSet<&str> = spec.structs().map(|s| s.name.as_str()).collect();
    structs.extend(env.structs.iter().map(String::as_str));
    let mut exceptions: HashSet<&str> = spec.exceptions().map(|e| e.name.as_str()).collect();
    exceptions.extend(env.exceptions.iter().map(String::as_str));
    let mut qos: HashSet<&str> = spec.qos_characteristics().map(|q| q.name.as_str()).collect();
    qos.extend(env.qos.iter().map(String::as_str));
    let mut interfaces: HashMap<&str, Option<&InterfaceDef>> =
        spec.interfaces().map(|i| (i.name.as_str(), Some(i))).collect();
    for ext in &env.interfaces {
        interfaces.entry(ext.as_str()).or_insert(None);
    }

    for s in spec.structs() {
        check_fields(&mut acc, &s.fields, &structs, "struct", &s.name, s.span);
    }

    for e in spec.exceptions() {
        check_fields(&mut acc, &e.fields, &structs, "exception", &e.name, e.span);
    }

    for q in spec.qos_characteristics() {
        let mut params = HashSet::new();
        for p in &q.params {
            if !params.insert(p.name.as_str()) {
                acc.push(err(
                    codes::DUPLICATE,
                    format!("duplicate param `{}` in qos `{}`", p.name, q.name),
                    p.span,
                ));
            }
            check_type(
                &mut acc,
                &p.ty,
                &structs,
                &format!("param `{}.{}`", q.name, p.name),
                p.span,
            );
            if let Some(default) = &p.default {
                check_default(&mut acc, &p.ty, default, &q.name, p);
            }
        }
        check_operations(
            &mut acc,
            q.all_operations(),
            &structs,
            &exceptions,
            &format!("qos `{}`", q.name),
        );
    }

    for i in spec.interfaces() {
        for (idx, base) in i.inherits.iter().enumerate() {
            if !interfaces.contains_key(base.as_str()) {
                acc.push(err(
                    codes::UNRESOLVED,
                    format!("interface `{}` inherits unknown interface `{base}`", i.name),
                    i.inherit_span(idx),
                ));
            }
        }
        let mut qos_seen = HashSet::new();
        for (idx, tag) in i.qos.iter().enumerate() {
            if !qos.contains(tag.as_str()) {
                acc.push(err(
                    codes::UNRESOLVED,
                    format!("interface `{}` assigned unknown qos characteristic `{tag}`", i.name),
                    i.qos_span(idx),
                ));
            }
            if !qos_seen.insert(tag.as_str()) {
                acc.push(err(
                    codes::DUPLICATE,
                    format!("interface `{}` assigns qos `{tag}` twice", i.name),
                    i.qos_span(idx),
                ));
            }
        }
        check_operations(
            &mut acc,
            i.operations.iter(),
            &structs,
            &exceptions,
            &format!("interface `{}`", i.name),
        );
        let mut members: HashSet<&str> = i.operations.iter().map(|o| o.name.as_str()).collect();
        for a in &i.attributes {
            if !members.insert(a.name.as_str()) {
                acc.push(err(
                    codes::DUPLICATE,
                    format!("duplicate member `{}` in interface `{}`", a.name, i.name),
                    a.span,
                ));
            }
            check_type(
                &mut acc,
                &a.ty,
                &structs,
                &format!("attribute `{}.{}`", i.name, a.name),
                a.span,
            );
            if a.ty == Type::Void {
                acc.push(err(
                    codes::VOID,
                    format!("attribute `{}.{}` cannot be void", i.name, a.name),
                    a.span,
                ));
            }
        }
    }

    check_inheritance_cycles(&mut acc, &interfaces);
    acc
}

fn err(code: Code, message: String, span: Span) -> Diagnostic {
    let d = Diagnostic::error(code, message);
    if span.is_dummy() {
        d
    } else {
        d.with_span(span)
    }
}

fn check_fields(
    acc: &mut Diagnostics,
    fields: &[(String, Type)],
    structs: &HashSet<&str>,
    kind: &str,
    owner: &str,
    span: Span,
) {
    let mut seen = HashSet::new();
    for (fname, fty) in fields {
        if !seen.insert(fname.as_str()) {
            acc.push(err(
                codes::DUPLICATE,
                format!("duplicate field `{fname}` in {kind} `{owner}`"),
                span,
            ));
        }
        check_type(acc, fty, structs, &format!("field `{owner}.{fname}`"), span);
    }
}

fn check_operations<'a, I: Iterator<Item = &'a Operation>>(
    acc: &mut Diagnostics,
    ops: I,
    structs: &HashSet<&str>,
    exceptions: &HashSet<&str>,
    ctx: &str,
) {
    let mut names = HashSet::new();
    for op in ops {
        if !names.insert(op.name.as_str()) {
            acc.push(err(
                codes::DUPLICATE,
                format!("duplicate operation `{}` in {ctx}", op.name),
                op.span,
            ));
        }
        if op.name.starts_with('_') {
            acc.push(err(
                codes::RESERVED,
                format!("operation name `{}` in {ctx} is reserved (leading underscore)", op.name),
                op.span,
            ));
        }
        if op.ret != Type::Void {
            check_type(
                acc,
                &op.ret,
                structs,
                &format!("return of `{}` in {ctx}", op.name),
                op.span,
            );
        }
        if op.oneway && op.ret != Type::Void {
            acc.push(err(
                codes::ONEWAY,
                format!("oneway operation `{}` in {ctx} must return void", op.name),
                op.span,
            ));
        }
        if op.oneway && !op.raises.is_empty() {
            acc.push(err(
                codes::ONEWAY,
                format!("oneway operation `{}` in {ctx} may not raise exceptions", op.name),
                op.span,
            ));
        }
        for raised in &op.raises {
            if !exceptions.contains(raised.as_str()) {
                acc.push(err(
                    codes::UNRESOLVED,
                    format!(
                        "operation `{}` in {ctx} raises undeclared exception `{raised}`",
                        op.name
                    ),
                    op.span,
                ));
            }
        }
        let mut params = HashSet::new();
        for p in &op.params {
            if !params.insert(p.name.as_str()) {
                acc.push(err(
                    codes::DUPLICATE,
                    format!("duplicate parameter `{}` in operation `{}` of {ctx}", p.name, op.name),
                    p.span,
                ));
            }
            if p.ty == Type::Void {
                acc.push(err(
                    codes::VOID,
                    format!("parameter `{}` of `{}` in {ctx} cannot be void", p.name, op.name),
                    p.span,
                ));
            }
            check_type(
                acc,
                &p.ty,
                structs,
                &format!("parameter `{}` of `{}` in {ctx}", p.name, op.name),
                p.span,
            );
            if op.oneway && p.direction != Direction::In {
                acc.push(err(
                    codes::ONEWAY,
                    format!(
                        "oneway operation `{}` in {ctx} may only have `in` parameters",
                        op.name
                    ),
                    p.span,
                ));
            }
        }
    }
}

fn check_type(acc: &mut Diagnostics, ty: &Type, structs: &HashSet<&str>, ctx: &str, span: Span) {
    match ty {
        Type::Named(n) if !structs.contains(n.as_str()) => {
            acc.push(err(codes::UNRESOLVED, format!("unknown type `{n}` in {ctx}"), span));
        }
        Type::Sequence(elem) => {
            if **elem == Type::Void {
                acc.push(err(codes::VOID, format!("sequence of void in {ctx}"), span));
                return;
            }
            check_type(acc, elem, structs, ctx, span);
        }
        _ => {}
    }
}

fn check_default(acc: &mut Diagnostics, ty: &Type, lit: &Literal, qos: &str, p: &QosParam) {
    let ok = matches!(
        (ty, lit),
        (
            Type::Long | Type::ULong | Type::LongLong | Type::ULongLong | Type::Octet,
            Literal::Int(_)
        ) | (Type::Double, Literal::Float(_))
            | (Type::Double, Literal::Int(_))
            | (Type::Str, Literal::Str(_))
            | (Type::Boolean, Literal::Bool(_))
    );
    if ok {
        // Range checks for the unsigned/narrow integer types.
        if let Literal::Int(v) = lit {
            let in_range = match ty {
                Type::Octet => (0..=255).contains(v),
                Type::ULong => *v >= 0 && *v <= u32::MAX as i64,
                Type::ULongLong => *v >= 0,
                Type::Long => i32::try_from(*v).is_ok(),
                _ => true,
            };
            if !in_range {
                acc.push(err(
                    codes::BAD_DEFAULT,
                    format!("default {v} out of range for `{ty}` param `{qos}.{}`", p.name),
                    p.span,
                ));
            }
        }
    } else {
        acc.push(err(
            codes::BAD_DEFAULT,
            format!("default value {lit} does not match type `{ty}` of param `{qos}.{}`", p.name),
            p.span,
        ));
    }
}

fn check_inheritance_cycles(
    acc: &mut Diagnostics,
    interfaces: &HashMap<&str, Option<&InterfaceDef>>,
) {
    // DFS with colouring. External interfaces (`None`) were validated by
    // their own load and cannot participate in a cycle with new names.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<&str, Colour> =
        interfaces.keys().map(|k| (*k, Colour::White)).collect();

    fn visit<'a>(
        acc: &mut Diagnostics,
        name: &'a str,
        interfaces: &HashMap<&'a str, Option<&'a InterfaceDef>>,
        colour: &mut HashMap<&'a str, Colour>,
    ) {
        match colour.get(name) {
            Some(Colour::Black) | None => return,
            Some(Colour::Grey) => {
                let span =
                    interfaces.get(name).and_then(|d| *d).map(|d| d.span).unwrap_or_default();
                acc.push(err(codes::CYCLE, format!("inheritance cycle through `{name}`"), span));
                return;
            }
            Some(Colour::White) => {}
        }
        colour.insert(name, Colour::Grey);
        if let Some(Some(def)) = interfaces.get(name) {
            for base in &def.inherits {
                visit(acc, base, interfaces, colour);
            }
        }
        colour.insert(name, Colour::Black);
    }

    // Sorted for deterministic diagnostic order.
    let mut names: Vec<&str> = interfaces.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        visit(acc, name, interfaces, &mut colour);
    }
}

/// Collect an interface's full operation set including inherited ones,
/// base-first. Assumes the spec passed [`check`].
pub fn flattened_operations<'a>(spec: &'a Spec, iface: &'a InterfaceDef) -> Vec<&'a Operation> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_ops(spec, iface, &mut seen, &mut out);
    out
}

fn collect_ops<'a>(
    spec: &'a Spec,
    iface: &'a InterfaceDef,
    seen: &mut HashSet<&'a str>,
    out: &mut Vec<&'a Operation>,
) {
    for base in &iface.inherits {
        if let Some(b) = spec.interface(base) {
            collect_ops(spec, b, seen, out);
        }
    }
    for op in &iface.operations {
        if seen.insert(op.name.as_str()) {
            out.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    fn analyze_src(src: &str) -> Diagnostics {
        analyze(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn valid_spec_passes() {
        check_src(
            r#"
            struct P { double x; };
            qos Q category perf { param long level = 3; management { void go(); }; };
            interface A { P get(in P p); };
            interface B : A with qos Q { void put(in sequence<P> ps); };
            "#,
        )
        .unwrap();
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let e = check_src("interface I {}; interface I {};").unwrap_err();
        assert!(e.message.contains("duplicate definition"));
        assert!(check_src("struct I { double x; }; interface I {};").is_err());
    }

    #[test]
    fn unknown_references_rejected() {
        assert!(check_src("interface I : Ghost {};").unwrap_err().message.contains("unknown"));
        assert!(check_src("interface I with qos Ghost {};").is_err());
        assert!(check_src("interface I { void f(in Ghost g); };").is_err());
        assert!(check_src("interface I { Ghost f(); };").is_err());
        assert!(check_src("struct S { Ghost g; };").is_err());
        assert!(check_src("qos Q { param Ghost p; };").is_err());
    }

    #[test]
    fn inheritance_cycles_rejected() {
        let e = check_src("interface A : B {}; interface B : A {};").unwrap_err();
        assert!(e.message.contains("cycle"));
        assert!(check_src("interface A : A {};").is_err());
        // Diamonds are fine.
        check_src("interface R {}; interface A : R {}; interface B : R {}; interface D : A, B {};")
            .unwrap();
    }

    #[test]
    fn duplicate_members_rejected() {
        assert!(check_src("interface I { void f(); void f(); };").is_err());
        assert!(check_src("interface I { void f(); attribute long f; };").is_err());
        assert!(check_src("interface I { void f(in long a, in long a); };").is_err());
        assert!(check_src("struct S { double a; double a; };").is_err());
        assert!(check_src("qos Q { param long a; param long a; };").is_err());
        assert!(check_src("qos Q { management { void f(); void f(); }; };").is_err());
    }

    #[test]
    fn reserved_operation_names_rejected() {
        let e = check_src("interface I { void _get_state(); };").unwrap_err();
        assert!(e.message.contains("reserved"));
    }

    #[test]
    fn default_typing() {
        check_src("qos Q { param double d = 1; };").unwrap(); // int widens
        assert!(check_src("qos Q { param long a = \"x\"; };").is_err());
        assert!(check_src("qos Q { param boolean b = 1; };").is_err());
        assert!(check_src("qos Q { param octet o = 300; };").is_err());
        assert!(check_src("qos Q { param unsigned long u = -1; };").is_err());
        assert!(check_src("qos Q { param long n = 3000000000; };").is_err());
    }

    #[test]
    fn misc_type_rules() {
        assert!(check_src("interface I { void f(in void v); };").is_err());
        assert!(check_src("interface I { attribute void a; };").is_err());
        assert!(check_src("interface I { void f(in sequence<void> s); };").is_err());
        assert!(check_src("interface I { oneway void f(out long x); };").is_err());
    }

    #[test]
    fn oneway_constraints_are_enforced_here() {
        let e = check_src("interface I { oneway long f(); };").unwrap_err();
        assert!(e.message.contains("must return void"));
        let e =
            check_src("exception E {}; interface I { oneway void f() raises (E); };").unwrap_err();
        assert!(e.message.contains("may not raise"));
    }

    #[test]
    fn raises_must_reference_declared_exceptions() {
        check_src("exception E { string why; }; interface I { void f() raises (E); };").unwrap();
        let e = check_src("interface I { void f() raises (Ghost); };").unwrap_err();
        assert!(e.message.contains("undeclared exception"));
        // Exceptions share the top-level namespace.
        assert!(check_src("exception X {}; struct X { double a; };").is_err());
        // Exception field rules match struct field rules.
        assert!(check_src("exception E { long a; long a; };").is_err());
        assert!(check_src("exception E { Ghost g; };").is_err());
    }

    #[test]
    fn duplicate_qos_assignment_rejected() {
        assert!(check_src("qos Q {}; interface I with qos Q, Q {};").is_err());
    }

    #[test]
    fn analyze_accumulates_every_violation() {
        let diags = analyze_src(
            r#"
            struct S { Ghost g; Phantom p; };
            qos Q { param octet o = 300; param boolean b = 1; };
            interface I {
                void _hidden();
                oneway long bad(out long x) raises (Nope);
            };
            "#,
        );
        // Unknown Ghost + unknown Phantom + two bad defaults + reserved
        // name + oneway-return + oneway-raises + undeclared exception +
        // oneway-out-param = 9 distinct findings, all reported at once.
        assert_eq!(diags.len(), 9, "{:#?}", diags.iter().collect::<Vec<_>>());
        assert!(diags.has_errors());
        assert!(diags.iter().all(|d| d.span.is_some()));
        // First error wins for the legacy API.
        let first = check_src(
            r#"
            struct S { Ghost g; Phantom p; };
            qos Q { param octet o = 300; };
            "#,
        )
        .unwrap_err();
        assert!(first.message.contains("Ghost"));
        assert!(first.span.is_some());
    }

    #[test]
    fn diagnostics_carry_stable_codes() {
        let diags = analyze_src("interface I {}; interface I {};");
        assert_eq!(diags.iter().next().unwrap().code, codes::DUPLICATE);
        let diags = analyze_src("interface A : A {};");
        assert!(diags.iter().any(|d| d.code == codes::CYCLE));
        let diags = analyze_src("qos Q { param long n = 3000000000; };");
        assert!(diags.iter().any(|d| d.code == codes::BAD_DEFAULT));
    }

    #[test]
    fn flattened_operations_dedup_base_first() {
        let spec = parse(
            &lex(r#"
                interface A { void a(); void shared(); };
                interface B : A { void b(); void shared(); };
                "#)
            .unwrap(),
        )
        .unwrap();
        check(&spec).unwrap();
        let b = spec.interface("B").unwrap();
        let names: Vec<&str> =
            flattened_operations(&spec, b).iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "shared", "b"]);
    }
}
