//! Semantic analysis for QIDL specifications.
//!
//! Enforces the language rules the parser cannot: name uniqueness,
//! resolution of named types / base interfaces / assigned QoS
//! characteristics, inheritance acyclicity, default-value typing, and the
//! reservation of `_`-prefixed operation names (used by the ORB built-ins
//! and the weaving runtime).

use crate::ast::*;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A semantic error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Description of the problem.
    pub message: String,
}

impl SemaError {
    fn new(message: impl Into<String>) -> SemaError {
        SemaError { message: message.into() }
    }
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SemaError {}

/// Names visible from outside the spec being checked (e.g. definitions
/// already loaded into an [`crate::InterfaceRepository`]).
#[derive(Debug, Clone, Default)]
pub struct Externals {
    /// Struct names resolvable externally.
    pub structs: HashSet<String>,
    /// Exception names resolvable externally.
    pub exceptions: HashSet<String>,
    /// QoS characteristic names resolvable externally.
    pub qos: HashSet<String>,
    /// Interface names resolvable externally.
    pub interfaces: HashSet<String>,
}

/// Check a parsed [`Spec`] as a self-contained compilation unit.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check(spec: &Spec) -> Result<(), SemaError> {
    check_with(spec, &Externals::default())
}

/// Check a parsed [`Spec`] against additional externally known names.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_with(spec: &Spec, env: &Externals) -> Result<(), SemaError> {
    let mut names: HashSet<&str> = HashSet::new();
    for def in &spec.definitions {
        let name = match def {
            Definition::Struct(s) => &s.name,
            Definition::Exception(e) => &e.name,
            Definition::Qos(q) => &q.name,
            Definition::Interface(i) => &i.name,
        };
        if !names.insert(name) {
            return Err(SemaError::new(format!("duplicate definition `{name}`")));
        }
    }

    let mut structs: HashSet<&str> = spec.structs().map(|s| s.name.as_str()).collect();
    structs.extend(env.structs.iter().map(String::as_str));
    let mut exceptions: HashSet<&str> = spec.exceptions().map(|e| e.name.as_str()).collect();
    exceptions.extend(env.exceptions.iter().map(String::as_str));
    let mut qos: HashSet<&str> = spec.qos_characteristics().map(|q| q.name.as_str()).collect();
    qos.extend(env.qos.iter().map(String::as_str));
    let mut interfaces: HashMap<&str, Option<&InterfaceDef>> =
        spec.interfaces().map(|i| (i.name.as_str(), Some(i))).collect();
    for ext in &env.interfaces {
        interfaces.entry(ext.as_str()).or_insert(None);
    }

    for s in spec.structs() {
        let mut fields = HashSet::new();
        for (fname, fty) in &s.fields {
            if !fields.insert(fname.as_str()) {
                return Err(SemaError::new(format!(
                    "duplicate field `{fname}` in struct `{}`",
                    s.name
                )));
            }
            check_type(fty, &structs, &format!("field `{}.{}`", s.name, fname))?;
        }
    }

    for e in spec.exceptions() {
        let mut fields = HashSet::new();
        for (fname, fty) in &e.fields {
            if !fields.insert(fname.as_str()) {
                return Err(SemaError::new(format!(
                    "duplicate field `{fname}` in exception `{}`",
                    e.name
                )));
            }
            check_type(fty, &structs, &format!("field `{}.{}`", e.name, fname))?;
        }
    }

    for q in spec.qos_characteristics() {
        let mut params = HashSet::new();
        for p in &q.params {
            if !params.insert(p.name.as_str()) {
                return Err(SemaError::new(format!(
                    "duplicate param `{}` in qos `{}`",
                    p.name, q.name
                )));
            }
            check_type(&p.ty, &structs, &format!("param `{}.{}`", q.name, p.name))?;
            if let Some(default) = &p.default {
                check_default(&p.ty, default, &q.name, &p.name)?;
            }
        }
        check_operations(q.all_operations(), &structs, &exceptions, &format!("qos `{}`", q.name))?;
    }

    for i in spec.interfaces() {
        for base in &i.inherits {
            if !interfaces.contains_key(base.as_str()) {
                return Err(SemaError::new(format!(
                    "interface `{}` inherits unknown interface `{base}`",
                    i.name
                )));
            }
        }
        for tag in &i.qos {
            if !qos.contains(tag.as_str()) {
                return Err(SemaError::new(format!(
                    "interface `{}` assigned unknown qos characteristic `{tag}`",
                    i.name
                )));
            }
        }
        let mut qos_seen = HashSet::new();
        for tag in &i.qos {
            if !qos_seen.insert(tag.as_str()) {
                return Err(SemaError::new(format!(
                    "interface `{}` assigns qos `{tag}` twice",
                    i.name
                )));
            }
        }
        check_operations(
            i.operations.iter(),
            &structs,
            &exceptions,
            &format!("interface `{}`", i.name),
        )?;
        let mut members: HashSet<&str> = i.operations.iter().map(|o| o.name.as_str()).collect();
        for a in &i.attributes {
            if !members.insert(a.name.as_str()) {
                return Err(SemaError::new(format!(
                    "duplicate member `{}` in interface `{}`",
                    a.name, i.name
                )));
            }
            check_type(&a.ty, &structs, &format!("attribute `{}.{}`", i.name, a.name))?;
            if a.ty == Type::Void {
                return Err(SemaError::new(format!(
                    "attribute `{}.{}` cannot be void",
                    i.name, a.name
                )));
            }
        }
    }

    check_inheritance_cycles(&interfaces)?;
    Ok(())
}

fn check_operations<'a, I: Iterator<Item = &'a Operation>>(
    ops: I,
    structs: &HashSet<&str>,
    exceptions: &HashSet<&str>,
    ctx: &str,
) -> Result<(), SemaError> {
    let mut names = HashSet::new();
    for op in ops {
        if !names.insert(op.name.as_str()) {
            return Err(SemaError::new(format!("duplicate operation `{}` in {ctx}", op.name)));
        }
        if op.name.starts_with('_') {
            return Err(SemaError::new(format!(
                "operation name `{}` in {ctx} is reserved (leading underscore)",
                op.name
            )));
        }
        if op.ret != Type::Void {
            check_type(&op.ret, structs, &format!("return of `{}` in {ctx}", op.name))?;
        }
        for raised in &op.raises {
            if !exceptions.contains(raised.as_str()) {
                return Err(SemaError::new(format!(
                    "operation `{}` in {ctx} raises undeclared exception `{raised}`",
                    op.name
                )));
            }
        }
        let mut params = HashSet::new();
        for p in &op.params {
            if !params.insert(p.name.as_str()) {
                return Err(SemaError::new(format!(
                    "duplicate parameter `{}` in operation `{}` of {ctx}",
                    p.name, op.name
                )));
            }
            if p.ty == Type::Void {
                return Err(SemaError::new(format!(
                    "parameter `{}` of `{}` in {ctx} cannot be void",
                    p.name, op.name
                )));
            }
            check_type(&p.ty, structs, &format!("parameter `{}` of `{}` in {ctx}", p.name, op.name))?;
            if op.oneway && p.direction != Direction::In {
                return Err(SemaError::new(format!(
                    "oneway operation `{}` in {ctx} may only have `in` parameters",
                    op.name
                )));
            }
        }
    }
    Ok(())
}

fn check_type(ty: &Type, structs: &HashSet<&str>, ctx: &str) -> Result<(), SemaError> {
    match ty {
        Type::Named(n) if !structs.contains(n.as_str()) => {
            Err(SemaError::new(format!("unknown type `{n}` in {ctx}")))
        }
        Type::Sequence(elem) => {
            if **elem == Type::Void {
                return Err(SemaError::new(format!("sequence of void in {ctx}")));
            }
            check_type(elem, structs, ctx)
        }
        _ => Ok(()),
    }
}

fn check_default(ty: &Type, lit: &Literal, qos: &str, param: &str) -> Result<(), SemaError> {
    let ok = matches!(
        (ty, lit),
        (Type::Long | Type::ULong | Type::LongLong | Type::ULongLong | Type::Octet, Literal::Int(_))
            | (Type::Double, Literal::Float(_))
            | (Type::Double, Literal::Int(_))
            | (Type::Str, Literal::Str(_))
            | (Type::Boolean, Literal::Bool(_))
    );
    if ok {
        // Range checks for the unsigned/narrow integer types.
        if let Literal::Int(v) = lit {
            let in_range = match ty {
                Type::Octet => (0..=255).contains(v),
                Type::ULong => *v >= 0 && *v <= u32::MAX as i64,
                Type::ULongLong => *v >= 0,
                Type::Long => i32::try_from(*v).is_ok(),
                _ => true,
            };
            if !in_range {
                return Err(SemaError::new(format!(
                    "default {v} out of range for `{ty}` param `{qos}.{param}`"
                )));
            }
        }
        Ok(())
    } else {
        Err(SemaError::new(format!(
            "default value {lit} does not match type `{ty}` of param `{qos}.{param}`"
        )))
    }
}

fn check_inheritance_cycles(
    interfaces: &HashMap<&str, Option<&InterfaceDef>>,
) -> Result<(), SemaError> {
    // DFS with colouring. External interfaces (`None`) were validated by
    // their own load and cannot participate in a cycle with new names.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: HashMap<&str, Colour> =
        interfaces.keys().map(|k| (*k, Colour::White)).collect();

    fn visit<'a>(
        name: &'a str,
        interfaces: &HashMap<&'a str, Option<&'a InterfaceDef>>,
        colour: &mut HashMap<&'a str, Colour>,
    ) -> Result<(), SemaError> {
        match colour.get(name) {
            Some(Colour::Black) | None => return Ok(()),
            Some(Colour::Grey) => {
                return Err(SemaError::new(format!("inheritance cycle through `{name}`")))
            }
            Some(Colour::White) => {}
        }
        colour.insert(name, Colour::Grey);
        if let Some(Some(def)) = interfaces.get(name) {
            for base in &def.inherits {
                visit(base, interfaces, colour)?;
            }
        }
        colour.insert(name, Colour::Black);
        Ok(())
    }

    let names: Vec<&str> = interfaces.keys().copied().collect();
    for name in names {
        visit(name, interfaces, &mut colour)?;
    }
    Ok(())
}

/// Collect an interface's full operation set including inherited ones,
/// base-first. Assumes the spec passed [`check`].
pub fn flattened_operations<'a>(spec: &'a Spec, iface: &'a InterfaceDef) -> Vec<&'a Operation> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    collect_ops(spec, iface, &mut seen, &mut out);
    out
}

fn collect_ops<'a>(
    spec: &'a Spec,
    iface: &'a InterfaceDef,
    seen: &mut HashSet<&'a str>,
    out: &mut Vec<&'a Operation>,
) {
    for base in &iface.inherits {
        if let Some(b) = spec.interface(base) {
            collect_ops(spec, b, seen, out);
        }
    }
    for op in &iface.operations {
        if seen.insert(op.name.as_str()) {
            out.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), SemaError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn valid_spec_passes() {
        check_src(
            r#"
            struct P { double x; };
            qos Q category perf { param long level = 3; management { void go(); }; };
            interface A { P get(in P p); };
            interface B : A with qos Q { void put(in sequence<P> ps); };
            "#,
        )
        .unwrap();
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let e = check_src("interface I {}; interface I {};").unwrap_err();
        assert!(e.message.contains("duplicate definition"));
        assert!(check_src("struct I { double x; }; interface I {};").is_err());
    }

    #[test]
    fn unknown_references_rejected() {
        assert!(check_src("interface I : Ghost {};").unwrap_err().message.contains("unknown"));
        assert!(check_src("interface I with qos Ghost {};").is_err());
        assert!(check_src("interface I { void f(in Ghost g); };").is_err());
        assert!(check_src("interface I { Ghost f(); };").is_err());
        assert!(check_src("struct S { Ghost g; };").is_err());
        assert!(check_src("qos Q { param Ghost p; };").is_err());
    }

    #[test]
    fn inheritance_cycles_rejected() {
        let e = check_src("interface A : B {}; interface B : A {};").unwrap_err();
        assert!(e.message.contains("cycle"));
        assert!(check_src("interface A : A {};").is_err());
        // Diamonds are fine.
        check_src(
            "interface R {}; interface A : R {}; interface B : R {}; interface D : A, B {};",
        )
        .unwrap();
    }

    #[test]
    fn duplicate_members_rejected() {
        assert!(check_src("interface I { void f(); void f(); };").is_err());
        assert!(check_src("interface I { void f(); attribute long f; };").is_err());
        assert!(check_src("interface I { void f(in long a, in long a); };").is_err());
        assert!(check_src("struct S { double a; double a; };").is_err());
        assert!(check_src("qos Q { param long a; param long a; };").is_err());
        assert!(check_src("qos Q { management { void f(); void f(); }; };").is_err());
    }

    #[test]
    fn reserved_operation_names_rejected() {
        let e = check_src("interface I { void _get_state(); };").unwrap_err();
        assert!(e.message.contains("reserved"));
    }

    #[test]
    fn default_typing() {
        check_src("qos Q { param double d = 1; };").unwrap(); // int widens
        assert!(check_src("qos Q { param long a = \"x\"; };").is_err());
        assert!(check_src("qos Q { param boolean b = 1; };").is_err());
        assert!(check_src("qos Q { param octet o = 300; };").is_err());
        assert!(check_src("qos Q { param unsigned long u = -1; };").is_err());
        assert!(check_src("qos Q { param long n = 3000000000; };").is_err());
    }

    #[test]
    fn misc_type_rules() {
        assert!(check_src("interface I { void f(in void v); };").is_err());
        assert!(check_src("interface I { attribute void a; };").is_err());
        assert!(check_src("interface I { void f(in sequence<void> s); };").is_err());
        assert!(check_src("interface I { oneway void f(out long x); };").is_err());
    }

    #[test]
    fn raises_must_reference_declared_exceptions() {
        check_src(
            "exception E { string why; }; interface I { void f() raises (E); };",
        )
        .unwrap();
        let e = check_src("interface I { void f() raises (Ghost); };").unwrap_err();
        assert!(e.message.contains("undeclared exception"));
        // Exceptions share the top-level namespace.
        assert!(check_src("exception X {}; struct X { double a; };").is_err());
        // Exception field rules match struct field rules.
        assert!(check_src("exception E { long a; long a; };").is_err());
        assert!(check_src("exception E { Ghost g; };").is_err());
    }

    #[test]
    fn duplicate_qos_assignment_rejected() {
        assert!(check_src("qos Q {}; interface I with qos Q, Q {};").is_err());
    }

    #[test]
    fn flattened_operations_dedup_base_first() {
        let spec = parse(
            &lex(
                r#"
                interface A { void a(); void shared(); };
                interface B : A { void b(); void shared(); };
                "#,
            )
            .unwrap(),
        )
        .unwrap();
        check(&spec).unwrap();
        let b = spec.interface("B").unwrap();
        let names: Vec<&str> =
            flattened_operations(&spec, b).iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["a", "shared", "b"]);
    }
}
