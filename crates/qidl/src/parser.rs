//! Recursive-descent parser for QIDL.

use crate::ast::*;
use crate::lexer::{Span, Token, TokenKind};
use std::fmt;

/// A syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Where it occurred.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Token],
    i: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError { message: message.into(), span: self.peek().span })
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<()> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek().kind))
        }
    }

    /// An identifier together with its source span.
    fn spanned_ident(&mut self) -> PResult<(String, Span)> {
        match &self.peek().kind {
            TokenKind::Ident(s) if !is_keyword(s) => {
                let s = s.clone();
                let span = self.peek().span;
                self.bump();
                Ok((s, span))
            }
            TokenKind::Ident(s) => self.err(format!("`{s}` is a keyword, not a name")),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn ident(&mut self) -> PResult<String> {
        self.spanned_ident().map(|(s, _)| s)
    }

    fn spec(&mut self) -> PResult<Spec> {
        let mut definitions = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            definitions.push(self.definition()?);
        }
        Ok(Spec { definitions })
    }

    fn definition(&mut self) -> PResult<Definition> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == "struct" => Ok(Definition::Struct(self.struct_def()?)),
            TokenKind::Ident(s) if s == "exception" => {
                Ok(Definition::Exception(self.exception_def()?))
            }
            TokenKind::Ident(s) if s == "qos" => Ok(Definition::Qos(self.qos_def()?)),
            TokenKind::Ident(s) if s == "interface" => {
                Ok(Definition::Interface(self.interface_def()?))
            }
            other => self.err(format!(
                "expected `struct`, `exception`, `qos` or `interface`, found {other}"
            )),
        }
    }

    fn fields(&mut self) -> PResult<Vec<(String, Type)>> {
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let ty = self.ty()?;
            let fname = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            fields.push((fname, ty));
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(fields)
    }

    fn struct_def(&mut self) -> PResult<StructDef> {
        self.expect_kw("struct")?;
        let (name, span) = self.spanned_ident()?;
        let fields = self.fields()?;
        Ok(StructDef { name, fields, span })
    }

    fn exception_def(&mut self) -> PResult<ExceptionDef> {
        self.expect_kw("exception")?;
        let (name, span) = self.spanned_ident()?;
        let fields = self.fields()?;
        Ok(ExceptionDef { name, fields, span })
    }

    fn qos_def(&mut self) -> PResult<QosDef> {
        self.expect_kw("qos")?;
        let (name, span) = self.spanned_ident()?;
        let category = if self.eat_kw("category") { Some(self.ident()?) } else { None };
        self.expect(&TokenKind::LBrace)?;
        let mut def = QosDef { name, category, span, ..Default::default() };
        while self.peek().kind != TokenKind::RBrace {
            if self.eat_kw("param") {
                let ty = self.ty()?;
                let (pname, pspan) = self.spanned_ident()?;
                let default = if self.peek().kind == TokenKind::Eq {
                    self.bump();
                    Some(self.literal()?)
                } else {
                    None
                };
                self.expect(&TokenKind::Semi)?;
                def.params.push(QosParam { name: pname, ty, default, span: pspan });
            } else if self.eat_kw("management") {
                def.management.extend(self.operation_block()?);
            } else if self.eat_kw("peer") {
                def.peer.extend(self.operation_block()?);
            } else if self.eat_kw("integration") {
                def.integration.extend(self.operation_block()?);
            } else {
                return self.err(format!(
                    "expected `param`, `management`, `peer` or `integration`, found {}",
                    self.peek().kind
                ));
            }
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(def)
    }

    fn operation_block(&mut self) -> PResult<Vec<Operation>> {
        self.expect(&TokenKind::LBrace)?;
        let mut ops = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            ops.push(self.operation()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(ops)
    }

    fn interface_def(&mut self) -> PResult<InterfaceDef> {
        self.expect_kw("interface")?;
        let (name, span) = self.spanned_ident()?;
        let mut inherits = Vec::new();
        let mut inherits_spans = Vec::new();
        if self.peek().kind == TokenKind::Colon {
            self.bump();
            loop {
                let (base, bspan) = self.spanned_ident()?;
                inherits.push(base);
                inherits_spans.push(bspan);
                if self.peek().kind != TokenKind::Comma {
                    break;
                }
                self.bump();
            }
        }
        let mut qos = Vec::new();
        let mut qos_spans = Vec::new();
        if self.eat_kw("with") {
            self.expect_kw("qos")?;
            loop {
                let (tag, tspan) = self.spanned_ident()?;
                qos.push(tag);
                qos_spans.push(tspan);
                if self.peek().kind != TokenKind::Comma {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut operations = Vec::new();
        let mut attributes = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if let TokenKind::Ident(s) = &self.peek().kind {
                if s == "readonly" || s == "attribute" {
                    attributes.push(self.attribute()?);
                    continue;
                }
            }
            operations.push(self.operation()?);
        }
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Semi)?;
        Ok(InterfaceDef {
            name,
            inherits,
            qos,
            operations,
            attributes,
            span,
            inherits_spans,
            qos_spans,
        })
    }

    fn attribute(&mut self) -> PResult<Attribute> {
        let readonly = self.eat_kw("readonly");
        self.expect_kw("attribute")?;
        let ty = self.ty()?;
        let (name, span) = self.spanned_ident()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Attribute { name, ty, readonly, span })
    }

    fn operation(&mut self) -> PResult<Operation> {
        let oneway = self.eat_kw("oneway");
        let ret = self.ty()?;
        let (name, span) = self.spanned_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            params.push(self.param()?);
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                params.push(self.param()?);
            }
        }
        self.expect(&TokenKind::RParen)?;
        let mut raises = Vec::new();
        if self.eat_kw("raises") {
            self.expect(&TokenKind::LParen)?;
            raises.push(self.ident()?);
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                raises.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;
        // `oneway` constraints (void return, no raises, `in`-only params)
        // are semantic rules: `sema` reports them all, with spans.
        Ok(Operation { name, oneway, ret, params, raises, span })
    }

    fn param(&mut self) -> PResult<Param> {
        let direction = if self.eat_kw("in") {
            Direction::In
        } else if self.eat_kw("out") {
            Direction::Out
        } else if self.eat_kw("inout") {
            Direction::InOut
        } else {
            Direction::In
        };
        let ty = self.ty()?;
        let (name, span) = self.spanned_ident()?;
        Ok(Param { direction, name, ty, span })
    }

    fn ty(&mut self) -> PResult<Type> {
        let kw = match &self.peek().kind {
            TokenKind::Ident(s) => s.clone(),
            other => return self.err(format!("expected a type, found {other}")),
        };
        match kw.as_str() {
            "void" => {
                self.bump();
                Ok(Type::Void)
            }
            "boolean" => {
                self.bump();
                Ok(Type::Boolean)
            }
            "octet" => {
                self.bump();
                Ok(Type::Octet)
            }
            "double" => {
                self.bump();
                Ok(Type::Double)
            }
            "string" => {
                self.bump();
                Ok(Type::Str)
            }
            "any" => {
                self.bump();
                Ok(Type::Any)
            }
            "long" => {
                self.bump();
                if self.eat_kw("long") {
                    Ok(Type::LongLong)
                } else {
                    Ok(Type::Long)
                }
            }
            "unsigned" => {
                self.bump();
                self.expect_kw("long")?;
                if self.eat_kw("long") {
                    Ok(Type::ULongLong)
                } else {
                    Ok(Type::ULong)
                }
            }
            "sequence" => {
                self.bump();
                self.expect(&TokenKind::Lt)?;
                let elem = self.ty()?;
                self.expect(&TokenKind::Gt)?;
                Ok(Type::Sequence(Box::new(elem)))
            }
            _ if is_keyword(&kw) => self.err(format!("`{kw}` is not a type")),
            _ => {
                self.bump();
                Ok(Type::Named(kw))
            }
        }
    }

    fn literal(&mut self) -> PResult<Literal> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Literal::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Literal::Float(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Literal::Str(s))
            }
            TokenKind::Ident(s) if s == "TRUE" => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(s) if s == "FALSE" => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            other => self.err(format!("expected a literal, found {other}")),
        }
    }
}

/// Words that cannot be used as names.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "struct"
            | "exception"
            | "qos"
            | "interface"
            | "with"
            | "category"
            | "param"
            | "management"
            | "peer"
            | "integration"
            | "oneway"
            | "raises"
            | "readonly"
            | "attribute"
            | "in"
            | "out"
            | "inout"
            | "void"
            | "boolean"
            | "octet"
            | "long"
            | "unsigned"
            | "double"
            | "string"
            | "any"
            | "sequence"
    )
}

/// Parse a token stream into a [`Spec`].
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, including when the
/// token stream does not end with [`TokenKind::Eof`] (always use
/// [`crate::lexer::lex`] to produce the stream).
pub fn parse(tokens: &[Token]) -> Result<Spec, ParseError> {
    if !matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Eof)) {
        return Err(ParseError {
            message: "token stream must end with Eof (use qidl::lexer::lex)".to_string(),
            span: tokens.last().map(|t| t.span).unwrap_or_default(),
        });
    }
    Parser { tokens, i: 0 }.spec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Spec {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> ParseError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn empty_interface() {
        let spec = parse_ok("interface I {};");
        let i = spec.interface("I").unwrap();
        assert!(i.operations.is_empty() && i.qos.is_empty() && i.inherits.is_empty());
    }

    #[test]
    fn interface_with_everything() {
        let spec = parse_ok(
            r#"
            interface Bank : Base, Auditable with qos Replication, Encryption {
                long balance(in string account);
                void transfer(in string from, inout string to, out long receipt)
                    raises (Overdraft, Frozen);
                oneway void log(in string msg);
                readonly attribute string name;
                attribute long limit;
            };
            "#,
        );
        let i = spec.interface("Bank").unwrap();
        assert_eq!(i.inherits, vec!["Base", "Auditable"]);
        assert_eq!(i.qos, vec!["Replication", "Encryption"]);
        assert_eq!(i.operations.len(), 3);
        assert_eq!(i.attributes.len(), 2);
        let t = &i.operations[1];
        assert_eq!(t.params[1].direction, Direction::InOut);
        assert_eq!(t.params[2].direction, Direction::Out);
        assert_eq!(t.raises, vec!["Overdraft", "Frozen"]);
        assert!(i.operations[2].oneway);
        assert!(i.attributes[0].readonly);
        assert!(!i.attributes[1].readonly);
    }

    #[test]
    fn qos_definition() {
        let spec = parse_ok(
            r#"
            qos Replication category fault_tolerance {
                param unsigned long replicas = 3;
                param double availability = 0.99;
                param string strategy = "majority";
                param boolean eager = TRUE;
                management {
                    void start();
                    double current_availability();
                };
                peer {
                    void sync_state(in any state);
                };
                integration {
                    any export_state();
                };
            };
            "#,
        );
        let q = spec.qos("Replication").unwrap();
        assert_eq!(q.category.as_deref(), Some("fault_tolerance"));
        assert_eq!(q.params.len(), 4);
        assert_eq!(q.params[0].default, Some(Literal::Int(3)));
        assert_eq!(q.params[1].default, Some(Literal::Float(0.99)));
        assert_eq!(q.params[2].default, Some(Literal::Str("majority".into())));
        assert_eq!(q.params[3].default, Some(Literal::Bool(true)));
        assert_eq!(q.management.len(), 2);
        assert_eq!(q.peer.len(), 1);
        assert_eq!(q.integration.len(), 1);
        assert_eq!(q.all_operations().count(), 4);
    }

    #[test]
    fn struct_and_types() {
        let spec = parse_ok(
            r#"
            struct Quote {
                string symbol;
                double price;
                unsigned long long timestamp;
                sequence<octet> blob;
                sequence<sequence<double>> matrix;
            };
            "#,
        );
        let s = spec.struct_def("Quote").unwrap();
        assert_eq!(s.fields[2].1, Type::ULongLong);
        assert_eq!(s.fields[4].1, Type::Sequence(Box::new(Type::Sequence(Box::new(Type::Double)))));
    }

    #[test]
    fn named_types_in_operations() {
        let spec = parse_ok("struct P { double x; };\ninterface I { P get(in P p); };");
        let op = &spec.interface("I").unwrap().operations[0];
        assert_eq!(op.ret, Type::Named("P".into()));
        assert_eq!(op.params[0].ty, Type::Named("P".into()));
    }

    #[test]
    fn default_direction_is_in() {
        let spec = parse_ok("interface I { void f(long x); };");
        assert_eq!(spec.interface("I").unwrap().operations[0].params[0].direction, Direction::In);
    }

    #[test]
    fn syntax_errors_have_positions() {
        let e = parse_err("interface I {");
        assert!(e.span.start.line >= 1);
        assert!(e.message.contains("expected"));
    }

    #[test]
    fn oneway_constraints_are_semantic_not_syntactic() {
        // The parser accepts these; `sema` rejects them (with spans).
        let spec = parse_ok("interface I { oneway long f(); };");
        assert!(crate::sema::check(&spec).is_err());
        let spec = parse_ok("exception E {}; interface I { oneway void f() raises (E); };");
        assert!(crate::sema::check(&spec).is_err());
    }

    #[test]
    fn keywords_cannot_be_names() {
        assert!(parse(&lex("interface interface {};").unwrap()).is_err());
        assert!(parse(&lex("interface I { void qos(); };").unwrap()).is_err());
    }

    #[test]
    fn exception_definitions() {
        let spec = parse_ok(
            "exception Overdraft { string account; long long shortfall; };\n\
             exception Plain {};",
        );
        let e = spec.exception("Overdraft").unwrap();
        assert_eq!(e.fields.len(), 2);
        assert_eq!(e.fields[1].1, Type::LongLong);
        assert!(spec.exception("Plain").unwrap().fields.is_empty());
        assert!(parse(&lex("exception {};").unwrap()).is_err());
        assert!(parse(&lex("exception E { long };").unwrap()).is_err());
    }

    #[test]
    fn garbage_top_level() {
        let e = parse_err("banana;");
        assert!(e.message.contains("expected `struct`, `exception`, `qos` or `interface`"));
    }

    #[test]
    fn missing_semicolons_rejected() {
        assert!(parse(&lex("interface I {}").unwrap()).is_err());
        assert!(parse(&lex("interface I { void f() };").unwrap()).is_err());
    }

    #[test]
    fn spans_point_at_defining_names() {
        let spec = parse_ok("interface Iface {\n    void op();\n};");
        let i = spec.interface("Iface").unwrap();
        assert_eq!((i.span.start.line, i.span.start.col), (1, 11));
        assert_eq!((i.operations[0].span.start.line, i.operations[0].span.start.col), (2, 10));
    }

    #[test]
    fn qos_tag_spans_are_recorded() {
        let spec = parse_ok("qos A {};\nqos B {};\ninterface I with qos A, B {};");
        let i = spec.interface("I").unwrap();
        assert_eq!(i.qos_spans.len(), 2);
        assert_eq!(i.qos_span(0).start.line, 3);
        assert!(i.qos_span(1).start.col > i.qos_span(0).start.col);
    }

    #[test]
    fn bad_token_stream_is_an_error_not_a_panic() {
        assert!(parse(&[]).is_err());
    }
}
