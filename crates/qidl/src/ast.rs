//! The QIDL abstract syntax tree.
//!
//! Named nodes carry the [`Span`] of their defining identifier so that
//! semantic diagnostics can point back into the source. Spans are
//! *ignored* by `PartialEq`: two ASTs compare equal iff they are
//! structurally equal, which keeps `parse(pretty(spec)) == spec` true
//! even though pretty-printing does not preserve positions.

use crate::lexer::Span;
use std::fmt;

/// A complete QIDL specification (one compilation unit).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Top-level definitions in source order.
    pub definitions: Vec<Definition>,
}

impl Spec {
    /// Iterate over the interface definitions.
    pub fn interfaces(&self) -> impl Iterator<Item = &InterfaceDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Interface(i) => Some(i),
            _ => None,
        })
    }

    /// Iterate over the QoS characteristic definitions.
    pub fn qos_characteristics(&self) -> impl Iterator<Item = &QosDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Qos(q) => Some(q),
            _ => None,
        })
    }

    /// Iterate over the struct definitions.
    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Struct(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate over the exception definitions.
    pub fn exceptions(&self) -> impl Iterator<Item = &ExceptionDef> {
        self.definitions.iter().filter_map(|d| match d {
            Definition::Exception(e) => Some(e),
            _ => None,
        })
    }

    /// Find an exception by name.
    pub fn exception(&self, name: &str) -> Option<&ExceptionDef> {
        self.exceptions().find(|e| e.name == name)
    }

    /// Find an interface by name.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces().find(|i| i.name == name)
    }

    /// Find a QoS characteristic by name.
    pub fn qos(&self, name: &str) -> Option<&QosDef> {
        self.qos_characteristics().find(|q| q.name == name)
    }

    /// Find a struct by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs().find(|s| s.name == name)
    }
}

/// A top-level QIDL definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Definition {
    /// A `struct` definition.
    Struct(StructDef),
    /// An `exception` definition.
    Exception(ExceptionDef),
    /// A `qos` characteristic definition.
    Qos(QosDef),
    /// An `interface` definition.
    Interface(InterfaceDef),
}

impl Definition {
    /// The defined name.
    pub fn name(&self) -> &str {
        match self {
            Definition::Struct(s) => &s.name,
            Definition::Exception(e) => &e.name,
            Definition::Qos(q) => &q.name,
            Definition::Interface(i) => &i.name,
        }
    }

    /// The span of the defining identifier.
    pub fn span(&self) -> Span {
        match self {
            Definition::Struct(s) => s.span,
            Definition::Exception(e) => e.span,
            Definition::Qos(q) => q.span,
            Definition::Interface(i) => i.span,
        }
    }
}

/// A user exception type (referenced by `raises` clauses).
#[derive(Debug, Clone, Default)]
pub struct ExceptionDef {
    /// Exception name.
    pub name: String,
    /// Exception members in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Span of the exception name.
    pub span: Span,
}

impl PartialEq for ExceptionDef {
    fn eq(&self, other: &ExceptionDef) -> bool {
        self.name == other.name && self.fields == other.fields
    }
}

/// A named struct type.
#[derive(Debug, Clone, Default)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, Type)>,
    /// Span of the struct name.
    pub span: Span,
}

impl PartialEq for StructDef {
    fn eq(&self, other: &StructDef) -> bool {
        self.name == other.name && self.fields == other.fields
    }
}

/// A QoS characteristic (§3.2): parameters plus the operations of the
/// *QoS responsibility*, grouped by the paper's three tasks.
#[derive(Debug, Clone, Default)]
pub struct QosDef {
    /// Characteristic name, e.g. `Replication`.
    pub name: String,
    /// QoS category (`fault_tolerance`, `performance`, …), if declared.
    pub category: Option<String>,
    /// Tunable parameters with optional defaults.
    pub params: Vec<QosParam>,
    /// "QoS mechanism management": setup, control, monitoring operations.
    pub management: Vec<Operation>,
    /// "QoS to QoS": operations the client- and server-side mechanisms
    /// use to talk to each other over the middleware.
    pub peer: Vec<Operation>,
    /// "QoS aspect integration": the dedicated interface toward the
    /// application object (e.g. state access for replica groups).
    pub integration: Vec<Operation>,
    /// Span of the characteristic name.
    pub span: Span,
}

impl PartialEq for QosDef {
    fn eq(&self, other: &QosDef) -> bool {
        self.name == other.name
            && self.category == other.category
            && self.params == other.params
            && self.management == other.management
            && self.peer == other.peer
            && self.integration == other.integration
    }
}

impl QosDef {
    /// All operations of the characteristic, in group order.
    pub fn all_operations(&self) -> impl Iterator<Item = &Operation> {
        self.management.iter().chain(self.peer.iter()).chain(self.integration.iter())
    }
}

/// A QoS parameter declaration.
#[derive(Debug, Clone, Default)]
pub struct QosParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Default value, if declared.
    pub default: Option<Literal>,
    /// Span of the parameter name.
    pub span: Span,
}

impl PartialEq for QosParam {
    fn eq(&self, other: &QosParam) -> bool {
        self.name == other.name && self.ty == other.ty && self.default == other.default
    }
}

/// An interface definition, possibly with assigned QoS characteristics.
#[derive(Debug, Clone, Default)]
pub struct InterfaceDef {
    /// Interface name.
    pub name: String,
    /// Base interfaces (`: Base1, Base2`).
    pub inherits: Vec<String>,
    /// Assigned QoS characteristics (`with qos A, B`). Assignment is at
    /// interface granularity only, per the paper.
    pub qos: Vec<String>,
    /// Operations in declaration order.
    pub operations: Vec<Operation>,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
    /// Span of the interface name.
    pub span: Span,
    /// Spans of the `inherits` entries (parallel to `inherits`; empty
    /// when the AST was built without source, e.g. by hand).
    pub inherits_spans: Vec<Span>,
    /// Spans of the `qos` entries (parallel to `qos`; may be empty,
    /// like `inherits_spans`).
    pub qos_spans: Vec<Span>,
}

impl PartialEq for InterfaceDef {
    fn eq(&self, other: &InterfaceDef) -> bool {
        self.name == other.name
            && self.inherits == other.inherits
            && self.qos == other.qos
            && self.operations == other.operations
            && self.attributes == other.attributes
    }
}

impl InterfaceDef {
    /// CORBA-style repository id, `IDL:<name>:1.0`.
    pub fn repository_id(&self) -> String {
        format!("IDL:{}:1.0", self.name)
    }

    /// The span of the `i`-th assigned QoS tag, or the interface's own
    /// span when tag spans were not recorded.
    pub fn qos_span(&self, i: usize) -> Span {
        self.qos_spans.get(i).copied().unwrap_or(self.span)
    }

    /// The span of the `i`-th base-interface reference, or the
    /// interface's own span when spans were not recorded.
    pub fn inherit_span(&self, i: usize) -> Span {
        self.inherits_spans.get(i).copied().unwrap_or(self.span)
    }
}

/// An operation signature.
#[derive(Debug, Clone, Default)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// `oneway` operations must return `void` and may not raise.
    pub oneway: bool,
    /// Return type.
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Names of user exceptions this operation may raise.
    pub raises: Vec<String>,
    /// Span of the operation name.
    pub span: Span,
}

impl PartialEq for Operation {
    fn eq(&self, other: &Operation) -> bool {
        self.name == other.name
            && self.oneway == other.oneway
            && self.ret == other.ret
            && self.params == other.params
            && self.raises == other.raises
    }
}

/// An interface attribute.
#[derive(Debug, Clone, Default)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: Type,
    /// `readonly` attributes map to a getter only.
    pub readonly: bool,
    /// Span of the attribute name.
    pub span: Span,
}

impl PartialEq for Attribute {
    fn eq(&self, other: &Attribute) -> bool {
        self.name == other.name && self.ty == other.ty && self.readonly == other.readonly
    }
}

/// A formal parameter.
#[derive(Debug, Clone, Default)]
pub struct Param {
    /// Passing direction.
    pub direction: Direction,
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Span of the parameter name.
    pub span: Span,
}

impl PartialEq for Param {
    fn eq(&self, other: &Param) -> bool {
        self.direction == other.direction && self.name == other.name && self.ty == other.ty
    }
}

/// Parameter passing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Client-to-server (the default).
    #[default]
    In,
    /// Server-to-client.
    Out,
    /// Both directions.
    InOut,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => write!(f, "in"),
            Direction::Out => write!(f, "out"),
            Direction::InOut => write!(f, "inout"),
        }
    }
}

/// A QIDL type.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Type {
    /// No value (return types only).
    #[default]
    Void,
    /// Boolean.
    Boolean,
    /// 8-bit unsigned.
    Octet,
    /// 32-bit signed.
    Long,
    /// 32-bit unsigned.
    ULong,
    /// 64-bit signed.
    LongLong,
    /// 64-bit unsigned.
    ULongLong,
    /// IEEE-754 double.
    Double,
    /// UTF-8 string.
    Str,
    /// Self-describing value.
    Any,
    /// Homogeneous sequence.
    Sequence(Box<Type>),
    /// Reference to a named struct.
    Named(String),
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Boolean => write!(f, "boolean"),
            Type::Octet => write!(f, "octet"),
            Type::Long => write!(f, "long"),
            Type::ULong => write!(f, "unsigned long"),
            Type::LongLong => write!(f, "long long"),
            Type::ULongLong => write!(f, "unsigned long long"),
            Type::Double => write!(f, "double"),
            Type::Str => write!(f, "string"),
            Type::Any => write!(f, "any"),
            Type::Sequence(e) => write!(f, "sequence<{e}>"),
            Type::Named(n) => write!(f, "{n}"),
        }
    }
}

/// A literal (QoS parameter defaults).
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Pos;

    #[test]
    fn spec_lookup_helpers() {
        let spec = Spec {
            definitions: vec![
                Definition::Struct(StructDef { name: "S".into(), ..Default::default() }),
                Definition::Qos(QosDef { name: "Q".into(), ..Default::default() }),
                Definition::Interface(InterfaceDef {
                    name: "I".into(),
                    qos: vec!["Q".into()],
                    ..Default::default()
                }),
            ],
        };
        assert!(spec.interface("I").is_some());
        assert!(spec.qos("Q").is_some());
        assert!(spec.struct_def("S").is_some());
        assert!(spec.interface("X").is_none());
        assert_eq!(spec.interface("I").unwrap().repository_id(), "IDL:I:1.0");
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Sequence(Box::new(Type::Octet)).to_string(), "sequence<octet>");
        assert_eq!(Type::ULongLong.to_string(), "unsigned long long");
        assert_eq!(Type::Named("Point".into()).to_string(), "Point");
    }

    #[test]
    fn literal_display_roundtrips_floats() {
        assert_eq!(Literal::Float(3.0).to_string(), "3.0");
        assert_eq!(Literal::Float(0.25).to_string(), "0.25");
        assert_eq!(Literal::Bool(true).to_string(), "TRUE");
        assert_eq!(Literal::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn qos_all_operations_order() {
        let op = |n: &str| Operation { name: n.into(), ..Default::default() };
        let q = QosDef {
            name: "Q".into(),
            management: vec![op("m")],
            peer: vec![op("p")],
            integration: vec![op("i")],
            ..Default::default()
        };
        let names: Vec<&str> = q.all_operations().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["m", "p", "i"]);
    }

    #[test]
    fn equality_ignores_spans() {
        let a = StructDef { name: "S".into(), ..Default::default() };
        let b = StructDef {
            name: "S".into(),
            span: Span::point(Pos { line: 9, col: 9 }),
            ..Default::default()
        };
        assert_eq!(a, b);
        let op1 = Operation { name: "f".into(), ..Default::default() };
        let op2 = Operation {
            name: "f".into(),
            span: Span::point(Pos { line: 3, col: 1 }),
            ..Default::default()
        };
        assert_eq!(op1, op2);
    }
}
