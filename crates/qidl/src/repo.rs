//! The interface repository: runtime-queryable QIDL metadata.
//!
//! CORBA keeps compiled IDL available at runtime in the *interface
//! repository*; MAQS needs the same reflective access so the weaving
//! runtime can (a) tell application operations from QoS operations, (b)
//! find the operations of each *assigned* characteristic, and (c) answer
//! `is_a` questions for inherited interfaces.

use crate::ast::{ExceptionDef, InterfaceDef, Operation, QosDef, Spec, StructDef};
use crate::sema;
use std::collections::HashMap;
use std::fmt;

/// Where a woven operation comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOrigin {
    /// Declared on the application interface (possibly inherited).
    Application,
    /// Declared by the named QoS characteristic assigned to the interface.
    Qos(String),
}

/// A loaded, queryable collection of QIDL definitions.
#[derive(Debug, Clone, Default)]
pub struct InterfaceRepository {
    structs: HashMap<String, StructDef>,
    exceptions: HashMap<String, ExceptionDef>,
    qos: HashMap<String, QosDef>,
    interfaces: HashMap<String, InterfaceDef>,
}

impl fmt::Display for InterfaceRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repository: {} interfaces, {} qos, {} structs, {} exceptions",
            self.interfaces.len(),
            self.qos.len(),
            self.structs.len(),
            self.exceptions.len()
        )
    }
}

impl InterfaceRepository {
    /// An empty repository.
    pub fn new() -> InterfaceRepository {
        InterfaceRepository::default()
    }

    /// Load all definitions of a [`Spec`], resolving names against the
    /// union of the incoming spec and what is already loaded.
    ///
    /// # Errors
    ///
    /// [`sema::SemaError`] if the spec fails semantic checks or collides
    /// with already loaded definitions.
    pub fn load(&mut self, spec: &Spec) -> Result<(), sema::SemaError> {
        let env = sema::Externals {
            structs: self.structs.keys().cloned().collect(),
            exceptions: self.exceptions.keys().cloned().collect(),
            qos: self.qos.keys().cloned().collect(),
            interfaces: self.interfaces.keys().cloned().collect(),
        };
        sema::check_with(spec, &env)?;
        for s in spec.structs() {
            if self.name_taken(&s.name) {
                return Err(collision(&s.name));
            }
        }
        for e in spec.exceptions() {
            if self.name_taken(&e.name) {
                return Err(collision(&e.name));
            }
        }
        for q in spec.qos_characteristics() {
            if self.name_taken(&q.name) {
                return Err(collision(&q.name));
            }
        }
        for i in spec.interfaces() {
            if self.name_taken(&i.name) {
                return Err(collision(&i.name));
            }
        }
        for s in spec.structs() {
            self.structs.insert(s.name.clone(), s.clone());
        }
        for e in spec.exceptions() {
            self.exceptions.insert(e.name.clone(), e.clone());
        }
        for q in spec.qos_characteristics() {
            self.qos.insert(q.name.clone(), q.clone());
        }
        for i in spec.interfaces() {
            self.interfaces.insert(i.name.clone(), i.clone());
        }
        Ok(())
    }

    fn name_taken(&self, name: &str) -> bool {
        self.structs.contains_key(name)
            || self.exceptions.contains_key(name)
            || self.qos.contains_key(name)
            || self.interfaces.contains_key(name)
    }

    /// Look up an interface definition.
    pub fn interface(&self, name: &str) -> Option<&InterfaceDef> {
        self.interfaces.get(name)
    }

    /// Look up a QoS characteristic definition.
    pub fn qos(&self, name: &str) -> Option<&QosDef> {
        self.qos.get(name)
    }

    /// Look up a struct definition.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Look up an exception definition.
    pub fn exception(&self, name: &str) -> Option<&ExceptionDef> {
        self.exceptions.get(name)
    }

    /// Interface names, sorted.
    pub fn interface_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.interfaces.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Transitive `is_a`: is `iface` equal to or derived from `base`?
    pub fn is_a(&self, iface: &str, base: &str) -> bool {
        if iface == base {
            return self.interfaces.contains_key(iface);
        }
        match self.interfaces.get(iface) {
            None => false,
            Some(def) => def.inherits.iter().any(|b| self.is_a(b, base)),
        }
    }

    /// All application operations of `iface`, inherited ones first.
    pub fn application_operations(&self, iface: &str) -> Vec<&Operation> {
        let Some(def) = self.interfaces.get(iface) else { return Vec::new() };
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        self.collect(def, &mut seen, &mut out);
        out
    }

    fn collect<'a>(
        &'a self,
        def: &'a InterfaceDef,
        seen: &mut std::collections::HashSet<&'a str>,
        out: &mut Vec<&'a Operation>,
    ) {
        for base in &def.inherits {
            if let Some(b) = self.interfaces.get(base) {
                self.collect(b, seen, out);
            }
        }
        for op in &def.operations {
            if seen.insert(op.name.as_str()) {
                out.push(op);
            }
        }
    }

    /// The QoS characteristics assigned to `iface` (in assignment order).
    pub fn assigned_qos(&self, iface: &str) -> Vec<&QosDef> {
        let Some(def) = self.interfaces.get(iface) else { return Vec::new() };
        def.qos.iter().filter_map(|name| self.qos.get(name)).collect()
    }

    /// Resolve an operation on the *woven* interface: the application
    /// operations plus every assigned characteristic's QoS operations
    /// (the woven server of Fig. 2 "accepts potentially all assigned QoS
    /// operations").
    pub fn lookup_woven(&self, iface: &str, op: &str) -> Option<(OpOrigin, &Operation)> {
        if let Some(found) = self.application_operations(iface).into_iter().find(|o| o.name == op) {
            return Some((OpOrigin::Application, found));
        }
        for q in self.assigned_qos(iface) {
            if let Some(found) = q.all_operations().find(|o| o.name == op) {
                return Some((OpOrigin::Qos(q.name.clone()), found));
            }
        }
        None
    }
}

fn collision(name: &str) -> sema::SemaError {
    sema::SemaError::new(format!("`{name}` is already defined in the repository"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn repo(src: &str) -> InterfaceRepository {
        let mut r = InterfaceRepository::new();
        r.load(&compile(src).unwrap()).unwrap();
        r
    }

    const BANK: &str = r#"
        qos Replication category fault_tolerance {
            param unsigned long replicas = 3;
            management { void start(); };
            integration { any export_state(); };
        };
        qos Encryption category privacy {
            management { void rekey(in unsigned long long seed); };
        };
        interface Account { long balance(); };
        interface Bank : Account with qos Replication, Encryption {
            void deposit(in long amount);
        };
    "#;

    #[test]
    fn lookups_work() {
        let r = repo(BANK);
        assert!(r.interface("Bank").is_some());
        assert!(r.qos("Replication").is_some());
        assert_eq!(r.interface_names(), vec!["Account", "Bank"]);
        assert_eq!(r.assigned_qos("Bank").len(), 2);
        assert!(r.assigned_qos("Account").is_empty());
    }

    #[test]
    fn is_a_is_transitive_and_reflexive() {
        let r = repo(BANK);
        assert!(r.is_a("Bank", "Bank"));
        assert!(r.is_a("Bank", "Account"));
        assert!(!r.is_a("Account", "Bank"));
        assert!(!r.is_a("Ghost", "Ghost"));
    }

    #[test]
    fn application_operations_include_inherited() {
        let r = repo(BANK);
        let names: Vec<&str> =
            r.application_operations("Bank").iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["balance", "deposit"]);
    }

    #[test]
    fn woven_lookup_spans_application_and_qos() {
        let r = repo(BANK);
        let (origin, _) = r.lookup_woven("Bank", "deposit").unwrap();
        assert_eq!(origin, OpOrigin::Application);
        let (origin, _) = r.lookup_woven("Bank", "balance").unwrap();
        assert_eq!(origin, OpOrigin::Application);
        let (origin, op) = r.lookup_woven("Bank", "start").unwrap();
        assert_eq!(origin, OpOrigin::Qos("Replication".into()));
        assert_eq!(op.name, "start");
        let (origin, _) = r.lookup_woven("Bank", "rekey").unwrap();
        assert_eq!(origin, OpOrigin::Qos("Encryption".into()));
        assert!(r.lookup_woven("Bank", "nope").is_none());
        // Unassigned characteristics are not visible on the interface.
        assert!(r.lookup_woven("Account", "start").is_none());
    }

    fn parse_only(src: &str) -> Spec {
        crate::parser::parse(&crate::lexer::lex(src).unwrap()).unwrap()
    }

    #[test]
    fn incremental_load_and_collisions() {
        let mut r = InterfaceRepository::new();
        r.load(&parse_only("interface A {};")).unwrap();
        // B can inherit the already loaded A, even though "interface B : A"
        // would not compile as a standalone unit.
        r.load(&parse_only("interface B : A {};")).unwrap();
        assert!(r.is_a("B", "A"));
        // Redefinition collides.
        let e = r.load(&parse_only("interface A {};")).unwrap_err();
        assert!(e.message.contains("already defined"));
        // Unresolved base across loads is caught.
        let e = r.load(&parse_only("interface C : Ghost {};")).unwrap_err();
        assert!(e.message.contains("unknown"));
        // Cross-load qos assignment also resolves.
        r.load(&parse_only("qos Q {};")).unwrap();
        r.load(&parse_only("interface D with qos Q {};")).unwrap();
        assert_eq!(r.assigned_qos("D").len(), 1);
    }
}
