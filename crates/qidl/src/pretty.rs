//! Pretty-printer: AST back to canonical QIDL source.
//!
//! `parse(pretty(spec)) == spec` holds for every well-formed AST, which
//! the property tests exploit.

use crate::ast::*;
use std::fmt::Write;

/// Render a [`Spec`] as canonical QIDL source.
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    for (i, def) in spec.definitions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match def {
            Definition::Struct(s) => write_struct(&mut out, s),
            Definition::Exception(e) => write_exception(&mut out, e),
            Definition::Qos(q) => write_qos(&mut out, q),
            Definition::Interface(iface) => write_interface(&mut out, iface),
        }
    }
    out
}

fn write_struct(out: &mut String, s: &StructDef) {
    let _ = writeln!(out, "struct {} {{", s.name);
    for (name, ty) in &s.fields {
        let _ = writeln!(out, "    {ty} {name};");
    }
    let _ = writeln!(out, "}};");
}

fn write_exception(out: &mut String, e: &ExceptionDef) {
    let _ = writeln!(out, "exception {} {{", e.name);
    for (name, ty) in &e.fields {
        let _ = writeln!(out, "    {ty} {name};");
    }
    let _ = writeln!(out, "}};");
}

fn write_qos(out: &mut String, q: &QosDef) {
    let _ = write!(out, "qos {}", q.name);
    if let Some(cat) = &q.category {
        let _ = write!(out, " category {cat}");
    }
    let _ = writeln!(out, " {{");
    for p in &q.params {
        let _ = write!(out, "    param {} {}", p.ty, p.name);
        if let Some(d) = &p.default {
            let _ = write!(out, " = {d}");
        }
        let _ = writeln!(out, ";");
    }
    for (label, ops) in
        [("management", &q.management), ("peer", &q.peer), ("integration", &q.integration)]
    {
        if ops.is_empty() {
            continue;
        }
        let _ = writeln!(out, "    {label} {{");
        for op in ops {
            let _ = writeln!(out, "        {}", operation_to_string(op));
        }
        let _ = writeln!(out, "    }};");
    }
    let _ = writeln!(out, "}};");
}

fn write_interface(out: &mut String, i: &InterfaceDef) {
    let _ = write!(out, "interface {}", i.name);
    if !i.inherits.is_empty() {
        let _ = write!(out, " : {}", i.inherits.join(", "));
    }
    if !i.qos.is_empty() {
        let _ = write!(out, " with qos {}", i.qos.join(", "));
    }
    let _ = writeln!(out, " {{");
    for op in &i.operations {
        let _ = writeln!(out, "    {}", operation_to_string(op));
    }
    for a in &i.attributes {
        let ro = if a.readonly { "readonly " } else { "" };
        let _ = writeln!(out, "    {ro}attribute {} {};", a.ty, a.name);
    }
    let _ = writeln!(out, "}};");
}

/// Render one operation signature (without indentation).
pub fn operation_to_string(op: &Operation) -> String {
    let mut s = String::new();
    if op.oneway {
        s.push_str("oneway ");
    }
    let _ = write!(s, "{} {}(", op.ret, op.name);
    for (i, p) in op.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} {} {}", p.direction, p.ty, p.name);
    }
    s.push(')');
    if !op.raises.is_empty() {
        let _ = write!(s, " raises ({})", op.raises.join(", "));
    }
    s.push(';');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let spec = parse(&lex(src).unwrap()).unwrap();
        let printed = pretty(&spec);
        let reparsed = parse(&lex(&printed).unwrap()).unwrap();
        assert_eq!(reparsed, spec, "pretty output:\n{printed}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("interface I {};");
        roundtrip("struct P { double x; double y; };");
        roundtrip("exception Denied { string reason; unsigned long code; };");
        roundtrip(
            "exception Denied {};\ninterface V { octet read(in string k) raises (Denied); };",
        );
        roundtrip(
            r#"
            qos Enc category privacy {
                param string cipher = "stream";
                param boolean strict = FALSE;
                management { void rekey(in unsigned long long seed); };
                peer { void exchange(in any blob); };
            };
            interface Vault : Base with qos Enc {
                sequence<octet> read(in string key) raises (Denied);
                oneway void audit(in string what);
                readonly attribute unsigned long size;
            };
            "#,
        );
    }

    #[test]
    fn operation_rendering() {
        let op = Operation {
            name: "f".into(),
            oneway: false,
            ret: Type::Long,
            params: vec![Param {
                direction: Direction::InOut,
                name: "x".into(),
                ty: Type::Str,
                ..Default::default()
            }],
            raises: vec!["E".into()],
            ..Default::default()
        };
        assert_eq!(operation_to_string(&op), "long f(inout string x) raises (E);");
    }

    #[test]
    fn float_defaults_survive_roundtrip() {
        roundtrip("qos Q { param double a = 1.0; param double b = -0.5; };");
        roundtrip("qos Q { param long n = -12; };");
    }
}
