//! Shared diagnostics for the QIDL pipeline and the `qoslint` analyses.
//!
//! Every finding is a [`Diagnostic`]: a stable lint code (`QL0xx` for
//! compiler-enforced rules, `QL01x`/`QL1xx` for the `qoslint` passes), a
//! [`Severity`], a human-readable message, an optional source [`Span`]
//! and free-form notes. [`Diagnostics`] accumulates findings so that a
//! single run can report *every* problem in a spec instead of stopping
//! at the first one (see [`crate::sema::analyze`]).

use crate::lexer::Span;
use std::fmt;

/// A stable diagnostic code, e.g. `QL003`.
///
/// Codes are never renumbered; retired codes are not reused. The
/// front-end codes (`QL001`–`QL009`) live in [`codes`]; the `qoslint`
/// crate defines the lint-only codes on top of this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code(pub &'static str);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// The front-end (lex/parse/sema) diagnostic codes.
pub mod codes {
    use super::Code;

    /// Lexical error (bad character, unterminated string/comment, …).
    pub const LEX: Code = Code("QL001");
    /// Syntax error.
    pub const PARSE: Code = Code("QL002");
    /// Duplicate name: definition, member, field or parameter.
    pub const DUPLICATE: Code = Code("QL003");
    /// Unresolved reference: type, base interface, characteristic or
    /// exception.
    pub const UNRESOLVED: Code = Code("QL004");
    /// Interface inheritance cycle.
    pub const CYCLE: Code = Code("QL005");
    /// QoS parameter default is ill-typed or out of range.
    pub const BAD_DEFAULT: Code = Code("QL006");
    /// `oneway` constraint violation (non-void return, `raises`, or
    /// `out`/`inout` parameters).
    pub const ONEWAY: Code = Code("QL007");
    /// Reserved name: leading `_` is for ORB built-ins and the weaving
    /// runtime.
    pub const RESERVED: Code = Code("QL008");
    /// Invalid use of `void` (attribute, parameter or sequence element).
    pub const VOID: Code = Code("QL009");
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advice; never fails a run.
    Help,
    /// Suspicious but not fatal; fails a run only under `--deny-warnings`.
    Warn,
    /// A rule violation; always fails the run.
    Error,
}

impl Severity {
    /// Lower-case name, as rendered (`error`, `warning`, `help`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Help => "help",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: code, severity, message, optional span and notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: Code,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Source region the finding points at, when known.
    pub span: Option<Span>,
    /// Extra lines of context or advice.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic with the given severity.
    pub fn new(severity: Severity, code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity, message: message.into(), span: None, notes: Vec::new() }
    }

    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// A [`Severity::Warn`] diagnostic.
    pub fn warn(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Warn, code, message)
    }

    /// A [`Severity::Help`] diagnostic.
    pub fn help(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Help, code, message)
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

/// An ordered accumulator of [`Diagnostic`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty accumulator.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Record a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// Record several findings.
    pub fn extend(&mut self, diagnostics: impl IntoIterator<Item = Diagnostic>) {
        self.items.extend(diagnostics);
    }

    /// All findings, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether any [`Severity::Error`] finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of findings of the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// The first [`Severity::Error`] finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.severity == Severity::Error)
    }

    /// Consume the accumulator, yielding the findings.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Diagnostics {
        Diagnostics { items: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{Pos, Span};

    #[test]
    fn severity_orders_help_warn_error() {
        assert!(Severity::Help < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn accumulator_counts_and_finds_errors() {
        let mut acc = Diagnostics::new();
        assert!(acc.is_empty() && !acc.has_errors());
        acc.push(Diagnostic::warn(codes::DUPLICATE, "w"));
        acc.push(Diagnostic::error(codes::UNRESOLVED, "e1"));
        acc.push(Diagnostic::error(codes::CYCLE, "e2"));
        acc.push(Diagnostic::help(codes::VOID, "h"));
        assert_eq!(acc.len(), 4);
        assert!(acc.has_errors());
        assert_eq!(acc.count(Severity::Error), 2);
        assert_eq!(acc.first_error().unwrap().message, "e1");
    }

    #[test]
    fn display_includes_code_severity_and_span() {
        let d = Diagnostic::error(codes::DUPLICATE, "duplicate definition `X`")
            .with_span(Span::point(Pos { line: 3, col: 7 }))
            .with_note("first defined here");
        let s = d.to_string();
        assert!(s.contains("error[QL003]"), "{s}");
        assert!(s.contains("at 3:7"), "{s}");
        assert_eq!(d.notes.len(), 1);
    }
}
