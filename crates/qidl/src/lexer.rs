//! The QIDL tokenizer.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source region: `start` is the first position of a construct and
/// `end` the position just past its last character.
///
/// Spans originate in the lexer and are threaded through the parser
/// into the AST so that semantic diagnostics (see [`crate::diag`]) can
/// point back into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Start of the region (inclusive).
    pub start: Pos,
    /// End of the region (exclusive).
    pub end: Pos,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: Pos, end: Pos) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: Pos) -> Span {
        Span { start: pos, end: pos }
    }

    /// Whether this is the default (absent) span.
    pub fn is_dummy(&self) -> bool {
        *self == Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A double-quoted string literal (unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The source region it covers.
    pub span: Span,
}

impl Token {
    /// The position the token starts at.
    pub fn pos(&self) -> Pos {
        self.span.start
    }
}

/// A tokenization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// Where it occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.pos)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { message: message.into(), pos: self.pos() }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".to_string(),
                                    pos: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let mut s = String::new();
        if self.peek() == Some(b'-') {
            s.push('-');
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c as char);
                self.bump();
            } else if c == b'.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                s.push('.');
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() || s == "-" {
            return Err(self.err("expected digits after `-`"));
        }
        if is_float {
            s.parse::<f64>().map(TokenKind::Float).map_err(|e| self.err(format!("bad float: {e}")))
        } else {
            s.parse::<i64>().map(TokenKind::Int).map_err(|e| self.err(format!("bad integer: {e}")))
        }
    }

    fn string(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos();
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(c) => return Err(self.err(format!("unknown escape `\\{}`", c as char))),
                    None => {
                        return Err(LexError {
                            message: "unterminated string".to_string(),
                            pos: start,
                        })
                    }
                },
                Some(b'\n') | None => {
                    return Err(LexError { message: "unterminated string".to_string(), pos: start })
                }
                Some(c) => s.push(c as char),
            }
        }
    }
}

/// Tokenize QIDL source.
///
/// The resulting vector always ends with a [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated comments/strings, malformed
/// numbers and characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer { src: source.as_bytes(), i: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    loop {
        lx.skip_trivia()?;
        let start = lx.pos();
        let kind = match lx.peek() {
            None => {
                tokens.push(Token { kind: TokenKind::Eof, span: Span::point(start) });
                return Ok(tokens);
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => lx.ident(),
            Some(c) if c.is_ascii_digit() || c == b'-' => lx.number()?,
            Some(b'"') => lx.string()?,
            Some(b'{') => {
                lx.bump();
                TokenKind::LBrace
            }
            Some(b'}') => {
                lx.bump();
                TokenKind::RBrace
            }
            Some(b'(') => {
                lx.bump();
                TokenKind::LParen
            }
            Some(b')') => {
                lx.bump();
                TokenKind::RParen
            }
            Some(b'<') => {
                lx.bump();
                TokenKind::Lt
            }
            Some(b'>') => {
                lx.bump();
                TokenKind::Gt
            }
            Some(b';') => {
                lx.bump();
                TokenKind::Semi
            }
            Some(b',') => {
                lx.bump();
                TokenKind::Comma
            }
            Some(b':') => {
                lx.bump();
                TokenKind::Colon
            }
            Some(b'=') => {
                lx.bump();
                TokenKind::Eq
            }
            Some(c) => return Err(lx.err(format!("unexpected character `{}`", c as char))),
        };
        tokens.push(Token { kind, span: Span::new(start, lx.pos()) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("interface I { };"),
            vec![
                TokenKind::Ident("interface".into()),
                TokenKind::Ident("I".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42), TokenKind::Eof]);
        assert_eq!(kinds("-7"), vec![TokenKind::Int(-7), TokenKind::Eof]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5), TokenKind::Eof]);
        assert_eq!(kinds("-0.25"), vec![TokenKind::Float(-0.25), TokenKind::Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\\c\nd""#),
            vec![TokenKind::Str("a\"b\\c\nd".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let src = "// line\ninterface /* block\nspanning */ I;";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("interface".into()),
                TokenKind::Ident("I".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos(), Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos(), Pos { line: 2, col: 3 });
    }

    #[test]
    fn spans_cover_whole_tokens() {
        let toks = lex("abc 42").unwrap();
        assert_eq!(toks[0].span, Span::new(Pos { line: 1, col: 1 }, Pos { line: 1, col: 4 }));
        assert_eq!(toks[1].span, Span::new(Pos { line: 1, col: 5 }, Pos { line: 1, col: 7 }));
        assert!(toks[2].span.start == toks[2].span.end); // Eof is zero-width
    }

    #[test]
    fn errors() {
        assert!(lex("\u{7}").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("- ").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn angle_brackets_for_sequences() {
        assert_eq!(
            kinds("sequence<octet>"),
            vec![
                TokenKind::Ident("sequence".into()),
                TokenKind::Lt,
                TokenKind::Ident("octet".into()),
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }
}
