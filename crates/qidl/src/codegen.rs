//! The QIDL → Rust language mapping: the aspect weaver's static half.
//!
//! §3.3 of the paper: "the QIDL compiler acts as an aspect weaver, which
//! combines the application objects with QoS provision". For every
//! interface the generated code contains
//!
//! * a typed **application trait** (pure business logic — what the
//!   application programmer implements, untouched by QoS),
//! * a **servant adapter** (`<I>Servant`) mapping wire `Any` arguments to
//!   typed calls — the server skeleton of Fig. 2; wrap it in a
//!   `weaver::WovenServant` to attach QoS implementations,
//! * a typed **client stub** (`<I>Stub`) over `weaver::ClientStub`, whose
//!   every call runs through the installed mediator chain,
//!
//! and for every QoS characteristic
//!
//! * a typed **parameter struct** (`<Q>Params`) with the declared
//!   defaults, convertible to negotiation parameter lists,
//! * operation-name constants (`mod <q>_ops`) for the management, peer
//!   and integration operations, and
//! * a typed **QoS skeleton** (`<Q>Ops` trait + `<Q>QosSkeleton`
//!   adapter onto `weaver::QosImplementation`) — the generated
//!   "QoS-Skel" of Fig. 2 that the QoS implementor fills in.
//!
//! Structs map to plain Rust structs with `to_any`/`from_any`.
//!
//! The output is a self-contained Rust module (usable via `mod x;` or
//! `include!`) depending only on the `orb` and `weaver` crates.

use crate::ast::*;
use crate::sema;
use std::fmt::Write;

/// Generate Rust source for a semantically checked [`Spec`].
///
/// The caller is responsible for having run [`crate::sema::check`] (or
/// [`crate::compile`], which includes it); generating from an unchecked
/// spec may produce non-compiling code.
pub fn generate(spec: &Spec) -> String {
    let mut g = Generator { spec, out: String::new() };
    g.file_header();
    for def in &spec.definitions {
        match def {
            Definition::Struct(s) => g.struct_def(s),
            Definition::Exception(e) => g.exception_def(e),
            Definition::Qos(q) => g.qos_def(q),
            Definition::Interface(i) => g.interface_def(i),
        }
    }
    g.out
}

struct Generator<'a> {
    spec: &'a Spec,
    out: String,
}

/// Rust type for a QIDL type.
fn rust_type(ty: &Type) -> String {
    match ty {
        Type::Void => "()".to_string(),
        Type::Boolean => "bool".to_string(),
        Type::Octet => "u8".to_string(),
        Type::Long => "i32".to_string(),
        Type::ULong => "u32".to_string(),
        Type::LongLong => "i64".to_string(),
        Type::ULongLong => "u64".to_string(),
        Type::Double => "f64".to_string(),
        Type::Str => "String".to_string(),
        Type::Any => "Any".to_string(),
        Type::Sequence(e) if **e == Type::Octet => "Vec<u8>".to_string(),
        Type::Sequence(e) => format!("Vec<{}>", rust_type(e)),
        Type::Named(n) => n.clone(),
    }
}

/// Expression converting typed `expr` into an `Any`.
fn to_any_expr(expr: &str, ty: &Type) -> String {
    match ty {
        Type::Void => "Any::Void".to_string(),
        Type::Boolean => format!("Any::Bool({expr})"),
        Type::Octet => format!("Any::Octet({expr})"),
        Type::Long => format!("Any::Long({expr})"),
        Type::ULong => format!("Any::ULong({expr})"),
        Type::LongLong => format!("Any::LongLong({expr})"),
        Type::ULongLong => format!("Any::ULongLong({expr})"),
        Type::Double => format!("Any::Double({expr})"),
        Type::Str => format!("Any::Str({expr})"),
        Type::Any => expr.to_string(),
        Type::Sequence(e) if **e == Type::Octet => format!("Any::Bytes({expr})"),
        Type::Sequence(e) => format!(
            "Any::Sequence({expr}.into_iter().map(|item| {}).collect())",
            to_any_expr("item", e)
        ),
        Type::Named(_) => format!("{expr}.to_any()"),
    }
}

/// Expression converting `&Any` expr into the typed value (inside a
/// function returning `Result<_, OrbError>`; uses `?`).
fn from_any_expr(expr: &str, ty: &Type, ctx: &str) -> String {
    match ty {
        Type::Void => "()".to_string(),
        Type::Boolean => format!("support::expect_bool({expr}, \"{ctx}\")?"),
        Type::Octet => format!("support::expect_octet({expr}, \"{ctx}\")?"),
        Type::Long => format!("support::expect_long({expr}, \"{ctx}\")?"),
        Type::ULong => format!("support::expect_ulong({expr}, \"{ctx}\")?"),
        Type::LongLong => format!("support::expect_longlong({expr}, \"{ctx}\")?"),
        Type::ULongLong => format!("support::expect_ulonglong({expr}, \"{ctx}\")?"),
        Type::Double => format!("support::expect_double({expr}, \"{ctx}\")?"),
        Type::Str => format!("support::expect_string({expr}, \"{ctx}\")?"),
        Type::Any => format!("({expr}).clone()"),
        Type::Sequence(e) if **e == Type::Octet => {
            format!("support::expect_bytes({expr}, \"{ctx}\")?")
        }
        Type::Sequence(e) => {
            let inner = from_any_expr("item", e, ctx);
            format!(
                "{{ let items = support::expect_seq({expr}, \"{ctx}\")?; \
                 let mut out = Vec::with_capacity(items.len()); \
                 for item in items {{ out.push({inner}); }} out }}"
            )
        }
        Type::Named(n) => format!("{n}::from_any({expr})?"),
    }
}

/// The outputs of an operation: return value first, then out/inout params.
fn outputs(op: &Operation) -> Vec<(String, Type)> {
    let mut outs = Vec::new();
    if op.ret != Type::Void {
        outs.push(("return value".to_string(), op.ret.clone()));
    }
    for p in &op.params {
        if matches!(p.direction, Direction::Out | Direction::InOut) {
            outs.push((p.name.clone(), p.ty.clone()));
        }
    }
    outs
}

/// The inputs of an operation: in and inout params.
fn inputs(op: &Operation) -> Vec<&Param> {
    op.params.iter().filter(|p| matches!(p.direction, Direction::In | Direction::InOut)).collect()
}

/// The Rust result type of an operation's outputs.
fn output_type(op: &Operation) -> String {
    let outs = outputs(op);
    match outs.len() {
        0 => "()".to_string(),
        1 => rust_type(&outs[0].1),
        _ => {
            let parts: Vec<String> = outs.iter().map(|(_, t)| rust_type(t)).collect();
            format!("({})", parts.join(", "))
        }
    }
}

fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

impl Generator<'_> {
    fn line(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn file_header(&mut self) {
        self.line("// Generated by the MAQS QIDL compiler. DO NOT EDIT.");
        self.line("// The conversion glue is uniform, not idiomatic; exactly these");
        self.line("// lints are expected of it, so only they are allowed.");
        self.line("#![allow(dead_code, unused_variables, unused_imports)]");
        self.line("#![allow(clippy::clone_on_copy, clippy::needless_borrow)]");
        self.line("#![allow(clippy::needless_question_mark, clippy::manual_is_multiple_of)]");
        self.line("");
        self.line("use orb::{Any, Ior, Orb, OrbError, Servant};");
        self.line("");
        self.line("/// Conversion helpers shared by the generated code.");
        self.line("pub mod support {");
        self.line("    use orb::{Any, OrbError};");
        for (name, ty, pat) in [
            ("expect_bool", "bool", "Any::Bool(x) => Ok(*x)"),
            ("expect_octet", "u8", "Any::Octet(x) => Ok(*x)"),
            ("expect_long", "i32", "Any::Long(x) => Ok(*x)"),
            ("expect_ulong", "u32", "Any::ULong(x) => Ok(*x)"),
            ("expect_longlong", "i64", "Any::LongLong(x) => Ok(*x)"),
            ("expect_ulonglong", "u64", "Any::ULongLong(x) => Ok(*x)"),
            ("expect_double", "f64", "Any::Double(x) => Ok(*x)"),
            ("expect_string", "String", "Any::Str(x) => Ok(x.clone())"),
            ("expect_bytes", "Vec<u8>", "Any::Bytes(x) => Ok(x.clone())"),
        ] {
            self.line(&format!(
                "    pub fn {name}(v: &Any, ctx: &str) -> Result<{ty}, OrbError> {{"
            ));
            self.line("        match v {");
            self.line(&format!("            {pat},"));
            self.line(&format!(
                "            other => Err(OrbError::BadParam(format!(\"{{ctx}}: expected {ty}, got {{other}}\"))),"
            ));
            self.line("        }");
            self.line("    }");
        }
        self.line(
            "    pub fn expect_seq<'a>(v: &'a Any, ctx: &str) -> Result<&'a [Any], OrbError> {",
        );
        self.line("        match v {");
        self.line("            Any::Sequence(items) => Ok(items),");
        self.line("            other => Err(OrbError::BadParam(format!(\"{ctx}: expected sequence, got {other}\"))),");
        self.line("        }");
        self.line("    }");
        self.line(
            "    pub fn expect_arity(args: &[Any], n: usize, ctx: &str) -> Result<(), OrbError> {",
        );
        self.line("        if args.len() == n { Ok(()) } else {");
        self.line("            Err(OrbError::BadParam(format!(\"{ctx}: expected {n} argument(s), got {}\", args.len())))");
        self.line("        }");
        self.line("    }");
        self.line("}");
        self.line("");
    }

    fn struct_def(&mut self, s: &StructDef) {
        self.line(&format!("/// QIDL struct `{}`.", s.name));
        self.line("#[derive(Debug, Clone, PartialEq, Default)]");
        self.line(&format!("pub struct {} {{", s.name));
        for (fname, fty) in &s.fields {
            self.line(&format!("    pub {fname}: {},", rust_type(fty)));
        }
        self.line("}");
        self.line("");
        self.line(&format!("impl {} {{", s.name));
        self.line("    /// Marshal into a self-describing `Any`.");
        self.line("    pub fn to_any(&self) -> Any {");
        self.line(&format!("        Any::Struct(\"{}\".to_string(), vec![", s.name));
        for (fname, fty) in &s.fields {
            let expr = to_any_expr(&format!("self.{fname}.clone()"), fty);
            self.line(&format!("            (\"{fname}\".to_string(), {expr}),"));
        }
        self.line("        ])");
        self.line("    }");
        self.line("    /// Unmarshal from an `Any`.");
        self.line("    pub fn from_any(v: &Any) -> Result<Self, OrbError> {");
        self.line("        let mut out = Self::default();");
        self.line("        match v {");
        self.line(&format!(
            "            Any::Struct(name, fields) if name == \"{}\" => {{",
            s.name
        ));
        self.line("                for (fname, fval) in fields {");
        self.line("                    match fname.as_str() {");
        for (fname, fty) in &s.fields {
            let conv = from_any_expr("fval", fty, &format!("{}.{}", s.name, fname));
            self.line(&format!("                        \"{fname}\" => out.{fname} = {conv},"));
        }
        self.line("                        _ => {}");
        self.line("                    }");
        self.line("                }");
        self.line("                Ok(out)");
        self.line("            }");
        self.line(&format!(
            "            other => Err(OrbError::BadParam(format!(\"expected struct {}, got {{other}}\"))),",
            s.name
        ));
        self.line("        }");
        self.line("    }");
        self.line("}");
        self.line("");
    }

    fn exception_def(&mut self, e: &ExceptionDef) {
        self.line(&format!("/// QIDL user exception `{}`.", e.name));
        self.line("#[derive(Debug, Clone, PartialEq, Default)]");
        self.line(&format!("pub struct {} {{", e.name));
        for (fname, fty) in &e.fields {
            self.line(&format!("    pub {fname}: {},", rust_type(fty)));
        }
        self.line("}");
        self.line("");
        self.line(&format!("impl {} {{", e.name));
        self.line("    /// Wire form used inside `OrbError::UserException`.");
        self.line("    pub fn to_orb_error(&self) -> OrbError {");
        let mut detail = format!("{}", e.name);
        detail.push_str("(");
        let parts: Vec<String> = e.fields.iter().map(|(f, _)| format!("{f}={{:?}}")).collect();
        detail.push_str(&parts.join(", "));
        detail.push(')');
        let args: Vec<String> = e.fields.iter().map(|(f, _)| format!("self.{f}")).collect();
        if args.is_empty() {
            self.line(&format!("        OrbError::UserException(\"{detail}\".to_string())"));
        } else {
            self.line(&format!(
                "        OrbError::UserException(format!(\"{detail}\", {}))",
                args.join(", ")
            ));
        }
        self.line("    }");
        self.line("    /// Whether a received error is this exception.");
        self.line("    pub fn matches(err: &OrbError) -> bool {");
        self.line(&format!(
            "        matches!(err, OrbError::UserException(s) if s.starts_with(\"{}(\"))",
            e.name
        ));
        self.line("    }");
        self.line("}");
        self.line("");
    }

    fn qos_def(&mut self, q: &QosDef) {
        let cat = q.category.as_deref().unwrap_or("uncategorized");
        self.line(&format!("/// Parameters of QoS characteristic `{}` (category: {cat}).", q.name));
        self.line("#[derive(Debug, Clone, PartialEq)]");
        self.line(&format!("pub struct {}Params {{", q.name));
        for p in &q.params {
            self.line(&format!("    pub {}: {},", p.name, rust_type(&p.ty)));
        }
        self.line("}");
        self.line("");
        self.line(&format!("impl Default for {}Params {{", q.name));
        self.line("    fn default() -> Self {");
        self.line("        Self {");
        for p in &q.params {
            let value = match (&p.default, &p.ty) {
                (Some(Literal::Int(v)), Type::Double) => format!("{v}f64"),
                (Some(Literal::Int(v)), _) => v.to_string(),
                (Some(Literal::Float(v)), _) => format!("{v}f64"),
                (Some(Literal::Str(s)), _) => format!("{s:?}.to_string()"),
                (Some(Literal::Bool(b)), _) => b.to_string(),
                (None, _) => "Default::default()".to_string(),
            };
            self.line(&format!("            {}: {value},", p.name));
        }
        self.line("        }");
        self.line("    }");
        self.line("}");
        self.line("");
        self.line(&format!("impl {}Params {{", q.name));
        self.line("    /// As `(name, value)` pairs for negotiation / QoS contexts.");
        self.line("    pub fn to_pairs(&self) -> Vec<(String, Any)> {");
        self.line("        vec![");
        for p in &q.params {
            let expr = to_any_expr(&format!("self.{}.clone()", p.name), &p.ty);
            self.line(&format!("            (\"{}\".to_string(), {expr}),", p.name));
        }
        self.line("        ]");
        self.line("    }");
        self.line("}");
        self.line("");
        self.line(&format!(
            "/// Operation names of QoS characteristic `{}`, by responsibility.",
            q.name
        ));
        self.line(&format!("pub mod {}_ops {{", snake(&q.name)));
        for (group, ops) in
            [("management", &q.management), ("peer", &q.peer), ("integration", &q.integration)]
        {
            for op in ops {
                self.line(&format!("    /// {group} operation `{}`.", op.name));
                self.line(&format!(
                    "    pub const {}: &str = \"{}\";",
                    op.name.to_uppercase(),
                    op.name
                ));
            }
        }
        self.line("}");
        self.line("");
        self.qos_skeleton(q);
    }

    /// The Fig. 2 server-side QoS skeleton: a typed trait for the QoS
    /// implementor plus an adapter onto `weaver::QosImplementation`.
    fn qos_skeleton(&mut self, q: &QosDef) {
        let name = &q.name;
        self.line(&format!("/// Server-side operations of QoS characteristic `{name}` — the"));
        self.line("/// QoS implementor fills this in (Fig. 2's \"QoS-Impl.\" box).");
        self.line(&format!("pub trait {name}Ops: Send + Sync {{"));
        for op in q.all_operations() {
            let mut sig = format!("    fn {}(&self, server: &dyn Servant", op.name);
            for p in inputs(op) {
                sig.push_str(&format!(", {}: {}", p.name, rust_type(&p.ty)));
            }
            sig.push_str(&format!(") -> Result<{}, OrbError>;", output_type(op)));
            self.line(&sig);
        }
        self.line("    /// Called before each application request (veto = error).");
        self.line("    fn prolog(&self, op: &str, args: &[Any]) -> Result<(), OrbError> {");
        self.line("        let (_, _) = (op, args);");
        self.line("        Ok(())");
        self.line("    }");
        self.line("    /// Called after each application request.");
        self.line(
            "    fn epilog(&self, op: &str, args: &[Any], result: &mut Result<Any, OrbError>) {",
        );
        self.line("        let (_, _, _) = (op, args, result);");
        self.line("    }");
        self.line("}");
        self.line("");
        self.line(&format!("/// Adapter from a typed [`{name}Ops`] implementation onto the"));
        self.line("/// runtime weaving layer; install into a `weaver::WovenServant`.");
        self.line(&format!("pub struct {name}QosSkeleton<T: {name}Ops> {{"));
        self.line("    inner: T,");
        self.line("}");
        self.line("");
        self.line(&format!("impl<T: {name}Ops> {name}QosSkeleton<T> {{"));
        self.line("    /// Wrap a typed QoS implementation.");
        self.line("    pub fn new(inner: T) -> Self {");
        self.line("        Self { inner }");
        self.line("    }");
        self.line("}");
        self.line("");
        self.line(&format!(
            "impl<T: {name}Ops> weaver::QosImplementation for {name}QosSkeleton<T> {{"
        ));
        self.line("    fn characteristic(&self) -> &str {");
        self.line(&format!("        \"{name}\""));
        self.line("    }");
        self.line("    fn prolog(&self, op: &str, args: &[Any]) -> Result<(), OrbError> {");
        self.line("        self.inner.prolog(op, args)");
        self.line("    }");
        self.line(
            "    fn epilog(&self, op: &str, args: &[Any], result: &mut Result<Any, OrbError>) {",
        );
        self.line("        self.inner.epilog(op, args, result)");
        self.line("    }");
        self.line("    fn qos_op(&self, op: &str, args: &[Any], server: &dyn Servant) -> Result<Any, OrbError> {");
        self.line("        match op {");
        for op in q.all_operations() {
            let ins = inputs(op);
            let outs = outputs(op);
            self.line(&format!("            \"{}\" => {{", op.name));
            self.line(&format!(
                "                support::expect_arity(args, {}, \"{}\")?;",
                ins.len(),
                op.name
            ));
            for (idx, prm) in ins.iter().enumerate() {
                let conv = from_any_expr(
                    &format!("&args[{idx}]"),
                    &prm.ty,
                    &format!("{}.{}", op.name, prm.name),
                );
                self.line(&format!("                let {} = {conv};", prm.name));
            }
            let call_args: Vec<&str> = ins.iter().map(|p| p.name.as_str()).collect();
            let call = if call_args.is_empty() {
                format!("self.inner.{}(server)", op.name)
            } else {
                format!("self.inner.{}(server, {})", op.name, call_args.join(", "))
            };
            match outs.len() {
                0 => {
                    self.line(&format!("                {call}?;"));
                    self.line("                Ok(Any::Void)");
                }
                1 => {
                    self.line(&format!("                let out = {call}?;"));
                    self.line(&format!("                Ok({})", to_any_expr("out", &outs[0].1)));
                }
                n => {
                    let names: Vec<String> = (0..n).map(|k| format!("out{k}")).collect();
                    self.line(&format!("                let ({}) = {call}?;", names.join(", ")));
                    self.line("                Ok(Any::Sequence(vec![");
                    for (k, (_, ty)) in outs.iter().enumerate() {
                        self.line(&format!(
                            "                    {},",
                            to_any_expr(&format!("out{k}"), ty)
                        ));
                    }
                    self.line("                ]))");
                }
            }
            self.line("            }");
        }
        self.line("            _ => Err(OrbError::BadOperation(format!(");
        self.line(&format!("                \"{{op}} is not a QoS operation of {name}\""));
        self.line("            ))),");
        self.line("        }");
        self.line("    }");
        self.line("}");
        self.line("");
    }

    fn interface_def(&mut self, i: &InterfaceDef) {
        let ops = sema::flattened_operations(self.spec, i);
        let name = &i.name;

        // -- application trait ------------------------------------------
        self.line(&format!("/// Application logic of QIDL interface `{name}` — implement this."));
        let supertraits = if i.inherits.is_empty() {
            "Send + Sync".to_string()
        } else {
            format!("{} + Send + Sync", i.inherits.join(" + "))
        };
        self.line(&format!("pub trait {name}: {supertraits} {{"));
        for op in &i.operations {
            self.trait_method(op);
        }
        for a in &i.attributes {
            self.line(&format!(
                "    fn {}(&self) -> Result<{}, OrbError>;",
                a.name,
                rust_type(&a.ty)
            ));
            if !a.readonly {
                self.line(&format!(
                    "    fn set_{}(&self, value: {}) -> Result<(), OrbError>;",
                    a.name,
                    rust_type(&a.ty)
                ));
            }
        }
        self.line("}");
        self.line("");

        // -- servant adapter (server skeleton, Fig. 2) -------------------
        self.line(&format!("/// Server skeleton for `{name}`: maps wire requests onto a typed"));
        self.line("/// implementation. Wrap in `weaver::WovenServant` to attach QoS.");
        self.line(&format!("pub struct {name}Servant<T: {name}> {{"));
        self.line("    inner: T,");
        self.line("}");
        self.line("");
        self.line(&format!("impl<T: {name}> {name}Servant<T> {{"));
        self.line("    /// Wrap a typed implementation.");
        self.line("    pub fn new(inner: T) -> Self {");
        self.line("        Self { inner }");
        self.line("    }");
        self.line("    /// Access the wrapped implementation.");
        self.line("    pub fn inner(&self) -> &T {");
        self.line("        &self.inner");
        self.line("    }");
        self.line("}");
        self.line("");
        self.line(&format!("impl<T: {name}> Servant for {name}Servant<T> {{"));
        self.line("    fn interface_id(&self) -> &str {");
        self.line(&format!("        \"{}\"", i.repository_id()));
        self.line("    }");
        self.line("    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {");
        self.line("        match op {");
        for op in &ops {
            self.dispatch_arm(op);
        }
        for a in &i.attributes {
            self.line(&format!("            \"get_{}\" => {{", a.name));
            self.line(&format!(
                "                support::expect_arity(args, 0, \"get_{}\")?;",
                a.name
            ));
            self.line(&format!("                let value = self.inner.{}()?;", a.name));
            self.line(&format!("                Ok({})", to_any_expr("value", &a.ty)));
            self.line("            }");
            if !a.readonly {
                self.line(&format!("            \"set_{}\" => {{", a.name));
                self.line(&format!(
                    "                support::expect_arity(args, 1, \"set_{}\")?;",
                    a.name
                ));
                let conv = from_any_expr("&args[0]", &a.ty, &format!("set_{}", a.name));
                self.line(&format!("                self.inner.set_{}({conv})?;", a.name));
                self.line("                Ok(Any::Void)");
                self.line("            }");
            }
        }
        self.line("            _ => Err(OrbError::BadOperation(op.to_string())),");
        self.line("        }");
        self.line("    }");
        self.line("}");
        self.line("");

        // -- typed client stub -------------------------------------------
        self.line(&format!("/// Typed client stub for `{name}` with a runtime mediator delegate"));
        self.line("/// (the client half of the QIDL weaving).");
        self.line("#[derive(Debug, Clone)]");
        self.line(&format!("pub struct {name}Stub {{"));
        self.line("    stub: weaver::ClientStub,");
        self.line("}");
        self.line("");
        self.line(&format!("impl {name}Stub {{"));
        self.line("    /// A stub invoking `target` through `orb`.");
        self.line("    pub fn new(orb: Orb, target: Ior) -> Self {");
        self.line("        Self { stub: weaver::ClientStub::new(orb, target) }");
        self.line("    }");
        self.line("    /// The underlying dynamic stub (mediator installation etc.).");
        self.line("    pub fn stub(&self) -> &weaver::ClientStub {");
        self.line("        &self.stub");
        self.line("    }");
        for op in &ops {
            self.stub_method(op);
        }
        for a in &i.attributes {
            self.line(&format!("    /// Read attribute `{}`.", a.name));
            self.line(&format!(
                "    pub fn {}(&self) -> Result<{}, OrbError> {{",
                a.name,
                rust_type(&a.ty)
            ));
            self.line(&format!("        let reply = self.stub.invoke(\"get_{}\", &[])?;", a.name));
            let conv = from_any_expr("&reply", &a.ty, &format!("get_{}", a.name));
            self.line(&format!("        Ok({conv})"));
            self.line("    }");
            if !a.readonly {
                self.line(&format!("    /// Write attribute `{}`.", a.name));
                self.line(&format!(
                    "    pub fn set_{}(&self, value: {}) -> Result<(), OrbError> {{",
                    a.name,
                    rust_type(&a.ty)
                ));
                let arg = to_any_expr("value", &a.ty);
                self.line(&format!("        self.stub.invoke(\"set_{}\", &[{arg}])?;", a.name));
                self.line("        Ok(())");
                self.line("    }");
            }
        }
        self.line("}");
        self.line("");
    }

    fn trait_method(&mut self, op: &Operation) {
        let mut sig = format!("    fn {}(&self", op.name);
        for p in inputs(op) {
            let _ = write!(sig, ", {}: {}", p.name, rust_type(&p.ty));
        }
        let _ = write!(sig, ") -> Result<{}, OrbError>;", output_type(op));
        self.line(&sig);
    }

    fn dispatch_arm(&mut self, op: &Operation) {
        let ins = inputs(op);
        let outs = outputs(op);
        self.line(&format!("            \"{}\" => {{", op.name));
        self.line(&format!(
            "                support::expect_arity(args, {}, \"{}\")?;",
            ins.len(),
            op.name
        ));
        for (idx, p) in ins.iter().enumerate() {
            let conv =
                from_any_expr(&format!("&args[{idx}]"), &p.ty, &format!("{}.{}", op.name, p.name));
            self.line(&format!("                let {} = {conv};", p.name));
        }
        let call_args: Vec<&str> = ins.iter().map(|p| p.name.as_str()).collect();
        let call = format!("self.inner.{}({})", op.name, call_args.join(", "));
        match outs.len() {
            0 => {
                self.line(&format!("                {call}?;"));
                self.line("                Ok(Any::Void)");
            }
            1 => {
                self.line(&format!("                let out = {call}?;"));
                self.line(&format!("                Ok({})", to_any_expr("out", &outs[0].1)));
            }
            n => {
                let names: Vec<String> = (0..n).map(|k| format!("out{k}")).collect();
                self.line(&format!("                let ({}) = {call}?;", names.join(", ")));
                self.line("                Ok(Any::Sequence(vec![");
                for (k, (_, ty)) in outs.iter().enumerate() {
                    self.line(&format!(
                        "                    {},",
                        to_any_expr(&format!("out{k}"), ty)
                    ));
                }
                self.line("                ]))");
            }
        }
        self.line("            }");
    }

    fn stub_method(&mut self, op: &Operation) {
        let ins = inputs(op);
        let outs = outputs(op);
        self.line(&format!("    /// Invoke `{}` through the mediator chain.", op.name));
        let mut sig = format!("    pub fn {}(&self", op.name);
        for p in &ins {
            let _ = write!(sig, ", {}: {}", p.name, rust_type(&p.ty));
        }
        let _ = write!(sig, ") -> Result<{}, OrbError> {{", output_type(op));
        self.line(&sig);
        let arg_exprs: Vec<String> = ins.iter().map(|p| to_any_expr(&p.name, &p.ty)).collect();
        if op.oneway {
            self.line(&format!(
                "        self.stub.orb().invoke_oneway(self.stub.target(), \"{}\", &[{}], None)",
                op.name,
                arg_exprs.join(", ")
            ));
            self.line("    }");
            return;
        }
        self.line(&format!(
            "        let reply = self.stub.invoke(\"{}\", &[{}])?;",
            op.name,
            arg_exprs.join(", ")
        ));
        match outs.len() {
            0 => {
                self.line("        let _ = reply;");
                self.line("        Ok(())");
            }
            1 => {
                let conv = from_any_expr("&reply", &outs[0].1, &op.name);
                self.line(&format!("        Ok({conv})"));
            }
            n => {
                self.line(&format!(
                    "        let items = support::expect_seq(&reply, \"{}\")?;",
                    op.name
                ));
                self.line(&format!("        support::expect_arity(items, {n}, \"{}\")?;", op.name));
                let convs: Vec<String> = outs
                    .iter()
                    .enumerate()
                    .map(|(k, (_, ty))| from_any_expr(&format!("&items[{k}]"), ty, &op.name))
                    .collect();
                self.line(&format!("        Ok(({}))", convs.join(", ")));
            }
        }
        self.line("    }");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SRC: &str = r#"
        exception FeedDown {
            string venue;
            long long since;
        };
        struct Quote {
            string symbol;
            double price;
            sequence<octet> payload;
            sequence<double> history;
        };
        qos Compression category performance {
            param long level = 6;
            param boolean adaptive = TRUE;
            param string codec = "lz";
            param double ratio_target = 0.5;
            management { void set_level(in long level); long get_level(); };
            peer { void hello(in string peer_name); };
        };
        interface Feed {
            Quote latest(in string symbol) raises (FeedDown);
        };
        interface Ticker : Feed with qos Compression {
            sequence<Quote> history(in string symbol, in unsigned long n);
            void multi(in string a, inout long b, out double c);
            oneway void nudge(in string who);
            readonly attribute string venue;
            attribute long depth;
        };
    "#;

    fn generated() -> String {
        generate(&compile(SRC).unwrap())
    }

    #[test]
    fn emits_struct_with_conversions() {
        let g = generated();
        assert!(g.contains("pub struct Quote {"));
        assert!(g.contains("pub symbol: String,"));
        assert!(g.contains("pub payload: Vec<u8>,"));
        assert!(g.contains("pub history: Vec<f64>,"));
        assert!(g.contains("pub fn to_any(&self) -> Any"));
        assert!(g.contains("pub fn from_any(v: &Any) -> Result<Self, OrbError>"));
    }

    #[test]
    fn emits_exception_type_with_helpers() {
        let g = generated();
        assert!(g.contains("pub struct FeedDown {"));
        assert!(g.contains("pub fn to_orb_error(&self) -> OrbError"));
        assert!(g.contains("pub fn matches(err: &OrbError) -> bool"));
        assert!(g.contains("s.starts_with(\"FeedDown(\")"));
    }

    #[test]
    fn emits_qos_params_with_defaults() {
        let g = generated();
        assert!(g.contains("pub struct CompressionParams {"));
        assert!(g.contains("level: 6,"));
        assert!(g.contains("adaptive: true,"));
        assert!(g.contains("codec: \"lz\".to_string(),"));
        assert!(g.contains("ratio_target: 0.5f64,"));
        assert!(g.contains("pub fn to_pairs(&self) -> Vec<(String, Any)>"));
    }

    #[test]
    fn emits_typed_qos_skeleton() {
        let g = generated();
        assert!(g.contains("pub trait CompressionOps: Send + Sync {"));
        assert!(g.contains(
            "fn set_level(&self, server: &dyn Servant, level: i32) -> Result<(), OrbError>;"
        ));
        assert!(g.contains("fn get_level(&self, server: &dyn Servant) -> Result<i32, OrbError>;"));
        assert!(g.contains("pub struct CompressionQosSkeleton<T: CompressionOps>"));
        assert!(g.contains(
            "impl<T: CompressionOps> weaver::QosImplementation for CompressionQosSkeleton<T>"
        ));
        assert!(g.contains("\"set_level\" => {"));
        // prolog/epilog hooks with defaults are part of the trait.
        assert!(g.contains("fn prolog(&self, op: &str, args: &[Any]) -> Result<(), OrbError> {"));
    }

    #[test]
    fn emits_qos_op_constants() {
        let g = generated();
        assert!(g.contains("pub mod compression_ops {"));
        assert!(g.contains("pub const SET_LEVEL: &str = \"set_level\";"));
        assert!(g.contains("pub const HELLO: &str = \"hello\";"));
    }

    #[test]
    fn emits_application_trait_with_inheritance() {
        let g = generated();
        assert!(g.contains("pub trait Feed: Send + Sync {"));
        assert!(g.contains("pub trait Ticker: Feed + Send + Sync {"));
        assert!(g.contains("fn latest(&self, symbol: String) -> Result<Quote, OrbError>;"));
        // multi: ret void, b inout, c out => outputs (i32, f64)
        assert!(
            g.contains("fn multi(&self, a: String, b: i64) -> Result<(i64, f64), OrbError>;")
                || g.contains(
                    "fn multi(&self, a: String, b: i32) -> Result<(i32, f64), OrbError>;"
                )
        );
    }

    #[test]
    fn servant_dispatch_includes_inherited_and_attributes() {
        let g = generated();
        assert!(g.contains("pub struct TickerServant<T: Ticker>"));
        assert!(g.contains("\"IDL:Ticker:1.0\""));
        assert!(g.contains("\"latest\" =>")); // inherited from Feed
        assert!(g.contains("\"history\" =>"));
        assert!(g.contains("\"get_venue\" =>"));
        assert!(g.contains("\"get_depth\" =>"));
        assert!(g.contains("\"set_depth\" =>"));
        // readonly attribute has no setter
        assert!(!g.contains("\"set_venue\""));
        assert!(g.contains("Err(OrbError::BadOperation(op.to_string()))"));
    }

    #[test]
    fn stub_has_typed_methods_and_oneway() {
        let g = generated();
        assert!(g.contains("pub struct TickerStub {"));
        assert!(g.contains("pub fn latest(&self, symbol: String) -> Result<Quote, OrbError>"));
        assert!(g.contains("invoke_oneway(self.stub.target(), \"nudge\""));
        assert!(g.contains("pub fn venue(&self) -> Result<String, OrbError>"));
        assert!(g.contains("pub fn set_depth(&self, value: i32) -> Result<(), OrbError>"));
    }

    #[test]
    fn generated_code_has_no_todo_markers() {
        let g = generated();
        assert!(!g.contains("todo!"));
        assert!(!g.contains("unimplemented!"));
    }

    #[test]
    fn snake_case_helper() {
        assert_eq!(snake("Compression"), "compression");
        assert_eq!(snake("LoadBalancing"), "load_balancing");
        assert_eq!(snake("already_snake"), "already_snake");
    }

    #[test]
    fn empty_spec_generates_only_header() {
        let g = generate(&compile("").unwrap());
        assert!(g.contains("Generated by the MAQS QIDL compiler"));
        assert!(g.contains("pub mod support {"));
        assert!(!g.contains("pub trait"));
    }
}
