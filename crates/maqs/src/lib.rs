//! MAQS-RS: a reproduction of the **M**anagement **A**rchitecture for
//! **Q**uality of **S**ervice (Becker & Geihs, ICDCS 2001) in Rust.
//!
//! The paper separates QoS from application logic on two levels:
//! aspect-oriented weaving on the application layer (QIDL, mediators,
//! woven skeletons with prolog/epilog — §3) and reflective, dynamically
//! loadable QoS modules inside the ORB (§4). This crate is the facade
//! over the full stack:
//!
//! | layer | crate |
//! |---|---|
//! | network simulator | [`netsim`] |
//! | CORBA-like ORB, QoS transport | [`orb`] |
//! | QIDL language + compiler/weaver | [`qidl`] |
//! | runtime weaving (mediator / woven skeleton) | [`weaver`] |
//! | group communication | [`groupcomm`] |
//! | the five QoS characteristics | [`qosmech`] |
//! | negotiation, monitoring, trading, accounting | [`services`] |
//!
//! [`MaqsNode`] wires one node's worth of that stack together: an ORB, a
//! frozen interface repository, a negotiation servant and a trader.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use maqs::prelude::*;
//!
//! // Application logic — no QoS anywhere in here.
//! struct Greeter;
//! impl Servant for Greeter {
//!     fn interface_id(&self) -> &str { "IDL:Greeter:1.0" }
//!     fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
//!         match op {
//!             "greet" => Ok(Any::Str(format!(
//!                 "hello, {}", args[0].as_str().unwrap_or("?")))),
//!             _ => Err(OrbError::BadOperation(op.into())),
//!         }
//!     }
//! }
//!
//! let net = netsim::Network::new(1);
//! let server = MaqsNode::builder(&net, "server")
//!     .spec("interface Greeter with qos Actuality { string greet(in string who); };")
//!     .build()
//!     .unwrap();
//! let client = MaqsNode::builder(&net, "client").build().unwrap();
//!
//! let ior = server
//!     .serve_woven("greeter", Arc::new(Greeter), "Greeter")
//!     .unwrap();
//! let reply = client.orb().invoke(&ior, "greet", &[Any::from("world")]).unwrap();
//! assert_eq!(reply.as_str(), Some("hello, world"));
//! # server.shutdown(); client.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod lint;
mod node;

pub use node::{MaqsNode, MaqsNodeBuilder};

/// One-stop imports for MAQS applications.
pub mod prelude {
    pub use crate::{MaqsNode, MaqsNodeBuilder};
    pub use netsim::{LinkModel, Network};
    pub use orb::{Any, Ior, Orb, OrbError, Servant};
    pub use qidl::InterfaceRepository;
    pub use services::{Agreement, ContractHierarchy, ContractNode, Negotiator, Offer};
    pub use weaver::{Call, ClientStub, Mediator, Next, QosImplementation, WovenServant};
}

// Re-export the stack for users who need the full depth.
pub use groupcomm;
pub use netsim;
pub use orb;
pub use qidl;
pub use qoslint;
pub use qosmech;
pub use services;
pub use weaver;
