//! MAQS-RS: a reproduction of the **M**anagement **A**rchitecture for
//! **Q**uality of **S**ervice (Becker & Geihs, ICDCS 2001) in Rust.
//!
//! The paper separates QoS from application logic on two levels:
//! aspect-oriented weaving on the application layer (QIDL, mediators,
//! woven skeletons with prolog/epilog — §3) and reflective, dynamically
//! loadable QoS modules inside the ORB (§4). This crate is the facade
//! over the full stack:
//!
//! | layer | crate |
//! |---|---|
//! | network simulator | [`netsim`] |
//! | CORBA-like ORB, QoS transport | [`orb`] |
//! | QIDL language + compiler/weaver | [`qidl`] |
//! | runtime weaving (mediator / woven skeleton) | [`weaver`] |
//! | group communication | [`groupcomm`] |
//! | the five QoS characteristics | [`qosmech`] |
//! | negotiation, monitoring, trading, accounting | [`services`] |
//!
//! [`MaqsNode`] wires one node's worth of that stack together: an ORB, a
//! frozen interface repository, a negotiation servant, a trader, and a
//! QoS monitor fed by real request measurements.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use maqs::prelude::*;
//!
//! // Application logic — no QoS anywhere in here.
//! struct Greeter;
//! impl Servant for Greeter {
//!     fn interface_id(&self) -> &str { "IDL:Greeter:1.0" }
//!     fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
//!         match op {
//!             "greet" => Ok(Any::Str(format!(
//!                 "hello, {}", args[0].as_str().unwrap_or("?")))),
//!             _ => Err(OrbError::BadOperation(op.into())),
//!         }
//!     }
//! }
//!
//! let net = netsim::Network::new(1);
//! let server = MaqsNode::builder(&net, "server")
//!     .spec("interface Greeter with qos Actuality { string greet(in string who); };")
//!     .build()
//!     .unwrap();
//! let client = MaqsNode::builder(&net, "client").build().unwrap();
//!
//! let ior = server
//!     .serve("greeter", Arc::new(Greeter), ServeOptions::interface("Greeter"))
//!     .unwrap();
//! let reply = client.stub(&ior).invoke("greet", &[Any::from("world")]).unwrap();
//! assert_eq!(reply.as_str(), Some("hello, world"));
//!
//! // Every reply carries the request's trace: a per-layer cost
//! // breakdown of this one call, one trace id end to end.
//! let trace = maqs::trace_of(&reply).unwrap();
//! assert!(trace.spans.iter().any(|s| s.layer == "servant"));
//! println!("{}", maqs::report::render_trace_human(trace));
//! # server.shutdown(); client.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demo;
pub mod error;
pub mod heal;
pub mod lint;
mod node;
pub mod report;

pub use error::Error;
pub use heal::{AdaptationEngine, SelfHealingPolicy};
pub use node::{LintPolicy, MaqsNode, MaqsNodeBuilder, ServeOptions};

/// The trace carried by `reply`, if the request path recorded one.
///
/// Convenience for `reply.trace.as_ref()`; pairs with
/// [`report::render_trace_human`] / [`report::render_trace_json`].
pub fn trace_of(reply: &weaver::Reply) -> Option<&orb::TraceContext> {
    reply.trace.as_ref()
}

/// One-stop imports for MAQS applications.
pub mod prelude {
    pub use crate::{
        AdaptationEngine, Error, LintPolicy, MaqsNode, MaqsNodeBuilder, SelfHealingPolicy,
        ServeOptions,
    };
    pub use netsim::{FaultScript, LinkModel, Network};
    pub use orb::{Any, Ior, MetricsSnapshot, Orb, OrbError, Servant, TraceContext};
    pub use qidl::InterfaceRepository;
    pub use services::{
        AdaptationEvent, Agreement, ContractHierarchy, ContractNode, DegradationLadder,
        LadderStep, Negotiator, Offer, StepOutcome,
    };
    pub use weaver::{
        BreakerConfig, Call, CircuitState, ClientStub, Mediator, Next, QosImplementation, Reply,
        ResilienceMediator, ResiliencePolicy, WovenServant,
    };
}

// Re-export the stack for users who need the full depth.
pub use groupcomm;
pub use netsim;
pub use orb;
pub use qidl;
pub use qoslint;
pub use qosmech;
pub use services;
pub use weaver;
