//! The facade's unified error type.
//!
//! The stack below has two error worlds: [`OrbError`] for everything on
//! the request path and [`QidlError`] for the compiler front end. Facade
//! operations can hit either (a node builder compiles specs; serving
//! weaves and activates), so they return one [`Error`] with stable
//! `source()` chains back to the underlying cause.

use orb::OrbError;
use qidl::QidlError;
use std::fmt;

/// Any failure a MAQS facade operation can produce.
#[derive(Debug)]
pub enum Error {
    /// A request-path / broker failure.
    Orb(OrbError),
    /// A QIDL compilation or repository failure.
    Qidl(QidlError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Orb(e) => write!(f, "orb error: {e}"),
            Error::Qidl(e) => write!(f, "qidl error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Orb(e) => Some(e),
            Error::Qidl(e) => Some(e),
        }
    }
}

impl From<OrbError> for Error {
    fn from(e: OrbError) -> Error {
        Error::Orb(e)
    }
}

impl From<QidlError> for Error {
    fn from(e: QidlError) -> Error {
        Error::Qidl(e)
    }
}

impl Error {
    /// Collapse back into an [`OrbError`] (for the deprecated shims that
    /// predate this type). QIDL failures become `BadParam`.
    pub fn into_orb(self) -> OrbError {
        match self {
            Error::Orb(e) => e,
            Error::Qidl(e) => OrbError::BadParam(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn from_and_source_chain() {
        let e: Error = OrbError::BadOperation("frob".to_string()).into();
        assert!(matches!(e, Error::Orb(_)));
        let src = e.source().expect("source preserved");
        assert!(src.to_string().contains("frob"), "{src}");
        assert!(e.to_string().starts_with("orb error:"));
    }

    #[test]
    fn qidl_side_converts_and_collapses() {
        let qerr = qidl::compile("interface {").unwrap_err();
        let e: Error = qerr.into();
        assert!(matches!(e, Error::Qidl(_)));
        assert!(e.source().is_some());
        assert!(matches!(e.into_orb(), OrbError::BadParam(_)));
    }

    #[test]
    fn orb_side_collapses_losslessly() {
        let e: Error = OrbError::QosViolation("cap".to_string()).into();
        assert!(matches!(e.into_orb(), OrbError::QosViolation(msg) if msg == "cap"));
    }
}
