//! Self-healing bindings: the adaptation engine.
//!
//! The pieces live in three layers — the resilience mediator
//! ([`weaver::resilience`]) enforces per-call behaviour, the monitor
//! ([`services::monitoring`]) detects agreement violations, and the
//! degradation ladder ([`services::adaptation`]) names the possible
//! reactions. This module is the loop that connects them: an
//! [`AdaptationEngine`] subscribes to the client node's monitor, and
//! whenever a guarded binding violates its agreement it walks the
//! ladder, one rung per violation cascade, until a rung heals the
//! binding or the ladder is exhausted:
//!
//! * **renegotiate** — keep the characteristic, relax the terms through
//!   the server's negotiation servant ([`services::Negotiator`]);
//! * **fallback** — release the agreement and negotiate a weaker
//!   characteristic;
//! * **rebind** — probe the replica group with the failure detector and
//!   point the resilience mediator at a live member;
//! * **fail static** — serve last-known-good replies for reads, reject
//!   writes with a typed error.
//!
//! Each attempted rung is recorded as an
//! [`AdaptationEvent`](services::AdaptationEvent) — render the log with
//! [`crate::report::render_adaptation_human`] /
//! [`render_adaptation_json`](crate::report::render_adaptation_json).
//! The cursor only moves down: a binding degrades deterministically and
//! never silently un-degrades (operators decide when to climb back).

use groupcomm::FailureDetector;
use netsim::NodeId;
use orb::retry::RetryPolicy;
use orb::{Ior, Orb};
use parking_lot::{Mutex, RwLock};
use services::adaptation::{
    relax_params, AdaptationEvent, AdaptationLog, DegradationLadder, LadderStep, StepOutcome,
};
use services::monitoring::{Bound, Monitor, Statistic, ViolationEvent};
use services::{Agreement, Negotiator, Offer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;
use weaver::resilience::{
    deadline_from_params, BreakerConfig, FailStaticMode, ResilienceMediator, ResiliencePolicy,
};
use weaver::{ClientStub, Mediator};

/// Everything [`MaqsNode::enable_self_healing`](crate::MaqsNode::enable_self_healing)
/// needs to know: the ladder to walk, where the replicas are, and the
/// per-call resilience parameters each guarded binding starts with.
#[derive(Debug, Clone)]
pub struct SelfHealingPolicy {
    /// The degradation ladder violations walk, least drastic first.
    pub ladder: DegradationLadder,
    /// Known replicas of the guarded objects (rebind candidates).
    pub replicas: Vec<Ior>,
    /// Per-probe timeout for the rebind failure detector.
    pub probe_timeout: Duration,
    /// Retry policy applied within each call's deadline budget.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds for each guarded binding.
    pub breaker: BreakerConfig,
}

impl SelfHealingPolicy {
    /// A policy walking `ladder`, with no replicas, a 250 ms probe
    /// timeout, and default retry/breaker parameters.
    pub fn new(ladder: DegradationLadder) -> SelfHealingPolicy {
        SelfHealingPolicy {
            ladder,
            replicas: Vec::new(),
            probe_timeout: Duration::from_millis(250),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }

    /// Set the rebind candidates.
    #[must_use]
    pub fn with_replicas(mut self, replicas: Vec<Ior>) -> SelfHealingPolicy {
        self.replicas = replicas;
        self
    }

    /// Set the failure-detector probe timeout.
    #[must_use]
    pub fn with_probe_timeout(mut self, timeout: Duration) -> SelfHealingPolicy {
        self.probe_timeout = timeout;
        self
    }

    /// Set the in-budget retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> SelfHealingPolicy {
        self.retry = retry;
        self
    }

    /// Set the circuit-breaker thresholds.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> SelfHealingPolicy {
        self.breaker = breaker;
        self
    }
}

/// One guarded binding.
struct Guard {
    object: String,
    server: NodeId,
    stub: ClientStub,
    mediator: Arc<ResilienceMediator>,
    agreement: Mutex<Agreement>,
    /// Next ladder rung to try; only ever advances.
    cursor: AtomicUsize,
    /// Re-entrancy latch: violations raised *while healing* (the repair
    /// itself makes calls) must not recurse into the ladder.
    healing: AtomicBool,
}

/// The violation-to-repair loop of a self-healing client node.
///
/// Created by [`MaqsNode::enable_self_healing`](crate::MaqsNode::enable_self_healing);
/// guard individual bindings with [`AdaptationEngine::guard`].
pub struct AdaptationEngine {
    orb: Orb,
    monitor: Arc<Monitor>,
    policy: SelfHealingPolicy,
    log: AdaptationLog,
    guards: RwLock<HashMap<String, Arc<Guard>>>,
}

/// The metrics a guarded agreement watches on the client monitor.
const GUARDED_METRICS: &[&str] = &["latency_us", "availability", "staleness_us"];

impl AdaptationEngine {
    /// Build the engine and subscribe it to `monitor`'s violations.
    pub(crate) fn install(
        orb: Orb,
        monitor: Arc<Monitor>,
        policy: SelfHealingPolicy,
    ) -> Arc<AdaptationEngine> {
        let engine = Arc::new(AdaptationEngine {
            orb,
            monitor: Arc::clone(&monitor),
            policy,
            log: AdaptationLog::new(),
            guards: RwLock::new(HashMap::new()),
        });
        // Weak: the engine owns the monitor, the monitor's handler list
        // must not own the engine back.
        let weak: Weak<AdaptationEngine> = Arc::downgrade(&engine);
        monitor.on_violation(Arc::new(move |event: &ViolationEvent| {
            if let Some(engine) = weak.upgrade() {
                engine.on_violation(event);
            }
        }));
        engine
    }

    /// Put the binding behind `stub` under self-healing guard.
    ///
    /// Installs a [`ResilienceMediator`] (deadline from the agreement's
    /// `deadline_ms`, retry/breaker from the engine policy) as the
    /// outermost chain link, points its observer at the client monitor,
    /// derives monitor rules from the agreement's parameters, and
    /// attaches the agreement's wire context to the stub. From then on
    /// every violation of those rules walks the degradation ladder.
    ///
    /// Returns the installed mediator for introspection (circuit state,
    /// fail-static flag).
    pub fn guard(
        &self,
        stub: &ClientStub,
        server: NodeId,
        agreement: &Agreement,
    ) -> Arc<ResilienceMediator> {
        let object = agreement.object.clone();
        let mediator = Arc::new(
            ResilienceMediator::new(self.resilience_policy(&agreement.params))
                .with_metrics(stub.orb().metrics().clone())
                .with_flight(stub.orb().flight().clone()),
        );
        let monitor = Arc::clone(&self.monitor);
        let observed = object.clone();
        mediator.set_observer(Some(Arc::new(move |_op: &str, us: u64, ok: bool| {
            monitor.record(&observed, "latency_us", us as f64);
            monitor.record(&observed, "availability", if ok { 1.0 } else { 0.0 });
        })));
        stub.push_mediator_front(Arc::clone(&mediator) as Arc<dyn Mediator>);
        stub.set_qos_context(Some(agreement.to_context()));
        self.install_rules(&object, &agreement.params);
        self.guards.write().insert(
            object.clone(),
            Arc::new(Guard {
                object,
                server,
                stub: stub.clone(),
                mediator: Arc::clone(&mediator),
                agreement: Mutex::new(agreement.clone()),
                cursor: AtomicUsize::new(0),
                healing: AtomicBool::new(false),
            }),
        );
        mediator
    }

    /// The resilience mediator guarding `object`, if any.
    pub fn mediator(&self, object: &str) -> Option<Arc<ResilienceMediator>> {
        self.guards.read().get(object).map(|g| Arc::clone(&g.mediator))
    }

    /// The guarded agreement for `object` as last (re)negotiated.
    pub fn agreement(&self, object: &str) -> Option<Agreement> {
        self.guards.read().get(object).map(|g| g.agreement.lock().clone())
    }

    /// All adaptation events so far, in the order they were taken.
    pub fn events(&self) -> Vec<AdaptationEvent> {
        self.log.events()
    }

    /// The object keys currently under guard, sorted. Feeds the
    /// deployment view's resilience coverage (lint `QL107`).
    pub fn guarded_objects(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.guards.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    fn resilience_policy(&self, params: &[(String, orb::Any)]) -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: deadline_from_params(params),
            retry: self.policy.retry.clone(),
            breaker: self.policy.breaker.clone(),
        }
    }

    /// Derive client-side monitor rules from agreement parameters — the
    /// same translation the server's negotiation servant applies, but
    /// fed by the *client's* measurements (which include the network).
    fn install_rules(&self, object: &str, params: &[(String, orb::Any)]) {
        for metric in GUARDED_METRICS {
            self.monitor.clear_rules(object, metric);
        }
        for (name, value) in params {
            let number = value.as_double().or_else(|| value.as_i64().map(|v| v as f64));
            let Some(number) = number else { continue };
            match name.as_str() {
                "deadline_ms" => self.monitor.add_rule(
                    object,
                    "latency_us",
                    Statistic::Last,
                    Bound::Max,
                    number * 1_000.0,
                ),
                "availability" => self.monitor.add_rule(
                    object,
                    "availability",
                    Statistic::Mean,
                    Bound::Min,
                    number,
                ),
                "validity_ms" => self.monitor.add_rule(
                    object,
                    "staleness_us",
                    Statistic::Last,
                    Bound::Max,
                    number * 1_000.0,
                ),
                _ => {}
            }
        }
    }

    /// Forget everything measured about `object` so far. Called after a
    /// successful repair: pre-heal samples describe the broken binding.
    fn reset_windows(&self, object: &str) {
        for metric in GUARDED_METRICS {
            self.monitor.clear_window(object, metric);
        }
    }

    fn on_violation(&self, event: &ViolationEvent) {
        let Some(guard) = self.guards.read().get(&event.object).cloned() else {
            return;
        };
        // Violations raised by the repair's own traffic — or by another
        // thread while a repair runs — are absorbed by the latch; the
        // binding is already being healed.
        if guard.healing.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err()
        {
            return;
        }
        self.walk_ladder(&guard, event);
        guard.healing.store(false, Ordering::SeqCst);
    }

    /// Try rungs from the guard's cursor down until one heals the
    /// binding or the ladder runs out. The cursor advances past every
    /// attempted rung — failed repairs are not retried on the next
    /// violation, the ladder just continues downward.
    fn walk_ladder(&self, guard: &Guard, trigger: &ViolationEvent) {
        let steps = self.policy.ladder.steps().to_vec();
        loop {
            let index = guard.cursor.fetch_add(1, Ordering::SeqCst);
            let Some(step) = steps.get(index) else {
                // Ladder exhausted; park the cursor so it cannot
                // eventually wrap.
                guard.cursor.store(steps.len(), Ordering::SeqCst);
                return;
            };
            let (detail, outcome) = match self.apply(guard, step) {
                Ok(detail) => (detail, StepOutcome::Succeeded),
                Err(why) => (String::new(), StepOutcome::Failed(why)),
            };
            let healed = outcome.is_success();
            // The rung lands in the black box alongside the lifecycle
            // events that triggered it, so a dump reads as a story:
            // fault → violations → ladder → (healed | fail-static).
            self.orb.flight().record_detail(
                orb::FlightEventKind::AdaptationRung,
                "adaptation",
                None,
                format!(
                    "{}: {} {}{}",
                    guard.object,
                    step.name(),
                    if healed { "healed" } else { "failed" },
                    if detail.is_empty() { String::new() } else { format!(" ({detail})") }
                ),
            );
            self.log.push(guard.object.clone(), trigger.clone(), step, detail, outcome);
            if healed {
                self.reset_windows(&guard.object);
                return;
            }
        }
    }

    fn apply(&self, guard: &Guard, step: &LadderStep) -> Result<String, String> {
        match step {
            LadderStep::Renegotiate { relax_factor } => {
                let current = guard.agreement.lock().clone();
                let relaxed = relax_params(&current.params, *relax_factor);
                let negotiator = Negotiator::new(self.orb.clone());
                let updated = negotiator
                    .renegotiate(guard.server, &current, relaxed)
                    .map_err(|e| e.to_string())?;
                self.adopt_agreement(guard, &updated);
                Ok(format!("terms relaxed ×{relax_factor}, agreement v{}", updated.version))
            }
            LadderStep::Fallback { characteristic, params } => {
                let current = guard.agreement.lock().clone();
                let negotiator = Negotiator::new(self.orb.clone());
                // Best effort: a dead server cannot release, but then it
                // cannot hold the slot against us either.
                let _ = negotiator.release(guard.server, &current);
                let mut offer = Offer::new(characteristic.clone(), 0.0);
                for (name, value) in params {
                    offer = offer.with_param(name.clone(), value.clone());
                }
                let updated = negotiator
                    .negotiate_offer(guard.server, &guard.object, &offer)
                    .map_err(|e| e.to_string())?;
                self.adopt_agreement(guard, &updated);
                Ok(format!("fell back to `{characteristic}`, agreement v{}", updated.version))
            }
            LadderStep::Rebind => {
                let detector = FailureDetector::new(self.orb.clone(), self.policy.probe_timeout);
                let bound = guard
                    .mediator
                    .target_override()
                    .unwrap_or_else(|| guard.stub.target().clone());
                let candidates: Vec<Ior> = self
                    .policy
                    .replicas
                    .iter()
                    .filter(|ior| ior.node != bound.node)
                    .cloned()
                    .collect();
                let (alive, _) = detector.sweep(&candidates);
                let target =
                    alive.first().copied().cloned().ok_or("no live replica to rebind to")?;
                guard.mediator.set_target_override(Some(target.clone()));
                Ok(format!("rebound to node {} (`{}`)", target.node.0, target.key))
            }
            LadderStep::FailStatic { read_ops } => {
                guard.mediator.enter_fail_static(FailStaticMode::reads(read_ops.clone()));
                Ok(format!("fail-static, serving cached: {}", read_ops.join(", ")))
            }
        }
    }

    /// Switch the guard to a (re)negotiated agreement: new mediator
    /// policy, new wire context, new monitor rules.
    fn adopt_agreement(&self, guard: &Guard, updated: &Agreement) {
        *guard.agreement.lock() = updated.clone();
        guard.mediator.set_policy(self.resilience_policy(&updated.params));
        guard.stub.set_qos_context(Some(updated.to_context()));
        self.install_rules(&guard.object, &updated.params);
    }
}

impl std::fmt::Debug for AdaptationEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptationEngine")
            .field("guards", &self.guards.read().keys().cloned().collect::<Vec<_>>())
            .field("events", &self.log.len())
            .field("ladder", &self.policy.ladder)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{MaqsNode, ServeOptions};
    use netsim::Network;
    use orb::{Any, OrbError, Servant};
    use qosmech::actuality::FreshnessStampQosImpl;
    use qosmech::replication::ReplicationQosImpl;
    use weaver::resilience::CircuitState;

    struct Kv(Mutex<HashMap<String, i64>>);
    impl Servant for Kv {
        fn interface_id(&self) -> &str {
            "IDL:Kv:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "put" => {
                    let k = args[0].as_str().unwrap_or("").to_string();
                    let v = args[1].as_i64().unwrap_or(0);
                    self.0.lock().insert(k, v);
                    Ok(Any::Void)
                }
                "get" => {
                    let k = args[0].as_str().unwrap_or("");
                    Ok(Any::LongLong(self.0.lock().get(k).copied().unwrap_or(0)))
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    const SPEC: &str = r#"
        interface Kv with qos Replication, Actuality {
            void put(in string key, in long long value);
            long long get(in string key);
        };
    "#;

    fn serve_kv(node: &MaqsNode) -> orb::Ior {
        node.serve(
            "kv",
            Arc::new(Kv(Mutex::new(HashMap::new()))),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Replication", 4),
        )
        .unwrap()
    }

    fn fast_client(net: &Network) -> MaqsNode {
        MaqsNode::builder(net, "client")
            .orb_config(orb::OrbConfig {
                request_timeout: Duration::from_millis(300),
                ..Default::default()
            })
            .build()
            .unwrap()
    }

    fn negotiate(
        client: &MaqsNode,
        server: &MaqsNode,
        params: &[(&str, Any)],
    ) -> Agreement {
        let mut offer = Offer::new("Replication", 1.0);
        for (name, value) in params {
            offer = offer.with_param(name.to_string(), value.clone());
        }
        client.negotiator().negotiate_offer(server.orb().node(), "kv", &offer).unwrap()
    }

    #[test]
    fn deadline_violation_renegotiates_relaxed_terms() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = fast_client(&net);
        let ior = serve_kv(&server);
        // A 1 µs deadline: the very first measured call violates it.
        let agreement = negotiate(&client, &server, &[("deadline_ms", Any::Double(0.001))]);
        let engine = client.enable_self_healing(
            SelfHealingPolicy::new(
                DegradationLadder::new().then(LadderStep::Renegotiate { relax_factor: 1e6 }),
            )
            .with_retry(RetryPolicy::immediate(1)),
        );
        assert!(client.self_healing().is_some());
        let stub = client.stub(&ior);
        let mediator = engine.guard(&stub, server.orb().node(), &agreement);
        assert_eq!(engine.guarded_objects(), vec!["kv".to_string()]);
        // The guard shows up as resilience coverage in the lint view.
        assert_eq!(
            client.deployment_view().resilience,
            Some(qoslint::deploy::ResilienceView { guarded: vec!["kv".to_string()] })
        );

        // The call succeeds — the deadline breach is a QoS violation,
        // not a failure — and healing runs inside it.
        stub.invoke("get", &[Any::from("k")]).unwrap();
        let events = engine.events();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].step, "renegotiate");
        assert!(events[0].outcome.is_success(), "{events:?}");
        assert_eq!(events[0].trigger.metric, "latency_us");
        let healed = engine.agreement("kv").unwrap();
        assert_eq!(healed.version, 2);
        // The mediator now enforces the relaxed (~1 s) deadline.
        assert!(mediator.policy().deadline.unwrap() > Duration::from_millis(900));
        // Relaxed terms hold: further calls raise no new events.
        stub.invoke("get", &[Any::from("k")]).unwrap();
        assert_eq!(engine.events().len(), 1);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn ladder_walks_rebind_then_fail_static() {
        let net = Network::new(1);
        let s1 = MaqsNode::builder(&net, "s1").spec(SPEC).build().unwrap();
        let s2 = MaqsNode::builder(&net, "s2").spec(SPEC).build().unwrap();
        let client = fast_client(&net);
        let ior1 = serve_kv(&s1);
        let ior2 = serve_kv(&s2);
        let agreement = negotiate(&client, &s1, &[("availability", Any::Double(0.9))]);
        let engine = client.enable_self_healing(
            SelfHealingPolicy::new(
                DegradationLadder::new()
                    .then(LadderStep::Rebind)
                    .then(LadderStep::FailStatic { read_ops: vec!["get".to_string()] }),
            )
            .with_replicas(vec![ior1.clone(), ior2.clone()])
            .with_probe_timeout(Duration::from_millis(200))
            .with_retry(RetryPolicy::immediate(1)),
        );
        let stub = client.stub(&ior1);
        let mediator = engine.guard(&stub, s1.orb().node(), &agreement);

        stub.invoke("put", &[Any::from("k"), Any::LongLong(7)]).unwrap();
        assert_eq!(stub.invoke("get", &[Any::from("k")]).unwrap(), Any::LongLong(7));

        // Crash the bound server: the failing call drags mean
        // availability under the agreed floor and triggers the rebind.
        net.crash(s1.orb().node());
        assert!(stub.invoke("get", &[Any::from("k")]).is_err());
        let events = engine.events();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].step, "rebind");
        assert!(events[0].outcome.is_success(), "{events:?}");
        // Post-heal calls reach the replica (whose store is empty).
        assert_eq!(stub.invoke("get", &[Any::from("k")]).unwrap(), Any::LongLong(0));

        // Crash the replica too: the next rung is fail-static.
        net.crash(s2.orb().node());
        assert!(stub.invoke("get", &[Any::from("k")]).is_err());
        let events = engine.events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[1].step, "fail_static");
        assert!(mediator.is_fail_static());
        // Reads serve the last-known-good value, writes get typed errors.
        assert_eq!(stub.invoke("get", &[Any::from("k")]).unwrap(), Any::LongLong(0));
        let err = stub.invoke("put", &[Any::from("k"), Any::LongLong(1)]).unwrap_err();
        assert!(matches!(err, OrbError::QosViolation(_)), "{err}");
        // Ladder steps were taken strictly in declared order.
        assert!(events[0].seq < events[1].seq);
        s1.shutdown();
        s2.shutdown();
        client.shutdown();
    }

    #[test]
    fn rebind_with_no_live_replica_fails_down_the_ladder() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = fast_client(&net);
        let ior = serve_kv(&server);
        let agreement = negotiate(&client, &server, &[("availability", Any::Double(0.9))]);
        let engine = client.enable_self_healing(
            SelfHealingPolicy::new(
                DegradationLadder::new()
                    .then(LadderStep::Rebind)
                    .then(LadderStep::FailStatic { read_ops: vec!["get".to_string()] }),
            )
            .with_replicas(vec![ior.clone()])
            .with_probe_timeout(Duration::from_millis(200))
            .with_retry(RetryPolicy::immediate(1)),
        );
        let stub = client.stub(&ior);
        let mediator = engine.guard(&stub, server.orb().node(), &agreement);
        stub.invoke("get", &[Any::from("k")]).unwrap();
        net.crash(server.orb().node());
        // One violation cascades: rebind finds nothing (the only replica
        // is the bound, crashed one), so fail-static engages immediately.
        assert!(stub.invoke("get", &[Any::from("k")]).is_err());
        let events = engine.events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].step, "rebind");
        assert!(!events[0].outcome.is_success());
        assert_eq!(events[1].step, "fail_static");
        assert!(events[1].outcome.is_success());
        assert!(mediator.is_fail_static());
        assert_eq!(stub.invoke("get", &[Any::from("k")]).unwrap(), Any::LongLong(0));
        // Exhausted ladder: further violations are absorbed silently.
        let _ = stub.invoke("put", &[Any::from("k"), Any::LongLong(2)]);
        assert_eq!(engine.events().len(), 2);
        assert_eq!(mediator.circuit_state(), CircuitState::Closed);
        server.shutdown();
        client.shutdown();
    }
}
