//! Human and JSON renderers for the observability plane, following the
//! same conventions as [`qoslint::render`]: aligned plain-text for
//! humans, hand-rolled single-object JSON for tools (the workspace
//! carries no JSON dependency).

use orb::export::{chrome_trace_json, flight_jsonl, prometheus_text, quantile_line};
use orb::{FlightEvent, MetricsSnapshot, TraceContext};
use services::adaptation::{AdaptationEvent, StepOutcome};

/// Render a metrics snapshot as aligned plain text: a `counters`
/// section, then a `histograms (us)` section with
/// count/mean/max/p50/p95/p99 per name (quantiles bucket-interpolated;
/// see [`orb::HistogramSnapshot::quantile`]).
pub fn render_metrics_human(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        let width = snapshot.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms (us):\n");
        let width = snapshot.histograms.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<width$}  count={} mean={:.1} max={} {}\n",
                h.count,
                h.mean_us(),
                h.max_us,
                quantile_line(h)
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (delegates to [`orb::export::prometheus_text`]).
pub fn render_metrics_prometheus(snapshot: &MetricsSnapshot) -> String {
    prometheus_text(snapshot)
}

/// Render traces plus flight instants as a Chrome `trace_event` JSON
/// document, loadable in Perfetto / `chrome://tracing` (delegates to
/// [`orb::export::chrome_trace_json`]).
pub fn render_chrome_trace(traces: &[TraceContext], flight: &[FlightEvent]) -> String {
    chrome_trace_json(traces, flight)
}

/// Render flight events as JSON Lines, one event per line (delegates to
/// [`orb::export::flight_jsonl`]).
pub fn render_flight_jsonl(events: &[FlightEvent]) -> String {
    flight_jsonl(events)
}

/// Render flight events as an aligned plain-text timeline: sequence,
/// timestamp, node, layer, kind, trace id (`-` when unsampled), detail.
pub fn render_flight_human(events: &[FlightEvent]) -> String {
    if events.is_empty() {
        return "(no flight events)\n".to_string();
    }
    let mut out = String::from("flight events:\n");
    let node_w = events.iter().map(|e| e.node.len()).max().unwrap_or(4).max("node".len());
    let layer_w = events.iter().map(|e| e.layer.len()).max().unwrap_or(5).max("layer".len());
    let kind_w = events.iter().map(|e| e.kind.name().len()).max().unwrap_or(4);
    for e in events {
        let trace = e.trace_id.map_or_else(|| "-".to_string(), |t| format!("{t:#x}"));
        out.push_str(&format!(
            "  #{:<6} {:>10}us  {:<node_w$}  {:<layer_w$}  {:<kind_w$}  {trace}",
            e.seq, e.ts_us, e.node, e.layer, e.kind.name(),
        ));
        if let Some(detail) = e.detail.as_deref().filter(|d| !d.is_empty()) {
            out.push_str(&format!("  {detail}"));
        }
        out.push('\n');
    }
    out
}

/// Render a metrics snapshot as one JSON object:
///
/// ```json
/// {"counters":{"orb.requests_sent":3},
///  "histograms":{"orb.roundtrip_us":{"count":3,"sum_us":310,"max_us":120,
///   "mean_us":103.3,"buckets":[[1,0],[2,0]],"overflow":0}}}
/// ```
pub fn render_metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{value}", json_string(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> =
            h.buckets.iter().map(|(bound, n)| format!("[{bound},{n}]")).collect();
        out.push_str(&format!(
            "{}:{{\"count\":{},\"sum_us\":{},\"max_us\":{},\"mean_us\":{:.1},\"buckets\":[{}],\"overflow\":{}}}",
            json_string(name),
            h.count,
            h.sum_us,
            h.max_us,
            h.mean_us(),
            buckets.join(","),
            h.overflow
        ));
    }
    out.push_str("}}");
    out
}

/// Render one trace as a per-layer cost breakdown, spans in the order
/// they completed. Spans are *inclusive* of the layers beneath them
/// (a `stub` span covers the whole call), so the column does not sum.
pub fn render_trace_human(trace: &TraceContext) -> String {
    let mut out = format!("trace {:#018x}\n", trace.trace_id);
    let layer_w = trace.spans.iter().map(|s| s.layer.len()).max().unwrap_or(5).max("layer".len());
    let node_w = trace.spans.iter().map(|s| s.node.len()).max().unwrap_or(4).max("node".len());
    out.push_str(&format!("  {:<layer_w$}  {:<node_w$}  {:>8}\n", "layer", "node", "us"));
    for s in &trace.spans {
        out.push_str(&format!("  {:<layer_w$}  {:<node_w$}  {:>8}\n", s.layer, s.node, s.dur_us));
    }
    out
}

/// Render one trace as a JSON object:
///
/// ```json
/// {"trace_id":123,"spans":[{"layer":"stub","node":"client","dur_us":42}]}
/// ```
pub fn render_trace_json(trace: &TraceContext) -> String {
    let spans: Vec<String> = trace
        .spans
        .iter()
        .map(|s| {
            format!(
                "{{\"layer\":{},\"node\":{},\"dur_us\":{}}}",
                json_string(&s.layer),
                json_string(&s.node),
                s.dur_us
            )
        })
        .collect();
    format!("{{\"trace_id\":{},\"spans\":[{}]}}", trace.trace_id, spans.join(","))
}

/// Render an adaptation log as one line per event: sequence, object,
/// ladder step, outcome, detail, and the violation that triggered it.
pub fn render_adaptation_human(events: &[AdaptationEvent]) -> String {
    if events.is_empty() {
        return "(no adaptation events)\n".to_string();
    }
    let mut out = String::from("adaptation events:\n");
    for e in events {
        out.push_str(&format!("  {e}\n"));
    }
    out
}

/// Render an adaptation log as a JSON array:
///
/// ```json
/// [{"seq":0,"object":"kv","step":"rebind","outcome":"ok",
///   "detail":"rebound to node 3 (`kv`)",
///   "trigger":{"metric":"availability","observed":0.4,"threshold":0.9}}]
/// ```
pub fn render_adaptation_json(events: &[AdaptationEvent]) -> String {
    let rendered: Vec<String> = events
        .iter()
        .map(|e| {
            let outcome = match &e.outcome {
                StepOutcome::Succeeded => "\"ok\"".to_string(),
                StepOutcome::Failed(why) => json_string(&format!("failed: {why}")),
            };
            format!(
                "{{\"seq\":{},\"object\":{},\"step\":{},\"outcome\":{},\"detail\":{},\
                 \"trigger\":{{\"metric\":{},\"observed\":{},\"threshold\":{}}}}}",
                e.seq,
                json_string(&e.object),
                json_string(&e.step),
                outcome,
                json_string(&e.detail),
                json_string(&e.trigger.metric),
                e.trigger.observed,
                e.trigger.threshold
            )
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

/// Escape `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::MetricsRegistry;
    use services::monitoring::ViolationEvent;

    fn sample_snapshot() -> MetricsSnapshot {
        let m = MetricsRegistry::new();
        m.incr("orb.requests_sent");
        m.add("wire.bytes_received", 512);
        m.observe_us("orb.roundtrip_us", 90);
        m.observe_us("orb.roundtrip_us", 110);
        m.snapshot()
    }

    #[test]
    fn human_metrics_list_counters_and_histograms() {
        let out = render_metrics_human(&sample_snapshot());
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("orb.requests_sent"), "{out}");
        assert!(out.contains("histograms (us):"), "{out}");
        assert!(out.contains("count=2 mean=100.0 max=110"), "{out}");
        assert!(out.contains("p50="), "{out}");
        assert!(out.contains("p99="), "{out}");
        assert_eq!(render_metrics_human(&MetricsSnapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn prometheus_wrapper_delegates_to_the_exporter() {
        let out = render_metrics_prometheus(&sample_snapshot());
        assert!(out.contains("# TYPE maqs_orb_requests_sent counter"), "{out}");
        assert!(out.contains("maqs_orb_roundtrip_us_count 2"), "{out}");
    }

    #[test]
    fn flight_renderers_cover_traced_and_unsampled_events() {
        use orb::{FlightEventKind, FlightRecorder};
        let rec = FlightRecorder::new("n1", 16);
        rec.record(FlightEventKind::RequestSent, "orb.client", Some(0xbeef));
        rec.record_detail(
            FlightEventKind::CircuitTransition,
            "resilience",
            None,
            "closed->open".to_string(),
        );
        let events = rec.snapshot();
        let human = render_flight_human(&events);
        assert!(human.contains("request_sent"), "{human}");
        assert!(human.contains("0xbeef"), "{human}");
        assert!(human.contains("circuit_transition"), "{human}");
        assert!(human.contains("closed->open"), "{human}");
        assert_eq!(render_flight_human(&[]), "(no flight events)\n");
        let jsonl = render_flight_jsonl(&events);
        assert_eq!(jsonl.lines().count(), 2, "{jsonl}");
        let chrome = render_chrome_trace(&[], &events);
        assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    }

    #[test]
    fn json_metrics_shape() {
        let out = render_metrics_json(&sample_snapshot());
        assert!(out.starts_with("{\"counters\":{"), "{out}");
        assert!(out.contains("\"orb.requests_sent\":1"), "{out}");
        assert!(out.contains("\"wire.bytes_received\":512"), "{out}");
        assert!(out.contains("\"orb.roundtrip_us\":{\"count\":2,\"sum_us\":200"), "{out}");
        assert!(out.contains("\"buckets\":[[1,0]"), "{out}");
        assert!(out.ends_with("}}"), "{out}");
    }

    #[test]
    fn adaptation_renderers_cover_outcomes() {
        let trigger = ViolationEvent {
            object: "kv".to_string(),
            metric: "availability".to_string(),
            observed: 0.4,
            threshold: 0.9,
        };
        let events = vec![
            AdaptationEvent {
                seq: 0,
                object: "kv".to_string(),
                trigger: trigger.clone(),
                step: "renegotiate".to_string(),
                detail: String::new(),
                outcome: StepOutcome::Failed("server unreachable".to_string()),
            },
            AdaptationEvent {
                seq: 1,
                object: "kv".to_string(),
                trigger,
                step: "rebind".to_string(),
                detail: "rebound to node 3 (`kv`)".to_string(),
                outcome: StepOutcome::Succeeded,
            },
        ];
        let human = render_adaptation_human(&events);
        assert!(human.contains("renegotiate"), "{human}");
        assert!(human.contains("failed: server unreachable"), "{human}");
        assert!(human.contains("rebind"), "{human}");
        assert_eq!(render_adaptation_human(&[]), "(no adaptation events)\n");
        let json = render_adaptation_json(&events);
        assert!(json.starts_with("[{\"seq\":0"), "{json}");
        assert!(json.contains("\"step\":\"rebind\""), "{json}");
        assert!(json.contains("\"outcome\":\"ok\""), "{json}");
        assert!(json.contains("\"threshold\":0.9"), "{json}");
        assert_eq!(render_adaptation_json(&[]), "[]");
    }

    #[test]
    fn trace_renderers_cover_every_span() {
        let mut t = TraceContext::with_id(0xabcd);
        t.push("wire", "server", 250);
        t.push("stub", "client", 400);
        let human = render_trace_human(&t);
        assert!(human.starts_with("trace 0x000000000000abcd"), "{human}");
        assert!(human.contains("wire"), "{human}");
        assert!(human.contains("400"), "{human}");
        let json = render_trace_json(&t);
        assert_eq!(
            json,
            "{\"trace_id\":43981,\"spans\":[\
             {\"layer\":\"wire\",\"node\":\"server\",\"dur_us\":250},\
             {\"layer\":\"stub\",\"node\":\"client\",\"dur_us\":400}]}"
        );
    }
}
