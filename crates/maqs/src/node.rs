//! [`MaqsNode`]: one node's worth of the MAQS stack, wired together.

use crate::error::Error;
use crate::heal::{AdaptationEngine, SelfHealingPolicy};
use netsim::Network;
use orb::{Ior, MetricsSnapshot, Orb, OrbError, Servant, WireTransport};
use parking_lot::RwLock;
use qidl::InterfaceRepository;
use services::introspection::{BindingInfo, IntrospectionServant, Introspector, INTROSPECTION_KEY};
use services::monitoring::Monitor;
use services::naming::{NamingService, NAMING_KEY};
use services::negotiation::{NegotiationServant, NEGOTIATOR_KEY};
use services::trading::{Trader, TRADER_KEY};
use services::Negotiator;
use std::collections::HashMap;
use std::sync::Arc;
use weaver::{ClientStub, QosImplementation, WovenServant};

/// Whether [`MaqsNode::serve`] refuses deployments the static analysis
/// can prove broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintPolicy {
    /// Run the deployment lints (`QL101`–`QL107`) before activating and
    /// refuse (with JSON diagnostics in the error) on lint errors.
    Enforce,
    /// Activate without gating; lints stay available through
    /// [`MaqsNode::lint_deployment`].
    Skip,
}

impl Default for LintPolicy {
    /// [`LintPolicy::Enforce`] when the `lint-deployments` feature is
    /// on (matching the behaviour the feature used to hard-wire),
    /// [`LintPolicy::Skip`] otherwise.
    fn default() -> LintPolicy {
        if cfg!(feature = "lint-deployments") {
            LintPolicy::Enforce
        } else {
            LintPolicy::Skip
        }
    }
}

/// Options for [`MaqsNode::serve`]: which QIDL interface the servant
/// implements, plus the optional QoS machinery to weave around it.
pub struct ServeOptions {
    interface: String,
    qos_impls: Vec<Arc<dyn QosImplementation>>,
    capacity: HashMap<String, usize>,
    lint: LintPolicy,
}

impl ServeOptions {
    /// Options for a servant implementing QIDL interface `interface`,
    /// with no QoS implementations, no negotiation capacities, and the
    /// default [`LintPolicy`].
    pub fn interface(interface: impl Into<String>) -> ServeOptions {
        ServeOptions {
            interface: interface.into(),
            qos_impls: Vec::new(),
            capacity: HashMap::new(),
            lint: LintPolicy::default(),
        }
    }

    /// Install a QoS implementation on the woven servant (may be called
    /// repeatedly; order is irrelevant).
    pub fn qos_impl(mut self, qos_impl: Arc<dyn QosImplementation>) -> ServeOptions {
        self.qos_impls.push(qos_impl);
        self
    }

    /// Bound concurrent agreements for `characteristic` to `slots` and
    /// register the object for negotiation under that bound.
    pub fn capacity(mut self, characteristic: impl Into<String>, slots: usize) -> ServeOptions {
        self.capacity.insert(characteristic.into(), slots);
        self
    }

    /// Override the deployment-lint gate.
    pub fn lint_policy(mut self, policy: LintPolicy) -> ServeOptions {
        self.lint = policy;
        self
    }
}

/// Where a node's ORB gets its bytes moved: the deterministic
/// simulator (the default for tests and benches) or a real
/// socket-backed [`WireTransport`] (TCP / Unix sockets).
enum NetSource<'a> {
    Sim(&'a Network),
    Wire(Arc<dyn WireTransport>),
}

/// Builder for a [`MaqsNode`].
pub struct MaqsNodeBuilder<'a> {
    source: NetSource<'a>,
    name: String,
    config: orb::OrbConfig,
    specs: Vec<String>,
    standard_qos: bool,
}

impl<'a> MaqsNodeBuilder<'a> {
    /// Add a QIDL compilation unit (may reference the standard QoS
    /// characteristics, which are preloaded unless disabled).
    pub fn spec(mut self, source: &str) -> Self {
        self.specs.push(source.to_string());
        self
    }

    /// Override the ORB configuration.
    pub fn orb_config(mut self, config: orb::OrbConfig) -> Self {
        self.config = config;
        self
    }

    /// Skip preloading [`qosmech::specs::QOS_SPECS`].
    pub fn without_standard_qos(mut self) -> Self {
        self.standard_qos = false;
        self
    }

    /// Start the node: ORB threads, negotiation servant, trader.
    ///
    /// # Errors
    ///
    /// Fails if any provided spec does not compile or load.
    pub fn build(self) -> Result<MaqsNode, qidl::QidlError> {
        let mut repo = if self.standard_qos {
            qosmech::specs::standard_repository()
        } else {
            InterfaceRepository::new()
        };
        for src in &self.specs {
            let tokens = qidl::lexer::lex(src)?;
            let spec = qidl::parser::parse(&tokens)?;
            repo.load(&spec)?;
        }
        let orb = match self.source {
            NetSource::Sim(net) => Orb::start_with(net, &self.name, self.config),
            NetSource::Wire(wire) => Orb::start_wire(wire, &self.name, self.config),
        };
        let negotiation = Arc::new(NegotiationServant::new());
        let trader = Arc::new(Trader::new());
        let naming = Arc::new(NamingService::new());
        let monitor = Arc::new(Monitor::new(64));
        negotiation.set_monitor(Arc::clone(&monitor));
        orb.adapter().activate(NEGOTIATOR_KEY, Arc::clone(&negotiation) as Arc<dyn Servant>);
        orb.adapter().activate(TRADER_KEY, Arc::clone(&trader) as Arc<dyn Servant>);
        orb.adapter().activate(NAMING_KEY, Arc::clone(&naming) as Arc<dyn Servant>);
        let woven: Arc<RwLock<HashMap<String, Arc<WovenServant>>>> =
            Arc::new(RwLock::new(HashMap::new()));
        let introspection = Arc::new(IntrospectionServant::new(orb.clone()));
        let bindings_view = Arc::clone(&woven);
        introspection.set_bindings_provider(Arc::new(move || {
            let mut infos: Vec<BindingInfo> = bindings_view
                .read()
                .iter()
                .map(|(key, w)| BindingInfo {
                    object: key.clone(),
                    interface: w.interface_id().to_string(),
                    characteristics: w.installed_characteristics(),
                })
                .collect();
            infos.sort_by(|a, b| a.object.cmp(&b.object));
            infos
        }));
        // Expose the live agreement set over introspection so a cluster
        // telemetry aggregator can derive SLO objectives from it.
        let agreements_view = Arc::clone(&negotiation);
        introspection.set_agreements_provider(Arc::new(move || agreements_view.agreements()));
        orb.adapter().activate(INTROSPECTION_KEY, Arc::clone(&introspection) as Arc<dyn Servant>);
        Ok(MaqsNode {
            orb,
            repo: Arc::new(repo),
            negotiation,
            trader,
            naming,
            monitor,
            woven,
            capacities: RwLock::new(HashMap::new()),
            healing: RwLock::new(None),
        })
    }
}

/// A MAQS runtime node: ORB + interface repository + infrastructure
/// services, with helpers for weaving servants and negotiating QoS.
pub struct MaqsNode {
    orb: Orb,
    repo: Arc<InterfaceRepository>,
    negotiation: Arc<NegotiationServant>,
    trader: Arc<Trader>,
    naming: Arc<NamingService>,
    monitor: Arc<Monitor>,
    woven: Arc<RwLock<HashMap<String, Arc<WovenServant>>>>,
    capacities: RwLock<HashMap<String, Vec<String>>>,
    healing: RwLock<Option<Arc<AdaptationEngine>>>,
}

impl MaqsNode {
    /// Start building a node attached to `net`.
    pub fn builder<'a>(net: &'a Network, name: &str) -> MaqsNodeBuilder<'a> {
        MaqsNodeBuilder {
            source: NetSource::Sim(net),
            name: name.to_string(),
            config: orb::OrbConfig::default(),
            specs: Vec::new(),
            standard_qos: true,
        }
    }

    /// Start building a node whose ORB runs over an already-bound wire
    /// transport (e.g. [`orb::TcpTransport`] or [`orb::UdsTransport`])
    /// instead of the simulator — the entry point for real two-process
    /// deployments.
    pub fn builder_wire(wire: Arc<dyn WireTransport>, name: &str) -> MaqsNodeBuilder<'static> {
        MaqsNodeBuilder {
            source: NetSource::Wire(wire),
            name: name.to_string(),
            config: orb::OrbConfig::default(),
            specs: Vec::new(),
            standard_qos: true,
        }
    }

    /// The node's ORB.
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// The node's (frozen) interface repository.
    pub fn repository(&self) -> &Arc<InterfaceRepository> {
        &self.repo
    }

    /// The node's negotiation servant (server-side agreement control).
    pub fn negotiation(&self) -> &Arc<NegotiationServant> {
        &self.negotiation
    }

    /// The node's trader.
    pub fn trader(&self) -> &Arc<Trader> {
        &self.trader
    }

    /// The node's naming service.
    pub fn naming(&self) -> &Arc<NamingService> {
        &self.naming
    }

    /// A client-side [`Negotiator`] speaking through this node's ORB.
    pub fn negotiator(&self) -> Negotiator {
        Negotiator::new(self.orb.clone())
    }

    /// A client-side [`Introspector`] speaking through this node's ORB:
    /// pulls metrics snapshots, flight-recorder tails, health counters
    /// and the woven-deployment shape from any peer node.
    pub fn introspector(&self) -> Introspector {
        Introspector::new(self.orb.clone())
    }

    /// Weave `servant` per `options`, activate it under `key`, and start
    /// observing it: every application request through the woven
    /// skeleton feeds `latency_us` and `availability` measurements into
    /// this node's [`Monitor`], so negotiated bounds (deadline,
    /// availability, validity) are checked against real traffic.
    ///
    /// The returned IOR carries the interface's assigned characteristics
    /// as QoS tags.
    ///
    /// # Errors
    ///
    /// [`OrbError::BadParam`] for unknown interfaces;
    /// [`OrbError::QosViolation`] if an implementation's characteristic
    /// is not assigned to the interface, or (under
    /// [`LintPolicy::Enforce`]) if the deployment lints report errors —
    /// the violation message is then the JSON diagnostics.
    pub fn serve(
        &self,
        key: &str,
        servant: Arc<dyn Servant>,
        options: ServeOptions,
    ) -> Result<Ior, Error> {
        let interface_name = options.interface.as_str();
        let iface = self
            .repo
            .interface(interface_name)
            .ok_or_else(|| {
                OrbError::BadParam(format!("interface `{interface_name}` not in repository"))
            })?
            .clone();
        let woven = Arc::new(WovenServant::new(servant, Arc::clone(&self.repo), interface_name));
        for qi in options.qos_impls {
            woven.install_qos(qi)?;
        }
        let mut capacity_tags: Vec<String> = options.capacity.keys().cloned().collect();
        capacity_tags.sort();
        if options.lint == LintPolicy::Enforce {
            // Refuse to serve a deployment the static analysis can prove
            // broken (e.g. negotiation capacity for a characteristic that
            // can never be negotiated).
            let candidate = qoslint::deploy::DeploymentView {
                servants: vec![qoslint::deploy::ServantView {
                    key: key.to_string(),
                    interface: interface_name.to_string(),
                    installed: woven.installed_characteristics(),
                    capacities: capacity_tags.clone(),
                }],
                ..qoslint::deploy::DeploymentView::default()
            };
            let diags = qoslint::deploy::lint_deployment(&self.repo, &candidate);
            if diags.has_errors() {
                return Err(Error::Orb(OrbError::QosViolation(qoslint::render::render_json(
                    None, &diags,
                ))));
            }
        }
        let monitor = Arc::clone(&self.monitor);
        let object = key.to_string();
        // Per-object series for the telemetry plane, names prebuilt so
        // the hot path never formats strings.
        let metrics = self.orb.metrics().clone();
        let requests_series = format!("object.{key}.requests");
        let errors_series = format!("object.{key}.errors");
        let latency_series = format!("object.{key}.latency_us");
        woven.set_request_observer(Some(Arc::new(move |_op: &str, us: u64, ok: bool| {
            monitor.record(&object, "latency_us", us as f64);
            monitor.record(&object, "availability", if ok { 1.0 } else { 0.0 });
            metrics.incr(&requests_series);
            if !ok {
                metrics.incr(&errors_series);
            }
            metrics.observe_us(&latency_series, us);
        })));
        self.negotiation.register_object(key, Arc::clone(&woven), options.capacity);
        self.orb.adapter().activate(key, Arc::clone(&woven) as Arc<dyn Servant>);
        self.woven.write().insert(key.to_string(), woven);
        self.capacities.write().insert(key.to_string(), capacity_tags);
        let mut ior = Ior::new(iface.repository_id(), self.orb.node(), key);
        for tag in &iface.qos {
            ior = ior.with_qos_tag(tag.clone());
        }
        // Socket-backed nodes need the listener in the reference so it
        // survives a trip to another process.
        Ok(self.orb.attach_endpoint(ior))
    }

    /// The node's QoS monitor: agreement bounds installed by the
    /// negotiation servant are checked against the measurements
    /// [`MaqsNode::serve`] feeds in.
    pub fn monitor(&self) -> &Arc<Monitor> {
        &self.monitor
    }

    /// A point-in-time snapshot of the per-layer metrics this node's
    /// ORB, transports, and QoS mechanisms have recorded. Render it with
    /// [`crate::report::render_metrics_human`] or
    /// [`crate::report::render_metrics_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.orb.metrics().snapshot()
    }

    /// The woven servant under `key`, if any.
    pub fn woven(&self, key: &str) -> Option<Arc<WovenServant>> {
        self.woven.read().get(key).cloned()
    }

    /// Snapshot this node's woven servants as a
    /// [`qoslint::deploy::DeploymentView`] (server side only — merge in
    /// client state with the [`crate::lint`] helpers).
    pub fn deployment_view(&self) -> qoslint::deploy::DeploymentView {
        let woven = self.woven.read();
        let caps = self.capacities.read();
        let mut servants: Vec<qoslint::deploy::ServantView> = woven
            .iter()
            .map(|(key, w)| qoslint::deploy::ServantView {
                key: key.clone(),
                interface: w.interface().to_string(),
                installed: w.installed_characteristics(),
                capacities: caps.get(key).cloned().unwrap_or_default(),
            })
            .collect();
        servants.sort_by(|a, b| a.key.cmp(&b.key));
        // A node with self-healing enabled reports its resilience
        // coverage, turning on the QL107 unguarded-binding check.
        let resilience = self.healing.read().as_ref().map(|engine| {
            qoslint::deploy::ResilienceView { guarded: engine.guarded_objects() }
        });
        qoslint::deploy::DeploymentView {
            servants,
            resilience,
            ..qoslint::deploy::DeploymentView::default()
        }
    }

    /// Run the deployment-level lints (`QL101`–`QL107`) over this
    /// node's current weaving state.
    pub fn lint_deployment(&self) -> qidl::Diagnostics {
        qoslint::deploy::lint_deployment(&self.repo, &self.deployment_view())
    }

    /// A dynamic client stub for `target`, invoking through this node.
    pub fn stub(&self, target: &Ior) -> ClientStub {
        ClientStub::new(self.orb.clone(), target.clone())
    }

    /// Turn on self-healing: an [`AdaptationEngine`] subscribes to this
    /// node's [`Monitor`] and, for every binding later put under
    /// [`AdaptationEngine::guard`], walks `policy`'s degradation ladder
    /// when an agreement violation fires. Calling it again replaces the
    /// stored engine (existing guards keep their old engine alive).
    pub fn enable_self_healing(&self, policy: SelfHealingPolicy) -> Arc<AdaptationEngine> {
        let engine =
            AdaptationEngine::install(self.orb.clone(), Arc::clone(&self.monitor), policy);
        *self.healing.write() = Some(Arc::clone(&engine));
        engine
    }

    /// The self-healing engine, if [`enable_self_healing`] was called.
    ///
    /// [`enable_self_healing`]: MaqsNode::enable_self_healing
    pub fn self_healing(&self) -> Option<Arc<AdaptationEngine>> {
        self.healing.read().clone()
    }

    /// Shut the node's ORB down.
    pub fn shutdown(&self) {
        self.orb.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::Any;
    use qosmech::actuality::FreshnessStampQosImpl;
    use qosmech::replication::ReplicationQosImpl;
    use services::{ContractHierarchy, ContractNode, Offer};

    struct Kv(parking_lot::Mutex<HashMap<String, i64>>);
    impl Servant for Kv {
        fn interface_id(&self) -> &str {
            "IDL:Kv:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "put" => {
                    let k = args[0].as_str().unwrap_or("").to_string();
                    let v = args[1].as_i64().unwrap_or(0);
                    self.0.lock().insert(k, v);
                    Ok(Any::Void)
                }
                "get" => {
                    let k = args[0].as_str().unwrap_or("");
                    Ok(Any::LongLong(self.0.lock().get(k).copied().unwrap_or(0)))
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    const SPEC: &str = r#"
        interface Kv with qos Replication, Actuality {
            void put(in string key, in long long value);
            long long get(in string key);
        };
    "#;

    fn kv() -> Arc<dyn Servant> {
        Arc::new(Kv(parking_lot::Mutex::new(HashMap::new())))
    }

    #[test]
    fn builder_loads_specs_and_rejects_bad_ones() {
        let net = Network::new(1);
        let node = MaqsNode::builder(&net, "n").spec(SPEC).build().unwrap();
        assert!(node.repository().interface("Kv").is_some());
        assert!(node.repository().qos("Replication").is_some());
        node.shutdown();
        assert!(MaqsNode::builder(&net, "bad").spec("interface {").build().is_err());
        let no_std = MaqsNode::builder(&net, "nostd").without_standard_qos().build().unwrap();
        assert!(no_std.repository().qos("Replication").is_none());
        no_std.shutdown();
    }

    #[test]
    fn woven_service_end_to_end_with_negotiation() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = MaqsNode::builder(&net, "client").build().unwrap();

        let ior = server
            .serve(
                "kv",
                kv(),
                ServeOptions::interface("Kv")
                    .qos_impl(Arc::new(ReplicationQosImpl::new()))
                    .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                    .capacity("Replication", 1),
            )
            .unwrap();
        assert!(ior.offers("Replication") && ior.offers("Actuality"));

        // Plain application traffic works unwoven.
        client.orb().invoke(&ior, "put", &[Any::from("a"), Any::LongLong(5)]).unwrap();
        assert_eq!(client.orb().invoke(&ior, "get", &[Any::from("a")]).unwrap(), Any::LongLong(5));

        // QoS ops require negotiation first (Fig. 2 exception).
        assert!(matches!(
            client.orb().invoke(&ior, "export_state", &[]),
            Err(OrbError::QosNotNegotiated(_))
        ));

        // Negotiate via preferences.
        let prefs = ContractHierarchy::new(
            "p",
            ContractNode::Any(vec![
                ContractNode::Leaf(Offer::new("Replication", 5.0)),
                ContractNode::Leaf(Offer::new("Actuality", 1.0)),
            ]),
        );
        let (agreements, utility) =
            client.negotiator().negotiate_preferences(server.orb().node(), "kv", &prefs).unwrap();
        assert_eq!(utility, 5.0);
        assert_eq!(agreements[0].characteristic, "Replication");
        assert_eq!(
            server.woven("kv").unwrap().active_characteristic().as_deref(),
            Some("Replication")
        );

        // Now the Replication QoS ops answer.
        assert_eq!(
            client.orb().invoke(&ior, "replica_role", &[]).unwrap(),
            Any::Str("follower".into())
        );
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn deployment_lint_flags_missing_impls_but_not_as_errors() {
        let net = Network::new(1);
        let node = MaqsNode::builder(&net, "n").spec(SPEC).build().unwrap();
        node.serve("kv", kv(), ServeOptions::interface("Kv")).unwrap();
        let diags = node.lint_deployment();
        // Replication and Actuality are assigned but not installed.
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == qoslint::codes::MISSING_QOS_IMPL));
        assert!(!diags.has_errors());
        let view = node.deployment_view();
        assert_eq!(view.servants.len(), 1);
        assert_eq!(view.servants[0].interface, "Kv");
        node.shutdown();
    }

    #[test]
    fn complete_deployment_lints_clean() {
        let net = Network::new(1);
        let node = MaqsNode::builder(&net, "n").spec(SPEC).build().unwrap();
        node.serve(
            "kv",
            kv(),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Replication", 2),
        )
        .unwrap();
        assert!(node.lint_deployment().is_empty());
        assert_eq!(node.deployment_view().servants[0].capacities, vec!["Replication"]);
        node.shutdown();
    }

    #[test]
    fn lint_gate_refuses_unusable_capacity_with_json_diagnostics() {
        let net = Network::new(1);
        let node = MaqsNode::builder(&net, "n").spec(SPEC).build().unwrap();
        // Capacity for an assigned-but-uninstalled characteristic:
        // negotiations would be admitted and then always fail.
        let err = node
            .serve(
                "kv",
                kv(),
                ServeOptions::interface("Kv")
                    .capacity("Replication", 1)
                    .lint_policy(LintPolicy::Enforce),
            )
            .unwrap_err();
        match err {
            Error::Orb(OrbError::QosViolation(json)) => {
                assert!(json.contains("\"code\":\"QL106\""), "{json}");
                assert!(json.contains("never installed"), "{json}");
            }
            other => panic!("expected QosViolation, got {other:?}"),
        }
        // The refused servant was not activated.
        assert!(node.woven("kv").is_none());
        // The same deployment activates when the gate is skipped...
        node.serve(
            "kv-unlinted",
            kv(),
            ServeOptions::interface("Kv")
                .capacity("Replication", 1)
                .lint_policy(LintPolicy::Skip),
        )
        .unwrap();
        // ...and a well-formed one passes the gate.
        node.serve(
            "kv",
            kv(),
            ServeOptions::interface("Kv")
                .qos_impl(Arc::new(ReplicationQosImpl::new()))
                .qos_impl(Arc::new(FreshnessStampQosImpl::new()))
                .capacity("Replication", 1)
                .lint_policy(LintPolicy::Enforce),
        )
        .unwrap();
        node.shutdown();
    }

    #[test]
    fn serve_unknown_interface_fails() {
        let net = Network::new(1);
        let node = MaqsNode::builder(&net, "n").build().unwrap();
        assert!(node.serve("x", kv(), ServeOptions::interface("Ghost")).is_err());
        node.shutdown();
    }

    #[test]
    fn served_requests_feed_the_monitor() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = MaqsNode::builder(&net, "client").build().unwrap();
        let ior = server.serve("kv", kv(), ServeOptions::interface("Kv")).unwrap();
        client.orb().invoke(&ior, "put", &[Any::from("k"), Any::LongLong(1)]).unwrap();
        client.orb().invoke(&ior, "get", &[Any::from("k")]).unwrap();
        assert!(server.monitor().mean("kv", "latency_us").is_some());
        assert_eq!(server.monitor().mean("kv", "availability"), Some(1.0));
        // The same observer feeds the per-object telemetry series.
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("object.kv.requests"), 2);
        assert_eq!(snap.counter("object.kv.errors"), 0);
        assert_eq!(snap.histogram("object.kv.latency_us").unwrap().count, 2);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn stub_helper_builds_working_stub() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = MaqsNode::builder(&net, "client").build().unwrap();
        let ior = server.serve("kv", kv(), ServeOptions::interface("Kv")).unwrap();
        let stub = client.stub(&ior);
        stub.invoke("put", &[Any::from("k"), Any::LongLong(9)]).unwrap();
        let reply = stub.invoke("get", &[Any::from("k")]).unwrap();
        assert_eq!(reply, Any::LongLong(9));
        assert!(reply.trace.is_some(), "stub replies carry a trace");
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn metrics_snapshot_reflects_traffic() {
        let net = Network::new(1);
        let server = MaqsNode::builder(&net, "server").spec(SPEC).build().unwrap();
        let client = MaqsNode::builder(&net, "client").build().unwrap();
        let ior = server.serve("kv", kv(), ServeOptions::interface("Kv")).unwrap();
        let before = client.metrics_snapshot();
        client.orb().invoke(&ior, "put", &[Any::from("k"), Any::LongLong(3)]).unwrap();
        let after = client.metrics_snapshot();
        assert!(after.counter("orb.requests_sent") > before.counter("orb.requests_sent"));
        assert!(after.dominates(&before));
        server.shutdown();
        client.shutdown();
    }
}
