//! Deployment-linting glue: snapshot live weaving state into a
//! [`qoslint::deploy::DeploymentView`].
//!
//! [`crate::MaqsNode::deployment_view`] covers the server side (woven
//! servants, installed implementations, negotiation capacities); the
//! helpers here convert the *client* side — established
//! [`weaver::QosBinding`]s and stub mediator chains — so a test or an
//! operator tool can lint a whole client/server deployment with
//! [`qoslint::deploy::lint_deployment`].

use qoslint::deploy::{BindingView, StubView};
use weaver::{ClientStub, QosBindingRegistry};

/// Views of every live binding in `registry`, sorted by object key.
pub fn binding_views(registry: &QosBindingRegistry) -> Vec<BindingView> {
    registry
        .bindings()
        .iter()
        .map(|b| BindingView {
            object_key: b.object.as_str().to_string(),
            characteristic: b.characteristic.clone(),
            params: b.params.iter().map(|(n, _)| n.clone()).collect(),
        })
        .collect()
}

/// View of one client stub's mediator chain, targeting `object_key`.
pub fn stub_view(object_key: &str, stub: &ClientStub) -> StubView {
    StubView { object_key: object_key.to_string(), mediators: stub.mediator_chain() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orb::Any;

    #[test]
    fn binding_views_carry_keys_characteristics_and_param_names() {
        let reg = QosBindingRegistry::new();
        reg.bind("kv", "Replication", vec![("replicas".into(), Any::ULong(3))]);
        reg.bind("cam", "Actuality", vec![]);
        let views = binding_views(&reg);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].object_key, "cam");
        assert_eq!(views[1].characteristic, "Replication");
        assert_eq!(views[1].params, vec!["replicas"]);
    }
}
