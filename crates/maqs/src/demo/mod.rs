//! Committed output of the QIDL compiler, proving the language mapping
//! produces compiling, working Rust.
//!
//! `gen_ticker.rs` is the verbatim output of running the QIDL compiler
//! (`cargo run -p qidl --example qidlc`) on [`TICKER_QIDL`]
//! (`ticker.qidl` next to it). The `generated_code_is_current` test
//! regenerates it on every run, so the committed artifact can never
//! drift from the compiler.

/// The QIDL source `gen_ticker` was generated from.
pub const TICKER_QIDL: &str = include_str!("ticker.qidl");

#[allow(missing_docs)]
pub mod gen_ticker;

#[cfg(test)]
mod tests {
    use super::gen_ticker::{
        Quote, ReplicationOps, ReplicationQosSkeleton, Ticker, TickerServant, TickerStub,
        UnknownSymbol,
    };
    use netsim::Network;
    use orb::{Any, Orb, OrbError, Servant};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn generated_code_is_current() {
        let spec = qidl::compile(super::TICKER_QIDL).expect("demo spec compiles");
        let generated = qidl::codegen::generate(&spec);
        assert_eq!(
            generated,
            include_str!("gen_ticker.rs"),
            "gen_ticker.rs is stale; regenerate with \
             `cargo run -p qidl --example qidlc crates/maqs/src/demo/ticker.qidl`"
        );
    }

    struct Board {
        quotes: Mutex<Vec<Quote>>,
    }

    impl Ticker for Board {
        fn latest(&self, symbol: String) -> Result<Quote, OrbError> {
            self.quotes
                .lock()
                .iter()
                .rev()
                .find(|q| q.symbol == symbol)
                .cloned()
                .ok_or_else(|| UnknownSymbol { symbol }.to_orb_error())
        }
        fn window(&self, symbol: String, n: u32) -> Result<Vec<Quote>, OrbError> {
            let quotes = self.quotes.lock();
            Ok(quotes
                .iter()
                .filter(|q| q.symbol == symbol)
                .rev()
                .take(n as usize)
                .cloned()
                .collect())
        }
        fn publish(&self, q: Quote) -> Result<(), OrbError> {
            self.quotes.lock().push(q);
            Ok(())
        }
        fn subscribe(&self, symbol: String, cursor: i64) -> Result<(i64, i64, f64), OrbError> {
            let price = self.latest(symbol)?.price;
            // returns (ret, cursor inout, initial_price out)
            Ok((1, cursor + 1, price))
        }
        fn nudge(&self, _who: String) -> Result<(), OrbError> {
            Ok(())
        }
        fn venue(&self) -> Result<String, OrbError> {
            Ok("XSIM".to_string())
        }
        fn depth(&self) -> Result<i64, OrbError> {
            Ok(self.quotes.lock().len() as i64)
        }
        fn set_depth(&self, _value: i64) -> Result<(), OrbError> {
            Err(OrbError::NoPermission("depth is derived".to_string()))
        }
    }

    fn quote(symbol: &str, price: f64, seq: u64) -> Quote {
        Quote { symbol: symbol.to_string(), price, sequence_no: seq, payload: vec![1, 2, 3] }
    }

    #[test]
    fn generated_stub_and_servant_interoperate() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let servant = TickerServant::new(Board { quotes: Mutex::new(Vec::new()) });
        let ior = server.activate("ticker", Box::new(servant));
        let stub = TickerStub::new(client.clone(), ior);

        stub.publish(quote("ACME", 101.5, 1)).unwrap();
        stub.publish(quote("ACME", 102.0, 2)).unwrap();
        stub.publish(quote("OTHER", 9.0, 3)).unwrap();

        let latest = stub.latest("ACME".to_string()).unwrap();
        assert_eq!(latest.price, 102.0);
        assert_eq!(latest.payload, vec![1, 2, 3]);

        let window = stub.window("ACME".to_string(), 5).unwrap();
        assert_eq!(window.len(), 2);

        // Multi-output operation: (ret, inout cursor, out price).
        let (ret, cursor, price) = stub.subscribe("ACME".to_string(), 10).unwrap();
        assert_eq!((ret, cursor), (1, 11));
        assert_eq!(price, 102.0);

        // Attributes.
        assert_eq!(stub.venue().unwrap(), "XSIM");
        assert_eq!(stub.depth().unwrap(), 3);
        assert!(matches!(stub.set_depth(5), Err(OrbError::NoPermission(_))));

        // Oneway.
        stub.nudge("client".to_string()).unwrap();

        // Errors propagate with types intact, and the generated
        // exception helper recognizes its own wire form.
        let err = stub.latest("GHOST".to_string()).unwrap_err();
        assert!(UnknownSymbol::matches(&err), "unexpected error {err}");
        assert!(!UnknownSymbol::matches(&OrbError::UserException("Other(x)".into())));

        // Struct round-trip through Any directly.
        let q = quote("X", 1.25, 9);
        assert_eq!(Quote::from_any(&q.to_any()).unwrap(), q);

        server.shutdown();
        client.shutdown();
    }

    /// The generated QoS skeleton (Fig. 2's "QoS-Skel" box) adapts a
    /// typed implementation onto the runtime weaving layer.
    struct ReplImpl;
    impl ReplicationOps for ReplImpl {
        fn replica_count(&self, _server: &dyn Servant) -> Result<u32, OrbError> {
            Ok(3)
        }
        fn export_state(&self, server: &dyn Servant) -> Result<Any, OrbError> {
            server.get_state()
        }
        fn import_state(&self, server: &dyn Servant, state: Any) -> Result<(), OrbError> {
            server.set_state(&state)
        }
    }

    #[test]
    fn generated_qos_skeleton_plugs_into_the_woven_servant() {
        // Load the demo spec so the woven servant can classify QoS ops.
        let mut repo = qidl::InterfaceRepository::new();
        repo.load(&qidl::compile(super::TICKER_QIDL).unwrap()).unwrap();

        struct StatefulBoard(Mutex<i64>);
        impl Servant for StatefulBoard {
            fn interface_id(&self) -> &str {
                "IDL:Ticker:1.0"
            }
            fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
            fn get_state(&self) -> Result<Any, OrbError> {
                Ok(Any::LongLong(*self.0.lock()))
            }
            fn set_state(&self, state: &Any) -> Result<(), OrbError> {
                *self.0.lock() = state.as_i64().unwrap_or(0);
                Ok(())
            }
        }

        let woven = weaver::WovenServant::new(
            Arc::new(StatefulBoard(Mutex::new(7))),
            Arc::new(repo),
            "Ticker",
        );
        woven.install_qos(Arc::new(ReplicationQosSkeleton::new(ReplImpl))).unwrap();
        woven.negotiate("Replication").unwrap();

        // Typed QoS ops flow through the generated skeleton.
        assert_eq!(woven.dispatch("replica_count", &[]).unwrap(), Any::ULong(3));
        assert_eq!(woven.dispatch("export_state", &[]).unwrap(), Any::LongLong(7));
        woven.dispatch("import_state", &[Any::LongLong(42)]).unwrap();
        assert_eq!(woven.dispatch("export_state", &[]).unwrap(), Any::LongLong(42));
        // Arity and type errors are produced by the generated checks.
        assert!(woven.dispatch("import_state", &[]).is_err());
        assert!(woven.dispatch("replica_count", &[Any::Long(1)]).is_err());
    }
}
