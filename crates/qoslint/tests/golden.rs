//! Golden-file tests: one fixture per lint code.
//!
//! Each `tests/fixtures/qlNNN.qidl` triggers exactly the code it is
//! named after; the rustc-style report it produces is pinned in the
//! companion `qlNNN.expected`. Regenerate with
//! `QOSLINT_BLESS=1 cargo test -p qoslint --test golden`.

use qoslint::render::{render_human, SourceFile};
use qoslint::{codes, lint_source, Code, Severity};
use std::path::PathBuf;

/// Every front-end and spec-level lint code, with its fixture stem and
/// the 1-based (line, col) its primary span must start at.
const CASES: &[(&str, Code, u32, u32)] = &[
    ("ql001", codes::LEX, 1, 28),
    ("ql002", codes::PARSE, 1, 11),
    ("ql003", codes::DUPLICATE, 2, 11),
    ("ql004", codes::UNRESOLVED, 1, 15),
    ("ql005", codes::CYCLE, 1, 11),
    ("ql006", codes::BAD_DEFAULT, 2, 17),
    ("ql007", codes::ONEWAY, 2, 17),
    ("ql008", codes::RESERVED, 2, 10),
    ("ql009", codes::VOID, 2, 20),
    ("ql010", codes::CATEGORY_CONFLICT, 9, 31),
    ("ql011", codes::UNUSED_QOS, 1, 5),
    ("ql012", codes::SHADOWED_OP, 5, 10),
    ("ql013", codes::EMPTY_MANAGEMENT, 1, 5),
    ("ql014", codes::NO_DEFAULT, 2, 16),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/qoslint"))
        .join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_fixture_triggers_exactly_its_code_with_a_span() {
    for (stem, code, line, col) in CASES {
        let diags = lint_source(&read(&format!("{stem}.qidl")));
        assert!(!diags.is_empty(), "{stem}: no findings");
        assert!(
            diags.iter().all(|d| d.code == *code),
            "{stem}: expected only {code}, got {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        let d = diags.iter().next().unwrap();
        let span = d.span.unwrap_or_else(|| panic!("{stem}: finding has no span"));
        assert_eq!((span.start.line, span.start.col), (*line, *col), "{stem}: span moved");
        assert!(!span.is_dummy(), "{stem}: dummy span");
    }
}

#[test]
fn rendered_reports_match_golden_files() {
    let bless = std::env::var_os("QOSLINT_BLESS").is_some();
    for (stem, _, _, _) in CASES {
        let qidl = format!("{stem}.qidl");
        let text = read(&qidl);
        let rendered =
            render_human(Some(SourceFile { name: &qidl, text: &text }), &lint_source(&text));
        let expected_path = fixture_dir().join(format!("{stem}.expected"));
        if bless {
            std::fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        assert_eq!(rendered, expected, "{stem}: report drifted from golden file");
    }
}

#[test]
fn severities_are_stable_per_code() {
    let errors = [
        codes::LEX,
        codes::PARSE,
        codes::DUPLICATE,
        codes::UNRESOLVED,
        codes::CYCLE,
        codes::BAD_DEFAULT,
        codes::ONEWAY,
        codes::RESERVED,
        codes::VOID,
        codes::CATEGORY_CONFLICT,
    ];
    for (stem, code, _, _) in CASES {
        let diags = lint_source(&read(&format!("{stem}.qidl")));
        let want = if errors.contains(code) { Severity::Error } else { Severity::Warn };
        assert_eq!(diags.iter().next().unwrap().severity, want, "{stem}");
    }
}

#[test]
fn the_demo_spec_is_clean() {
    // The shipped demo spec must stay lint-clean (ci runs qoslint
    // --deny-warnings over it).
    let ticker = PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/qoslint"))
        .join("../maqs/src/demo/ticker.qidl");
    let text = std::fs::read_to_string(ticker).unwrap();
    let diags = lint_source(&text);
    assert!(diags.is_empty(), "{:?}", diags.into_vec());
}
