//! Golden-file tests for the concurrency lints (`QL201`–`QL203`), plus
//! the clean-state check over the workspace's real rank table.
//!
//! Each `tests/fixtures/qlNNN.conc` declares a [`ConcurrencyView`] in a
//! line-oriented format and triggers exactly the code it is named
//! after; the rendered report is pinned in the companion
//! `qlNNN.expected`. Regenerate with
//! `QOSLINT_BLESS=1 cargo test -p qoslint --test conc_golden`.
//!
//! Format, one directive per line (`#` comments):
//!
//! ```text
//! rank  <u16> <RankName> <module>
//! site  <module> <lock> <RankName|->
//! edge  <HolderRank> <AcquiredRank> <site>
//! chain <key> mediators=<a,b> reentrant=<a,b> holding=<RankName|->
//! ```

use qoslint::conc::{
    lint_concurrency, ChainConcurrencyView, ConcurrencyView, LockSiteView, OrderEdgeView,
    RankedLockView,
};
use qoslint::render::render_human;
use qoslint::{codes, Code};
use std::path::PathBuf;

const CASES: &[(&str, Code)] = &[
    ("ql201", codes::UNRANKED_LOCK),
    ("ql202", codes::RANK_CYCLE),
    ("ql203", codes::REENTRANT_CHAIN),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/qoslint"))
        .join("tests/fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn opt(v: &str) -> Option<String> {
    (v != "-").then(|| v.to_string())
}

fn list(v: &str) -> Vec<String> {
    if v.is_empty() || v == "-" {
        Vec::new()
    } else {
        v.split(',').map(str::to_string).collect()
    }
}

fn bad(no: usize, line: &str, why: &str) -> ! {
    panic!("fixture line {}: {why}: `{line}`", no + 1)
}

/// Parse the `.conc` fixture format into a [`ConcurrencyView`].
fn parse_view(text: &str) -> ConcurrencyView {
    let mut view = ConcurrencyView::default();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["rank", rank, name, module] => view.ranks.push(RankedLockView {
                rank: rank.parse().unwrap_or_else(|_| bad(no, line, "bad rank")),
                name: name.to_string(),
                module: module.to_string(),
            }),
            ["site", module, lock, rank] => view.sites.push(LockSiteView {
                module: module.to_string(),
                lock: lock.to_string(),
                rank: opt(rank),
            }),
            ["edge", holder, acquires, site] => view.edges.push(OrderEdgeView {
                holder: holder.to_string(),
                acquires: acquires.to_string(),
                site: site.to_string(),
            }),
            ["chain", key, rest @ ..] => {
                let mut chain =
                    ChainConcurrencyView { object_key: key.to_string(), ..Default::default() };
                for kv in rest {
                    match kv.split_once('=') {
                        Some(("mediators", v)) => chain.mediators = list(v),
                        Some(("reentrant", v)) => chain.registry_reentrant = list(v),
                        Some(("holding", v)) => chain.invoked_holding = opt(v),
                        _ => bad(no, line, "bad chain field"),
                    }
                }
                view.chains.push(chain);
            }
            _ => bad(no, line, "unknown directive"),
        }
    }
    view
}

#[test]
fn every_fixture_triggers_exactly_its_code() {
    for (stem, code) in CASES {
        let diags = lint_concurrency(&parse_view(&read(&format!("{stem}.conc"))));
        assert!(!diags.is_empty(), "{stem}: no findings");
        assert!(
            diags.iter().all(|d| d.code == *code),
            "{stem}: expected only {code}, got {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        assert!(diags.has_errors(), "{stem}: concurrency findings are errors");
    }
}

#[test]
fn rendered_reports_match_golden_files() {
    let bless = std::env::var_os("QOSLINT_BLESS").is_some();
    for (stem, _) in CASES {
        let rendered =
            render_human(None, &lint_concurrency(&parse_view(&read(&format!("{stem}.conc")))));
        let expected_path = fixture_dir().join(format!("{stem}.expected"));
        if bless {
            std::fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        assert_eq!(rendered, expected, "{stem}: report drifted from golden file");
    }
}

/// The committed workspace must lint clean: the real rank table from
/// `orb::sync`, every held-while-acquiring nesting the codebase
/// actually performs, and the demo's mediator chain. A new lock or a
/// new nesting that breaks the hierarchy fails this test (and ci.sh
/// runs it under `--deny-warnings` semantics: any finding is fatal).
#[test]
fn committed_state_lints_clean() {
    let mut view = ConcurrencyView::from_rank_rows(orb::LockRank::TABLE);
    // The nestings the production code performs while holding a lock
    // (kept in sync with DESIGN.md §6f "observed nestings").
    for (holder, acquires, site) in [
        ("AccountingUsage", "AccountingTariffs", "services::accounting::invoice"),
        ("QosMechState", "QosMechStats", "qosmech::bandwidth::acquire"),
        ("QosMechState", "QosMechMetrics", "qosmech::actuality::lookup"),
        ("FlightBuf", "FlightRing", "orb::flight::push_batch_flush"),
    ] {
        view.edges.push(OrderEdgeView {
            holder: holder.into(),
            acquires: acquires.into(),
            site: site.into(),
        });
    }
    // The demo ticker's chain: no mediator re-enters the registry.
    view.chains.push(ChainConcurrencyView {
        object_key: "ticker".into(),
        mediators: vec!["Replication".into(), "Actuality".into(), "Compression".into()],
        registry_reentrant: Vec::new(),
        invoked_holding: None,
    });
    let diags = lint_concurrency(&view);
    assert!(
        diags.is_empty(),
        "committed concurrency state must lint clean:\n{}",
        render_human(None, &diags)
    );
}
