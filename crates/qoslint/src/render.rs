//! Diagnostic renderers: rustc-style human output and line-oriented
//! JSON (hand-rolled — the workspace carries no JSON dependency).

use qidl::diag::{Diagnostic, Diagnostics, Severity};

/// A named source file, for excerpting spans in human output.
#[derive(Debug, Clone, Copy)]
pub struct SourceFile<'a> {
    /// Display name (path) of the file.
    pub name: &'a str,
    /// Its full text.
    pub text: &'a str,
}

/// Render `diags` rustc-style, excerpting the offending line when the
/// diagnostic has a span and `file` is given.
pub fn render_human(file: Option<SourceFile<'_>>, diags: &Diagnostics) -> String {
    let mut out = String::new();
    for d in diags.iter() {
        out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
        if let Some(span) = d.span {
            let name = file.map_or("<input>", |f| f.name);
            out.push_str(&format!("  --> {name}:{}:{}\n", span.start.line, span.start.col));
            if let Some(f) = file {
                if let Some(line) = f.text.lines().nth(span.start.line.saturating_sub(1) as usize) {
                    let gutter = span.start.line.to_string();
                    let pad = " ".repeat(gutter.len());
                    let caret_at = span.start.col.saturating_sub(1) as usize;
                    let width = if span.end.line == span.start.line {
                        span.end.col.saturating_sub(span.start.col).max(1) as usize
                    } else {
                        1
                    };
                    out.push_str(&format!(" {pad} |\n"));
                    out.push_str(&format!(" {gutter} | {line}\n"));
                    out.push_str(&format!(
                        " {pad} | {}{}\n",
                        " ".repeat(caret_at),
                        "^".repeat(width)
                    ));
                }
            }
        }
        for note in &d.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
    }
    out
}

/// One-line tally, e.g. `2 errors, 1 warning`; empty string when clean.
pub fn summary(diags: &Diagnostics) -> String {
    let mut parts = Vec::new();
    for (sev, singular) in
        [(Severity::Error, "error"), (Severity::Warn, "warning"), (Severity::Help, "help")]
    {
        let n = diags.count(sev);
        match n {
            0 => {}
            1 => parts.push(format!("1 {singular}")),
            n if sev == Severity::Help => parts.push(format!("{n} helps")),
            n => parts.push(format!("{n} {singular}s")),
        }
    }
    parts.join(", ")
}

/// Render `diags` as a single JSON object:
///
/// ```json
/// {"file":"t.qidl","diagnostics":[{"code":"QL003","severity":"error",
///  "message":"…","span":{"line":1,"col":2,"end_line":1,"end_col":3},
///  "notes":[]}],"errors":1,"warnings":0,"helps":0}
/// ```
pub fn render_json(file: Option<&str>, diags: &Diagnostics) -> String {
    let mut out = String::from("{");
    match file {
        Some(name) => out.push_str(&format!("\"file\":{},", json_string(name))),
        None => out.push_str("\"file\":null,"),
    }
    out.push_str("\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&diagnostic_json(d));
    }
    out.push_str(&format!(
        "],\"errors\":{},\"warnings\":{},\"helps\":{}}}",
        diags.count(Severity::Error),
        diags.count(Severity::Warn),
        diags.count(Severity::Help)
    ));
    out
}

fn diagnostic_json(d: &Diagnostic) -> String {
    let span = match d.span {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}}",
            s.start.line, s.start.col, s.end.line, s.end.col
        ),
    };
    let notes: Vec<String> = d.notes.iter().map(|n| json_string(n)).collect();
    format!(
        "{{\"code\":{},\"severity\":{},\"message\":{},\"span\":{span},\"notes\":[{}]}}",
        json_string(d.code.0),
        json_string(d.severity.as_str()),
        json_string(&d.message),
        notes.join(",")
    )
}

/// Escape `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;
    use qidl::lexer::{Pos, Span};

    fn sample() -> Diagnostics {
        let mut acc = Diagnostics::new();
        acc.push(
            Diagnostic::error(codes::DUPLICATE, "duplicate definition `I`")
                .with_span(Span::new(Pos { line: 1, col: 28 }, Pos { line: 1, col: 29 }))
                .with_note("first defined here"),
        );
        acc.push(Diagnostic::warn(codes::UNUSED_QOS, "qos `Q` is never assigned"));
        acc
    }

    #[test]
    fn human_output_excerpts_the_line() {
        let src = "interface I {}; interface I {};";
        let out = render_human(Some(SourceFile { name: "t.qidl", text: src }), &sample());
        assert!(out.contains("error[QL003]: duplicate definition `I`"), "{out}");
        assert!(out.contains("--> t.qidl:1:28"), "{out}");
        assert!(out.contains("1 | interface I {}; interface I {};"), "{out}");
        assert!(out.contains("  = note: first defined here"), "{out}");
        // Caret sits under column 28.
        let caret_line = out.lines().find(|l| l.contains('^')).unwrap();
        assert_eq!(caret_line.find('^').unwrap(), " 1 | ".len() + 27);
        // Spanless warning still renders.
        assert!(out.contains("warning[QL011]"), "{out}");
    }

    #[test]
    fn human_output_without_source_skips_excerpt() {
        let out = render_human(None, &sample());
        assert!(out.contains("--> <input>:1:28"), "{out}");
        assert!(!out.contains(" | "), "{out}");
    }

    #[test]
    fn json_output_is_escaped_and_counted() {
        let mut acc = Diagnostics::new();
        acc.push(Diagnostic::error(codes::BINDING_UNKNOWN, "bad \"name\"\n"));
        let out = render_json(Some("a\\b.qidl"), &acc);
        assert!(out.contains("\"file\":\"a\\\\b.qidl\""), "{out}");
        assert!(out.contains("\"message\":\"bad \\\"name\\\"\\n\""), "{out}");
        assert!(out.contains("\"span\":null"), "{out}");
        assert!(out.ends_with("\"errors\":1,\"warnings\":0,\"helps\":0}"), "{out}");
    }

    #[test]
    fn json_output_carries_spans_and_notes() {
        let out = render_json(None, &sample());
        assert!(out.contains("\"file\":null"), "{out}");
        assert!(
            out.contains("\"span\":{\"line\":1,\"col\":28,\"end_line\":1,\"end_col\":29}"),
            "{out}"
        );
        assert!(out.contains("\"notes\":[\"first defined here\"]"), "{out}");
    }

    #[test]
    fn summary_tallies() {
        assert_eq!(summary(&sample()), "1 error, 1 warning");
        assert_eq!(summary(&Diagnostics::new()), "");
    }
}
