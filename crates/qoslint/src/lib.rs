//! `qoslint` — static analysis for QIDL specifications and woven QoS
//! deployments.
//!
//! The QIDL front-end ([`qidl::sema`]) rejects specs that are *wrong*;
//! this crate additionally flags specs and deployments that are *legal
//! but broken in practice*. It has two halves:
//!
//! * **Spec-level lints** ([`lint_spec`], codes `QL010`–`QL014`):
//!   properties of a single compilation unit that the paper's separation
//!   of concerns makes easy to get silently wrong — e.g. assigning two
//!   characteristics of the same QoS *category* to one interface, or
//!   declaring a characteristic nobody assigns.
//! * **Deployment-level lints** ([`deploy::lint_deployment`], codes
//!   `QL101`–`QL107`): cross-checks of the static [`InterfaceRepository`]
//!   against a snapshot of the *runtime* weaving state — client bindings
//!   and mediator chains versus the implementations a server actually
//!   installed.
//! * **Concurrency lints** ([`conc::lint_concurrency`], codes
//!   `QL201`–`QL203`): checks of the declared lock-rank hierarchy
//!   (`orb::sync`) and the QoS mediator chains' re-entry behaviour over
//!   a [`conc::ConcurrencyView`] — unranked locks in ranked modules,
//!   cycles in the declared acquisition order, chains that can re-enter
//!   the binding registry while a binding lock is held.
//!
//! Every finding is a [`qidl::Diagnostic`] with a stable code and, for
//! spec-level lints, a source span; [`render`] turns reports into
//! rustc-style text or line-oriented JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conc;
pub mod deploy;
pub mod render;
mod spec_lints;

pub use qidl::diag::{Code, Diagnostic, Diagnostics, Severity};

use qidl::ast::Spec;

/// The lint-only diagnostic codes (`QL010`+ spec-level, `QL1xx`
/// deployment-level). Front-end codes live in [`qidl::diag::codes`].
pub mod codes {
    pub use qidl::diag::codes::*;
    use qidl::diag::Code;

    /// Two characteristics of the same QoS category assigned to one
    /// interface.
    pub const CATEGORY_CONFLICT: Code = Code("QL010");
    /// QoS characteristic defined but never assigned to any interface.
    pub const UNUSED_QOS: Code = Code("QL011");
    /// Operation shadows an inherited or assigned-QoS operation of the
    /// same name.
    pub const SHADOWED_OP: Code = Code("QL012");
    /// QoS characteristic with no management operations.
    pub const EMPTY_MANAGEMENT: Code = Code("QL013");
    /// QoS parameter with no default value.
    pub const NO_DEFAULT: Code = Code("QL014");

    /// Binding to a characteristic not assigned to the bound interface.
    pub const BINDING_UNASSIGNED: Code = Code("QL101");
    /// Binding sets a parameter the characteristic does not declare.
    pub const BINDING_PARAM_UNKNOWN: Code = Code("QL102");
    /// Servant installs no implementation for an assigned characteristic.
    pub const MISSING_QOS_IMPL: Code = Code("QL103");
    /// Mediator chain contains a characteristic the server cannot
    /// negotiate.
    pub const NOT_NEGOTIABLE: Code = Code("QL104");
    /// Binding to a characteristic unknown to the repository.
    pub const BINDING_UNKNOWN: Code = Code("QL105");
    /// Negotiation capacity advertised for a characteristic that is
    /// unassigned or uninstalled.
    pub const CAPACITY_UNUSABLE: Code = Code("QL106");
    /// QoS binding or mediated stub with no resilience policy guarding
    /// it (only checked when the view reports resilience coverage).
    pub const NO_RESILIENCE: Code = Code("QL107");

    /// Unranked lock declared in a module that participates in the lock
    /// hierarchy (or a lock naming a rank the hierarchy doesn't declare).
    pub const UNRANKED_LOCK: Code = Code("QL201");
    /// Declared acquisition order inverts the numeric rank hierarchy or
    /// contains a cycle.
    pub const RANK_CYCLE: Code = Code("QL202");
    /// QoS mediator chain that can re-enter the binding registry while a
    /// lock at or above the registry's rank is held.
    pub const REENTRANT_CHAIN: Code = Code("QL203");
}

/// Run the spec-level lints (`QL010`–`QL014`) over a parsed [`Spec`].
///
/// The spec need not have passed [`qidl::sema`] — lints skip what they
/// cannot resolve — but for a full report use [`lint_source`], which
/// runs the front-end first and merges its diagnostics.
pub fn lint_spec(spec: &Spec) -> Diagnostics {
    spec_lints::run(spec)
}

/// Lex, parse and semantically analyse `source`, then run the
/// spec-level lints; returns every finding of every stage in source
/// order per stage (front-end first).
pub fn lint_source(source: &str) -> Diagnostics {
    let (spec, mut diags) = qidl::analyze(source);
    if let Some(spec) = spec {
        diags.extend(lint_spec(&spec));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_merges_front_end_and_lints() {
        // One semantic error (unknown qos) + one lint (unused qos).
        let diags = lint_source("qos Lonely {}; interface I with qos Ghost {};");
        assert!(diags.iter().any(|d| d.code == codes::UNRESOLVED));
        assert!(diags.iter().any(|d| d.code == codes::UNUSED_QOS));
    }

    #[test]
    fn lint_source_stops_at_parse_errors() {
        let diags = lint_source("interface {");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags.iter().next().unwrap().code, codes::PARSE);
    }

    #[test]
    fn clean_spec_is_clean() {
        let diags = lint_source(
            r#"
            qos Q category timeliness {
                param long level = 1;
                management { void tune(in long level); };
            };
            interface I with qos Q { void f(); };
            "#,
        );
        assert!(diags.is_empty(), "{:?}", diags.into_vec());
    }
}
