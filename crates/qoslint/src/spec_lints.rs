//! The spec-level lints, `QL010`–`QL014`.
//!
//! These flag QIDL that the front-end accepts but that undermines the
//! QoS provision at runtime. Findings are emitted in source order,
//! grouped per definition, so reports (and the golden tests) are stable.

use crate::codes;
use qidl::ast::{InterfaceDef, QosDef, Spec};
use qidl::diag::{Diagnostic, Diagnostics};

pub fn run(spec: &Spec) -> Diagnostics {
    let mut acc = Diagnostics::new();
    for def in &spec.definitions {
        match def {
            qidl::ast::Definition::Qos(q) => lint_qos(&mut acc, spec, q),
            qidl::ast::Definition::Interface(i) => lint_interface(&mut acc, spec, i),
            _ => {}
        }
    }
    acc
}

fn lint_qos(acc: &mut Diagnostics, spec: &Spec, q: &QosDef) {
    if q.management.is_empty() {
        acc.push(
            Diagnostic::warn(
                codes::EMPTY_MANAGEMENT,
                format!("qos characteristic `{}` has no management operations", q.name),
            )
            .with_span(q.span)
            .with_note("it cannot be observed or re-tuned once deployed"),
        );
    }
    for p in &q.params {
        if p.default.is_none() {
            acc.push(
                Diagnostic::warn(
                    codes::NO_DEFAULT,
                    format!("qos param `{}.{}` has no default value", q.name, p.name),
                )
                .with_span(p.span)
                .with_note("every negotiation must supply it explicitly"),
            );
        }
    }
    if !spec.interfaces().any(|i| i.qos.iter().any(|tag| tag == &q.name)) {
        acc.push(
            Diagnostic::warn(
                codes::UNUSED_QOS,
                format!("qos characteristic `{}` is never assigned to an interface", q.name),
            )
            .with_span(q.span)
            .with_note("unassigned characteristics generate no mediators or skeletons"),
        );
    }
}

fn lint_interface(acc: &mut Diagnostics, spec: &Spec, i: &InterfaceDef) {
    // QL010: two assigned characteristics of the same category provide
    // the same QoS concern twice; only one can be negotiated at a time.
    for (bi, b) in i.qos.iter().enumerate() {
        for (ai, a) in i.qos.iter().enumerate().take(bi) {
            let (Some(qa), Some(qb)) = (spec.qos(a), spec.qos(b)) else { continue };
            if let (Some(ca), Some(cb)) = (&qa.category, &qb.category) {
                if ca == cb {
                    acc.push(
                        Diagnostic::error(
                            codes::CATEGORY_CONFLICT,
                            format!(
                                "interface `{}` assigns `{a}` and `{b}`, both of category \
                                 `{cb}`",
                                i.name
                            ),
                        )
                        .with_span(i.qos_span(bi))
                        .with_note(format!("`{a}` was assigned here: {}", i.qos_span(ai)))
                        .with_note("one characteristic per category: their provisions conflict"),
                    );
                }
            }
        }
    }

    // QL012a: an operation redeclared in a derived interface is silently
    // dropped by woven dispatch (the inherited one wins in the
    // repository's base-first flattening).
    for op in &i.operations {
        if let Some(base) = inherited_from(spec, i, &op.name) {
            acc.push(
                Diagnostic::warn(
                    codes::SHADOWED_OP,
                    format!(
                        "operation `{}` in interface `{}` shadows inherited `{base}::{}`",
                        op.name, i.name, op.name
                    ),
                )
                .with_span(op.span)
                .with_note("the inherited operation wins during woven dispatch"),
            );
        }
    }

    // QL012b: an application operation with the same name as an assigned
    // characteristic's QoS operation makes the QoS operation unreachable
    // (woven lookup prefers application operations).
    for tag in &i.qos {
        let Some(q) = spec.qos(tag) else { continue };
        for qop in q.all_operations() {
            if let Some(op) = find_app_op(spec, i, &qop.name) {
                acc.push(
                    Diagnostic::warn(
                        codes::SHADOWED_OP,
                        format!(
                            "operation `{}` of interface `{}` hides QoS operation \
                             `{tag}::{}`",
                            qop.name, i.name, qop.name
                        ),
                    )
                    .with_span(op)
                    .with_note("woven dispatch resolves application operations first"),
                );
            }
        }
    }
}

/// The nearest transitive base of `iface` (within `spec`) declaring an
/// operation named `op`, if any.
fn inherited_from<'a>(spec: &'a Spec, iface: &InterfaceDef, op: &str) -> Option<&'a str> {
    let mut stack: Vec<&str> = iface.inherits.iter().map(String::as_str).collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(name) = stack.pop() {
        if !seen.insert(name) {
            continue; // diamond (or cycle in a spec that failed sema)
        }
        let Some(base) = spec.interface(name) else { continue };
        if base.operations.iter().any(|o| o.name == op) {
            return Some(&base.name);
        }
        stack.extend(base.inherits.iter().map(String::as_str));
    }
    None
}

/// The span of the application operation named `op` on `iface` (own or
/// inherited), if one exists.
fn find_app_op(spec: &Spec, iface: &InterfaceDef, op: &str) -> Option<qidl::lexer::Span> {
    if let Some(o) = iface.operations.iter().find(|o| o.name == op) {
        return Some(o.span);
    }
    let mut stack: Vec<&str> = iface.inherits.iter().map(String::as_str).collect();
    let mut seen = std::collections::HashSet::new();
    while let Some(name) = stack.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(base) = spec.interface(name) else { continue };
        if base.operations.iter().any(|o| o.name == op) {
            // Point at the assigning interface, not the distant base.
            return Some(iface.span);
        }
        stack.extend(base.inherits.iter().map(String::as_str));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;
    use qidl::diag::Severity;

    fn lint(src: &str) -> Diagnostics {
        run(&qidl::compile(src).unwrap())
    }

    #[test]
    fn category_conflict_is_an_error() {
        let diags = lint(
            r#"
            qos Fast category performance { management { void go(); }; };
            qos Cheap category performance { management { void go(); }; };
            interface I with qos Fast, Cheap { void f(); };
            "#,
        );
        let d = diags.iter().find(|d| d.code == codes::CATEGORY_CONFLICT).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("performance"));
        assert!(d.span.is_some());
        // Different categories (or none) do not conflict.
        assert!(lint(
            r#"
            qos A category x { management { void a(); }; };
            qos B category y { management { void b(); }; };
            qos C { management { void c(); }; };
            interface I with qos A, B, C { void f(); };
            "#
        )
        .iter()
        .all(|d| d.code != codes::CATEGORY_CONFLICT));
    }

    #[test]
    fn unused_characteristic_is_warned() {
        let diags = lint("qos Lonely { management { void m(); }; }; interface I { void f(); };");
        let d = diags.iter().find(|d| d.code == codes::UNUSED_QOS).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("Lonely"));
    }

    #[test]
    fn inherited_shadowing_is_warned() {
        let diags = lint(
            r#"
            interface Base { void f(); };
            interface Derived : Base { void f(); void g(); };
            "#,
        );
        let d = diags.iter().find(|d| d.code == codes::SHADOWED_OP).unwrap();
        assert!(d.message.contains("Base::f"), "{}", d.message);
        // Point at the redeclaration, not the base.
        assert_eq!(d.span.unwrap().start.line, 3);
    }

    #[test]
    fn app_op_hiding_qos_op_is_warned() {
        let diags = lint(
            r#"
            qos Q { management { void stats(); }; };
            interface I with qos Q { void stats(); };
            "#,
        );
        let d = diags.iter().find(|d| d.code == codes::SHADOWED_OP).unwrap();
        assert!(d.message.contains("Q::stats"), "{}", d.message);
        // Inherited application operations hide QoS operations too.
        let diags = lint(
            r#"
            qos Q { management { void stats(); }; };
            interface Base { void stats(); };
            interface I : Base with qos Q { void f(); };
            "#,
        );
        assert!(diags.iter().any(|d| d.code == codes::SHADOWED_OP));
    }

    #[test]
    fn empty_management_and_missing_defaults_are_warned() {
        let diags = lint("qos Bare { param long x; }; interface I with qos Bare {};");
        assert!(diags.iter().any(|d| d.code == codes::EMPTY_MANAGEMENT));
        let d = diags.iter().find(|d| d.code == codes::NO_DEFAULT).unwrap();
        assert!(d.message.contains("Bare.x"));
    }

    #[test]
    fn findings_come_in_source_order() {
        let diags = lint(
            r#"
            qos First { management { void m(); }; };
            qos Second { management { void m(); }; };
            interface I { void f(); };
            "#,
        );
        let names: Vec<&str> = diags
            .iter()
            .map(|d| if d.message.contains("First") { "First" } else { "Second" })
            .collect();
        assert_eq!(names, vec!["First", "Second"]);
    }
}
