//! Concurrency-discipline lints, `QL201`–`QL203`.
//!
//! The ORB core enforces its lock hierarchy dynamically — debug builds
//! panic on out-of-order acquisition (`orb::sync`) — but a dynamic check
//! only fires on paths a test actually runs. These lints cross-check the
//! *declared* concurrency structure of a deployment — the rank table,
//! the per-module lock inventory, the observed held-while-acquiring
//! edges, and the QoS mediator chains — so holes in the discipline are
//! findings, not latent deadlocks.
//!
//! Like [`crate::deploy`], the input is plain data: a
//! [`ConcurrencyView`] any runtime can populate.
//! [`ConcurrencyView::from_rank_rows`] seeds one directly from
//! `orb::LockRank::TABLE` (a `&[(u16, &str, &str)]` of rank, lock name,
//! module); edges and chains are appended from whatever nesting the
//! runtime declares or observes.

use crate::codes;
use qidl::diag::{Diagnostic, Diagnostics};
use std::collections::BTreeMap;

/// The rank name of the weaver's binding registry lock; [`QL203`]
/// (`codes::REENTRANT_CHAIN`) is anchored on it.
pub const BINDING_REGISTRY_RANK: &str = "BindingRegistry";

/// One row of the declared rank hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankedLockView {
    /// Numeric rank; acquisition must be strictly ascending.
    pub rank: u16,
    /// Rank name, e.g. `BindingRegistry`.
    pub name: String,
    /// Module the lock lives in, e.g. `weaver::binding`.
    pub module: String,
}

/// One lock *site*: a lock field declared somewhere in the codebase,
/// ranked or not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockSiteView {
    /// Module the lock is declared in.
    pub module: String,
    /// The lock field or static, e.g. `ResolveCache.entries`.
    pub lock: String,
    /// The rank it carries, if any; `None` is an unranked plain lock.
    pub rank: Option<String>,
}

/// One declared or observed held-while-acquiring edge: a thread holds
/// `holder` and acquires `acquires`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrderEdgeView {
    /// Rank name of the lock already held.
    pub holder: String,
    /// Rank name of the lock being acquired.
    pub acquires: String,
    /// Where the nesting happens, for the report.
    pub site: String,
}

/// One client stub's mediator chain, from the concurrency angle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainConcurrencyView {
    /// Key of the stub's target object.
    pub object_key: String,
    /// Characteristics of the installed mediators, outermost first.
    pub mediators: Vec<String>,
    /// Mediators that can call back into the binding registry mid-call
    /// (rebinding, policy lookup, re-weaving).
    pub registry_reentrant: Vec<String>,
    /// Rank name of a lock held while the chain is invoked, if any
    /// (e.g. a rebind path that dispatches under the registry lock).
    pub invoked_holding: Option<String>,
}

/// The declared concurrency structure of one deployment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConcurrencyView {
    /// The rank hierarchy (every ranked lock).
    pub ranks: Vec<RankedLockView>,
    /// Every known lock site, ranked or not.
    pub sites: Vec<LockSiteView>,
    /// Held-while-acquiring edges.
    pub edges: Vec<OrderEdgeView>,
    /// Mediator chains.
    pub chains: Vec<ChainConcurrencyView>,
}

impl ConcurrencyView {
    /// Seed a view from a rank table of `(rank, name, module)` rows —
    /// the exact shape of `orb::LockRank::TABLE`. Every row becomes
    /// both a [`RankedLockView`] and a ranked [`LockSiteView`].
    pub fn from_rank_rows(rows: &[(u16, &'static str, &'static str)]) -> ConcurrencyView {
        let mut view = ConcurrencyView::default();
        for (rank, name, module) in rows {
            view.ranks.push(RankedLockView {
                rank: *rank,
                name: (*name).to_string(),
                module: (*module).to_string(),
            });
            view.sites.push(LockSiteView {
                module: (*module).to_string(),
                lock: (*name).to_string(),
                rank: Some((*name).to_string()),
            });
        }
        view
    }

    fn rank_of(&self, name: &str) -> Option<u16> {
        self.ranks.iter().find(|r| r.name == name).map(|r| r.rank)
    }
}

/// Cross-check the declared concurrency structure, accumulating every
/// finding. All three codes are errors: each one is a deadlock that
/// merely has not happened yet.
pub fn lint_concurrency(view: &ConcurrencyView) -> Diagnostics {
    let mut acc = Diagnostics::new();
    unranked_locks(view, &mut acc);
    rank_cycles(view, &mut acc);
    reentrant_chains(view, &mut acc);
    acc
}

/// `QL201`: a lock without a rank declared in a module that otherwise
/// participates in the hierarchy. The dynamic checker cannot see plain
/// locks, so one unranked lock next to ranked ones reopens the exact
/// inversion window the module was migrated to close.
fn unranked_locks(view: &ConcurrencyView, acc: &mut Diagnostics) {
    for site in &view.sites {
        match &site.rank {
            Some(rank) => {
                if view.rank_of(rank).is_none() {
                    acc.push(
                        Diagnostic::error(
                            codes::UNRANKED_LOCK,
                            format!(
                                "lock `{}` in `{}` names rank `{rank}`, which the hierarchy \
                                 does not declare",
                                site.lock, site.module
                            ),
                        )
                        .with_note("add the rank to the hierarchy table or fix the name"),
                    );
                }
            }
            None => {
                if view.ranks.iter().any(|r| r.module == site.module) {
                    acc.push(
                        Diagnostic::error(
                            codes::UNRANKED_LOCK,
                            format!(
                                "unranked lock `{}` in ranked module `{}`",
                                site.lock, site.module
                            ),
                        )
                        .with_note(
                            "the lock-order checker cannot see it: acquisitions around it \
                             are invisible inversions waiting to deadlock",
                        ),
                    );
                }
            }
        }
    }
}

/// `QL202`: the declared held-while-acquiring edges must be consistent
/// with the numeric hierarchy and acyclic among themselves. An edge that
/// inverts the numeric order, or a cycle of edges, is an
/// order-dependent deadlock.
fn rank_cycles(view: &ConcurrencyView, acc: &mut Diagnostics) {
    // Direct inversions against the numeric table.
    for e in &view.edges {
        if let (Some(h), Some(a)) = (view.rank_of(&e.holder), view.rank_of(&e.acquires)) {
            if h >= a {
                acc.push(
                    Diagnostic::error(
                        codes::RANK_CYCLE,
                        format!(
                            "`{}` (rank {h}) is held while acquiring `{}` (rank {a}) at {}: \
                             the declared order inverts the hierarchy",
                            e.holder, e.acquires, e.site
                        ),
                    )
                    .with_note("debug builds panic on this path; release builds can deadlock"),
                );
            }
        }
    }

    // Cycles among the edges themselves (covers locks the numeric table
    // does not rank). BTreeMap keeps reports deterministic.
    let mut graph: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &view.edges {
        graph.entry(e.holder.as_str()).or_default().push(e.acquires.as_str());
    }
    let mut done: Vec<&str> = Vec::new();
    for &start in graph.keys() {
        if done.contains(&start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, next)) = stack.last_mut() {
            let succ = graph.get(*node).map(Vec::as_slice).unwrap_or_default();
            if *next >= succ.len() {
                done.push(*node);
                stack.pop();
                path.pop();
                continue;
            }
            let target = succ[*next];
            *next += 1;
            if let Some(at) = path.iter().position(|n| *n == target) {
                let mut cycle: Vec<&str> = path[at..].to_vec();
                cycle.push(target);
                // Report each cycle once, from its smallest member.
                if cycle[..cycle.len() - 1].iter().min() == Some(&cycle[0]) {
                    acc.push(
                        Diagnostic::error(
                            codes::RANK_CYCLE,
                            format!(
                                "declared acquisition order contains a cycle: {}",
                                cycle.join(" -> ")
                            ),
                        )
                        .with_note(
                            "two threads traversing it from different entry points \
                             deadlock; break one edge or rank the locks",
                        ),
                    );
                }
            } else if !done.contains(&target) {
                stack.push((target, 0));
                path.push(target);
            }
        }
    }
}

/// `QL203`: a QoS mediator chain that can re-enter the binding registry
/// while the caller already holds a lock at or above the registry's
/// rank. The re-entry acquires `BindingRegistry` a second time — or
/// from below — which the hierarchy forbids.
fn reentrant_chains(view: &ConcurrencyView, acc: &mut Diagnostics) {
    let Some(registry_rank) = view.rank_of(BINDING_REGISTRY_RANK) else {
        return;
    };
    for chain in &view.chains {
        let Some(held) = &chain.invoked_holding else { continue };
        let Some(held_rank) = view.rank_of(held) else { continue };
        if held_rank < registry_rank {
            continue;
        }
        for m in &chain.mediators {
            if chain.registry_reentrant.iter().any(|r| r == m) {
                acc.push(
                    Diagnostic::error(
                        codes::REENTRANT_CHAIN,
                        format!(
                            "stub for `{}` invokes its `{m}` mediator while `{held}` (rank \
                             {held_rank}) is held, and `{m}` can re-enter the binding \
                             registry (`{BINDING_REGISTRY_RANK}`, rank {registry_rank})",
                            chain.object_key
                        ),
                    )
                    .with_note(
                        "re-entry acquires the registry at or below a held rank: \
                         deadlock against any concurrent bind; release the lock before \
                         dispatching through the chain",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qidl::diag::Severity;

    fn base_view() -> ConcurrencyView {
        ConcurrencyView::from_rank_rows(&[
            (100, "NamingBindings", "services::naming"),
            (200, "BindingRegistry", "weaver::binding"),
            (220, "WovenState", "weaver::skeleton"),
            (500, "PendingShard", "orb::core"),
        ])
    }

    #[test]
    fn ranked_view_is_clean() {
        let mut view = base_view();
        view.edges.push(OrderEdgeView {
            holder: "BindingRegistry".into(),
            acquires: "PendingShard".into(),
            site: "weaver::binding::rebind".into(),
        });
        let diags = lint_concurrency(&view);
        assert!(diags.is_empty(), "{:?}", diags.into_vec());
    }

    #[test]
    fn unranked_lock_in_ranked_module_is_flagged() {
        let mut view = base_view();
        view.sites.push(LockSiteView {
            module: "orb::core".into(),
            lock: "scratch".into(),
            rank: None,
        });
        // Unranked locks in modules outside the hierarchy are fine.
        view.sites.push(LockSiteView {
            module: "bench::harness".into(),
            lock: "results".into(),
            rank: None,
        });
        let diags = lint_concurrency(&view);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == codes::UNRANKED_LOCK).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Error);
        assert!(hits[0].message.contains("scratch"));
    }

    #[test]
    fn unknown_rank_name_is_flagged() {
        let mut view = base_view();
        view.sites.push(LockSiteView {
            module: "orb::core".into(),
            lock: "pending".into(),
            rank: Some("PendingTable".into()),
        });
        let diags = lint_concurrency(&view);
        let d = diags.iter().find(|d| d.code == codes::UNRANKED_LOCK).unwrap();
        assert!(d.message.contains("PendingTable"));
    }

    #[test]
    fn inverted_edge_is_a_rank_cycle() {
        let mut view = base_view();
        view.edges.push(OrderEdgeView {
            holder: "PendingShard".into(),
            acquires: "NamingBindings".into(),
            site: "orb::core::dispatch".into(),
        });
        let diags = lint_concurrency(&view);
        let d = diags.iter().find(|d| d.code == codes::RANK_CYCLE).unwrap();
        assert!(d.message.contains("inverts"), "{}", d.message);
    }

    #[test]
    fn edge_cycle_is_reported_once() {
        let mut view = base_view();
        // Two unranked locks ordered against each other.
        for (h, a) in [("TickLog", "TickCache"), ("TickCache", "TickLog")] {
            view.edges.push(OrderEdgeView {
                holder: h.into(),
                acquires: a.into(),
                site: "demo::ticker".into(),
            });
        }
        let diags = lint_concurrency(&view);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == codes::RANK_CYCLE).collect();
        assert_eq!(hits.len(), 1, "{:?}", hits);
        assert!(hits[0].message.contains("TickCache -> TickLog -> TickCache"));
    }

    #[test]
    fn reentrant_chain_under_registry_lock_is_flagged() {
        let mut view = base_view();
        view.chains.push(ChainConcurrencyView {
            object_key: "kv".into(),
            mediators: vec!["Replication".into(), "Actuality".into()],
            registry_reentrant: vec!["Replication".into()],
            invoked_holding: Some("BindingRegistry".into()),
        });
        // Same chain invoked lock-free elsewhere: fine.
        view.chains.push(ChainConcurrencyView {
            object_key: "kv2".into(),
            mediators: vec!["Replication".into()],
            registry_reentrant: vec!["Replication".into()],
            invoked_holding: None,
        });
        // Held lock ranked *below* the registry: the re-entry ascends,
        // which the hierarchy allows.
        view.chains.push(ChainConcurrencyView {
            object_key: "kv3".into(),
            mediators: vec!["Replication".into()],
            registry_reentrant: vec!["Replication".into()],
            invoked_holding: Some("NamingBindings".into()),
        });
        let diags = lint_concurrency(&view);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == codes::REENTRANT_CHAIN).collect();
        assert_eq!(hits.len(), 1, "{:?}", hits);
        assert!(hits[0].message.contains("`kv`"));
        assert!(hits[0].message.contains("Replication"));
    }
}
