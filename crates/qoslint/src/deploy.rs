//! Deployment-level lints, `QL101`–`QL107`.
//!
//! A woven deployment can be statically sound yet dynamically broken:
//! the client binds a characteristic the interface was never assigned,
//! the server advertises negotiation capacity for an implementation it
//! never installed, a mediator chain waits for a negotiation the server
//! cannot conclude. These lints cross-check a snapshot of the runtime
//! weaving state — a [`DeploymentView`] — against the
//! [`InterfaceRepository`] the deployment was compiled into.
//!
//! The view is plain data so any runtime can populate it; `maqs` builds
//! one from its woven servants and `weaver`'s binding registry.

use crate::codes;
use qidl::diag::{Diagnostic, Diagnostics};
use qidl::InterfaceRepository;

/// One woven servant, as deployed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServantView {
    /// Object key the servant is activated under.
    pub key: String,
    /// QIDL interface it serves.
    pub interface: String,
    /// Characteristics with an installed QoS implementation
    /// (`weaver::QosImplementation`), i.e. the negotiable set.
    pub installed: Vec<String>,
    /// Characteristics with bounded negotiation capacity.
    pub capacities: Vec<String>,
}

/// One established client-side QoS binding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingView {
    /// Key of the bound object.
    pub object_key: String,
    /// The bound characteristic.
    pub characteristic: String,
    /// Names of the parameters the binding fixes.
    pub params: Vec<String>,
}

/// One client stub's mediator chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StubView {
    /// Key of the stub's target object.
    pub object_key: String,
    /// Characteristics of the installed mediators, outermost first.
    pub mediators: Vec<String>,
}

/// Client-side resilience coverage, as deployed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceView {
    /// Object keys guarded by a resilience policy (deadline budget,
    /// circuit breaker, degradation ladder).
    pub guarded: Vec<String>,
}

/// A snapshot of the runtime weaving state of one deployment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeploymentView {
    /// The woven servants.
    pub servants: Vec<ServantView>,
    /// The live QoS bindings.
    pub bindings: Vec<BindingView>,
    /// The client stubs with mediators installed.
    pub stubs: Vec<StubView>,
    /// Resilience coverage, when the runtime reports it. `None` means
    /// the snapshot carries no resilience information and `QL107` stays
    /// silent; `Some` turns the coverage check on.
    pub resilience: Option<ResilienceView>,
}

impl DeploymentView {
    fn servant(&self, key: &str) -> Option<&ServantView> {
        self.servants.iter().find(|s| s.key == key)
    }
}

/// Cross-check `view` against `repo`, accumulating every finding.
///
/// Errors (`QL101`, `QL102`, `QL105`, `QL106`) mean requests or
/// negotiations *will* fail at runtime; warnings (`QL103`, `QL104`,
/// `QL107`) mean a declared QoS provision is silently absent.
pub fn lint_deployment(repo: &InterfaceRepository, view: &DeploymentView) -> Diagnostics {
    let mut acc = Diagnostics::new();

    for s in &view.servants {
        let Some(iface) = repo.interface(&s.interface) else {
            // Serving an undeclared interface is caught (by panic) at
            // weave time; nothing sensible to cross-check here.
            continue;
        };
        for tag in &iface.qos {
            if !s.installed.contains(tag) {
                acc.push(
                    Diagnostic::warn(
                        codes::MISSING_QOS_IMPL,
                        format!(
                            "servant `{}` serves `{}` but installs no implementation for \
                             assigned characteristic `{tag}`",
                            s.key, s.interface
                        ),
                    )
                    .with_note(format!("QoS operations of `{tag}` will raise QosNotNegotiated")),
                );
            }
        }
        for c in &s.capacities {
            let assigned = iface.qos.iter().any(|tag| tag == c);
            let installed = s.installed.contains(c);
            if !assigned || !installed {
                let why = if assigned { "never installed" } else { "not assigned" };
                acc.push(
                    Diagnostic::error(
                        codes::CAPACITY_UNUSABLE,
                        format!(
                            "servant `{}` advertises negotiation capacity for `{c}`, which is \
                             {why} on `{}`",
                            s.key, s.interface
                        ),
                    )
                    .with_note("admitted negotiations for it can never conclude"),
                );
            }
        }
    }

    for b in &view.bindings {
        let Some(q) = repo.qos(&b.characteristic) else {
            acc.push(
                Diagnostic::error(
                    codes::BINDING_UNKNOWN,
                    format!(
                        "binding on `{}` references unknown characteristic `{}`",
                        b.object_key, b.characteristic
                    ),
                )
                .with_note("it is not declared in the interface repository"),
            );
            continue;
        };
        if let Some(s) = view.servant(&b.object_key) {
            let assigned = repo
                .interface(&s.interface)
                .is_some_and(|i| i.qos.iter().any(|tag| tag == &b.characteristic));
            if !assigned {
                acc.push(
                    Diagnostic::error(
                        codes::BINDING_UNASSIGNED,
                        format!(
                            "binding on `{}` uses `{}`, which is not assigned to interface \
                             `{}`",
                            b.object_key, b.characteristic, s.interface
                        ),
                    )
                    .with_note("the woven skeleton rejects its QoS operations"),
                );
            }
        }
        for p in &b.params {
            if !q.params.iter().any(|qp| &qp.name == p) {
                acc.push(
                    Diagnostic::error(
                        codes::BINDING_PARAM_UNKNOWN,
                        format!(
                            "binding on `{}` sets param `{p}`, which `{}` does not declare",
                            b.object_key, b.characteristic
                        ),
                    )
                    .with_note("the server-side implementation will ignore it"),
                );
            }
        }
    }

    if let Some(res) = &view.resilience {
        let mut flagged: Vec<&str> = Vec::new();
        let depended = view
            .bindings
            .iter()
            .map(|b| b.object_key.as_str())
            .chain(view.stubs.iter().map(|s| s.object_key.as_str()));
        for key in depended {
            if res.guarded.iter().any(|g| g == key) || flagged.contains(&key) {
                continue;
            }
            flagged.push(key);
            acc.push(
                Diagnostic::warn(
                    codes::NO_RESILIENCE,
                    format!("QoS binding on `{key}` has no resilience policy configured"),
                )
                .with_note(
                    "agreement violations will pass unhandled: no deadline budget, \
                     circuit breaker, or degradation ladder guards this object",
                ),
            );
        }
    }

    for stub in &view.stubs {
        let Some(s) = view.servant(&stub.object_key) else { continue };
        for m in &stub.mediators {
            if !s.installed.contains(m) {
                acc.push(
                    Diagnostic::warn(
                        codes::NOT_NEGOTIABLE,
                        format!(
                            "stub for `{}` runs a `{m}` mediator, but the server never \
                             negotiates `{m}`",
                            stub.object_key
                        ),
                    )
                    .with_note("the mediator's wire context will be refused or ignored"),
                );
            }
        }
    }

    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qidl::diag::Severity;

    const SPEC: &str = r#"
        qos Replication category fault_tolerance {
            param unsigned long replicas = 3;
            management { unsigned long replica_count(); };
        };
        qos Actuality category timeliness {
            param unsigned long long validity_ms = 1000;
            management { void invalidate(); };
        };
        interface Kv with qos Replication, Actuality { void put(in string k); };
        interface Plain { void ping(); };
    "#;

    fn repo() -> InterfaceRepository {
        let mut r = InterfaceRepository::new();
        r.load(&qidl::compile(SPEC).unwrap()).unwrap();
        r
    }

    fn kv_servant() -> ServantView {
        ServantView {
            key: "kv".into(),
            interface: "Kv".into(),
            installed: vec!["Replication".into(), "Actuality".into()],
            capacities: vec!["Replication".into()],
        }
    }

    #[test]
    fn complete_deployment_is_clean() {
        let view = DeploymentView {
            servants: vec![kv_servant()],
            bindings: vec![BindingView {
                object_key: "kv".into(),
                characteristic: "Replication".into(),
                params: vec!["replicas".into()],
            }],
            stubs: vec![StubView {
                object_key: "kv".into(),
                mediators: vec!["Replication".into()],
            }],
            resilience: None,
        };
        let diags = lint_deployment(&repo(), &view);
        assert!(diags.is_empty(), "{:?}", diags.into_vec());
    }

    #[test]
    fn missing_impl_is_warned() {
        let view = DeploymentView {
            servants: vec![ServantView {
                key: "kv".into(),
                interface: "Kv".into(),
                installed: vec!["Replication".into()],
                capacities: vec![],
            }],
            ..DeploymentView::default()
        };
        let diags = lint_deployment(&repo(), &view);
        let d = diags.iter().find(|d| d.code == codes::MISSING_QOS_IMPL).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("Actuality"));
    }

    #[test]
    fn unusable_capacity_is_an_error() {
        let mut s = kv_servant();
        s.capacities = vec!["Actuality".into(), "Encryption".into()];
        s.installed = vec!["Replication".into()];
        let view = DeploymentView { servants: vec![s], ..DeploymentView::default() };
        let diags = lint_deployment(&repo(), &view);
        let msgs: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == codes::CAPACITY_UNUSABLE)
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("never installed"));
        assert!(msgs[1].contains("not assigned"));
        assert!(diags.has_errors());
    }

    #[test]
    fn bad_bindings_are_errors() {
        let view = DeploymentView {
            servants: vec![
                kv_servant(),
                ServantView { key: "p".into(), interface: "Plain".into(), ..Default::default() },
            ],
            bindings: vec![
                BindingView {
                    object_key: "kv".into(),
                    characteristic: "Ghost".into(),
                    params: vec![],
                },
                BindingView {
                    object_key: "p".into(),
                    characteristic: "Replication".into(),
                    params: vec![],
                },
                BindingView {
                    object_key: "kv".into(),
                    characteristic: "Replication".into(),
                    params: vec!["replicas".into(), "voters".into()],
                },
            ],
            stubs: vec![],
            resilience: None,
        };
        let diags = lint_deployment(&repo(), &view);
        assert!(diags.iter().any(|d| d.code == codes::BINDING_UNKNOWN));
        assert!(diags.iter().any(|d| d.code == codes::BINDING_UNASSIGNED));
        let d = diags.iter().find(|d| d.code == codes::BINDING_PARAM_UNKNOWN).unwrap();
        assert!(d.message.contains("voters"));
        assert_eq!(diags.count(Severity::Error), 3);
    }

    #[test]
    fn unguarded_binding_is_warned_only_with_resilience_info() {
        let base = DeploymentView {
            servants: vec![kv_servant()],
            bindings: vec![BindingView {
                object_key: "kv".into(),
                characteristic: "Replication".into(),
                params: vec![],
            }],
            stubs: vec![StubView {
                object_key: "kv".into(),
                mediators: vec!["Replication".into()],
            }],
            resilience: None,
        };
        // No resilience info: the coverage check stays silent.
        assert!(lint_deployment(&repo(), &base).is_empty());

        // Coverage reported, binding unguarded: one QL107 per object,
        // even though `kv` shows up as both a binding and a stub.
        let mut bare = base.clone();
        bare.resilience = Some(ResilienceView::default());
        let diags = lint_deployment(&repo(), &bare);
        let hits: Vec<_> = diags.iter().filter(|d| d.code == codes::NO_RESILIENCE).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].message.contains("`kv`"), "{}", hits[0].message);

        // Guarded: clean again.
        let mut guarded = base;
        guarded.resilience = Some(ResilienceView { guarded: vec!["kv".into()] });
        assert!(lint_deployment(&repo(), &guarded).is_empty());
    }

    #[test]
    fn unnegotiable_mediator_is_warned() {
        let mut s = kv_servant();
        s.installed = vec!["Replication".into()];
        let view = DeploymentView {
            servants: vec![s],
            bindings: vec![],
            stubs: vec![StubView { object_key: "kv".into(), mediators: vec!["Actuality".into()] }],
            resilience: None,
        };
        let diags = lint_deployment(&repo(), &view);
        let d = diags.iter().find(|d| d.code == codes::NOT_NEGOTIABLE).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("Actuality"));
    }
}
