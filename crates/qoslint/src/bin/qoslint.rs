//! The `qoslint` command-line front-end.
//!
//! ```text
//! qoslint [--deny-warnings] [--format human|json] <spec.qidl>...
//! ```
//!
//! Exit codes: `0` clean, `1` lint findings failed the run, `2` usage or
//! I/O error. With `--format json` one JSON report object is printed
//! per input file (line-oriented, machine-readable); the human format
//! excerpts source lines rustc-style.

use qoslint::render::{render_human, render_json, summary, SourceFile};
use qoslint::{lint_source, Severity};
use std::process::ExitCode;

const USAGE: &str = "usage: qoslint [--deny-warnings] [--format human|json] <spec.qidl>...";

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

struct Options {
    deny_warnings: bool,
    format: Format,
    files: Vec<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options { deny_warnings: false, format: Format::Human, files: Vec::new() };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--format" => match args.next().as_deref() {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires a value".to_string()),
            },
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("qoslint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    for path in &opts.files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("qoslint: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = lint_source(&text);
        failed |= diags.has_errors() || (opts.deny_warnings && diags.count(Severity::Warn) > 0);
        match opts.format {
            Format::Json => println!("{}", render_json(Some(path), &diags)),
            Format::Human => {
                print!("{}", render_human(Some(SourceFile { name: path, text: &text }), &diags));
                let tally = summary(&diags);
                if tally.is_empty() {
                    println!("{path}: clean");
                } else {
                    println!("{path}: {tally}");
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argument_parsing() {
        let opts = parse_args(
            ["--deny-warnings", "--format", "json", "a.qidl", "b.qidl"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(opts.deny_warnings);
        assert!(opts.format == Format::Json);
        assert_eq!(opts.files, vec!["a.qidl", "b.qidl"]);

        assert!(parse_args(std::iter::empty()).is_err());
        assert!(parse_args(["--format"].into_iter().map(String::from)).is_err());
        assert!(parse_args(["--format", "xml", "a"].into_iter().map(String::from)).is_err());
        assert!(parse_args(["--wat", "a"].into_iter().map(String::from)).is_err());
        assert_eq!(parse_args(["--help"].into_iter().map(String::from)).err().as_deref(), Some(""));
    }
}
