//! The group membership service, itself an ORB object.

use crate::view::ViewTracker;
use netsim::NodeId;
use orb::{Any, Ior, OrbError, Servant};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Repository id of the membership service interface.
pub const GROUP_SERVICE_INTERFACE: &str = "IDL:maqs/GroupService:1.0";

struct Group {
    tracker: ViewTracker,
    /// Member object references (IOR URIs), keyed by hosting node.
    members: HashMap<NodeId, String>,
}

/// A membership service servant.
///
/// Operations (all args/results are `Any`s):
///
/// * `join(group: string, ior_uri: string)` → `view_id: ulonglong`
/// * `leave(group: string, node: ulong)` → `view_id: ulonglong`
/// * `members(group: string)` → `sequence<string>` of IOR URIs
/// * `view_id(group: string)` → `ulonglong`
/// * `remove_node(group: string, node: ulong)` → `view_id` (failure
///   detectors call this to evict crashed members)
#[derive(Default)]
pub struct GroupService {
    groups: Mutex<HashMap<String, Group>>,
}

impl GroupService {
    /// An empty service.
    pub fn new() -> GroupService {
        GroupService::default()
    }

    fn join(&self, group: &str, ior_uri: &str) -> Result<u64, OrbError> {
        let ior = Ior::from_uri(ior_uri)?;
        let mut groups = self.groups.lock();
        let g = groups.entry(group.to_string()).or_insert_with(|| Group {
            tracker: ViewTracker::new(group),
            members: HashMap::new(),
        });
        g.tracker.join(ior.node);
        g.members.insert(ior.node, ior_uri.to_string());
        Ok(g.tracker.view().view_id)
    }

    fn remove(&self, group: &str, node: NodeId) -> Result<u64, OrbError> {
        let mut groups = self.groups.lock();
        let g = groups
            .get_mut(group)
            .ok_or_else(|| OrbError::ObjectNotExist(format!("group {group}")))?;
        g.tracker.leave(node);
        g.members.remove(&node);
        Ok(g.tracker.view().view_id)
    }

    fn members(&self, group: &str) -> Vec<String> {
        let groups = self.groups.lock();
        match groups.get(group) {
            None => Vec::new(),
            Some(g) => {
                // In view order (sorted by node id) for determinism.
                g.tracker
                    .view()
                    .members
                    .iter()
                    .filter_map(|n| g.members.get(n).cloned())
                    .collect()
            }
        }
    }

    fn view_id(&self, group: &str) -> u64 {
        self.groups.lock().get(group).map(|g| g.tracker.view().view_id).unwrap_or(0)
    }
}

fn str_arg(args: &[Any], i: usize, ctx: &str) -> Result<String, OrbError> {
    args.get(i)
        .and_then(Any::as_str)
        .map(str::to_string)
        .ok_or_else(|| OrbError::BadParam(format!("{ctx}: argument {i} must be a string")))
}

fn node_arg(args: &[Any], i: usize, ctx: &str) -> Result<NodeId, OrbError> {
    args.get(i)
        .and_then(Any::as_i64)
        .and_then(|v| u32::try_from(v).ok())
        .map(NodeId)
        .ok_or_else(|| OrbError::BadParam(format!("{ctx}: argument {i} must be a node id")))
}

impl Servant for GroupService {
    fn interface_id(&self) -> &str {
        GROUP_SERVICE_INTERFACE
    }

    fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "join" => {
                let group = str_arg(args, 0, "join")?;
                let ior = str_arg(args, 1, "join")?;
                Ok(Any::ULongLong(self.join(&group, &ior)?))
            }
            "leave" | "remove_node" => {
                let group = str_arg(args, 0, op)?;
                let node = node_arg(args, 1, op)?;
                Ok(Any::ULongLong(self.remove(&group, node)?))
            }
            "members" => {
                let group = str_arg(args, 0, "members")?;
                Ok(Any::Sequence(self.members(&group).into_iter().map(Any::Str).collect()))
            }
            "view_id" => {
                let group = str_arg(args, 0, "view_id")?;
                Ok(Any::ULongLong(self.view_id(&group)))
            }
            other => Err(OrbError::BadOperation(other.to_string())),
        }
    }
}

/// Client-side helper: fetch the current member IORs of `group` from a
/// membership service at `service`.
///
/// # Errors
///
/// Propagates invocation failures and malformed IOR URIs.
pub fn fetch_members(
    orb: &orb::Orb,
    service: &Ior,
    group: &str,
) -> Result<Vec<Ior>, OrbError> {
    let reply = orb.invoke(service, "members", &[Any::from(group)])?;
    let items = reply
        .as_sequence()
        .ok_or_else(|| OrbError::Marshal("members: expected sequence".to_string()))?;
    items
        .iter()
        .map(|item| {
            let uri = item
                .as_str()
                .ok_or_else(|| OrbError::Marshal("members: expected string".to_string()))?;
            Ior::from_uri(uri)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::Orb;

    fn ior_on(node: u32, key: &str) -> String {
        Ior::new("IDL:Register:1.0", NodeId(node), key).to_uri()
    }

    #[test]
    fn join_members_leave() {
        let svc = GroupService::new();
        let v1 = svc.dispatch("join", &[Any::from("g"), Any::from(ior_on(1, "r1"))]).unwrap();
        assert_eq!(v1, Any::ULongLong(2)); // empty view is 1, first join bumps to 2
        svc.dispatch("join", &[Any::from("g"), Any::from(ior_on(2, "r2"))]).unwrap();
        let members = svc.dispatch("members", &[Any::from("g")]).unwrap();
        assert_eq!(members.as_sequence().unwrap().len(), 2);
        svc.dispatch("leave", &[Any::from("g"), Any::ULong(1)]).unwrap();
        let members = svc.dispatch("members", &[Any::from("g")]).unwrap();
        assert_eq!(members.as_sequence().unwrap().len(), 1);
        assert_eq!(svc.dispatch("view_id", &[Any::from("g")]).unwrap(), Any::ULongLong(4));
    }

    #[test]
    fn unknown_group_behaviour() {
        let svc = GroupService::new();
        assert_eq!(svc.dispatch("view_id", &[Any::from("nope")]).unwrap(), Any::ULongLong(0));
        assert_eq!(
            svc.dispatch("members", &[Any::from("nope")]).unwrap(),
            Any::Sequence(vec![])
        );
        assert!(svc.dispatch("leave", &[Any::from("nope"), Any::ULong(1)]).is_err());
    }

    #[test]
    fn rejects_bad_arguments() {
        let svc = GroupService::new();
        assert!(svc.dispatch("join", &[Any::Long(3)]).is_err());
        assert!(svc.dispatch("join", &[Any::from("g"), Any::from("not-an-ior")]).is_err());
        assert!(svc.dispatch("frob", &[]).is_err());
    }

    #[test]
    fn fetch_members_over_the_orb() {
        let net = Network::new(1);
        let host = Orb::start(&net, "gs-host");
        let client = Orb::start(&net, "client");
        let svc_ior = host.activate("groups", Box::new(GroupService::new()));
        client
            .invoke(&svc_ior, "join", &[Any::from("db"), Any::from(ior_on(7, "a"))])
            .unwrap();
        client
            .invoke(&svc_ior, "join", &[Any::from("db"), Any::from(ior_on(9, "b"))])
            .unwrap();
        let members = fetch_members(&client, &svc_ior, "db").unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].node, NodeId(7));
        assert_eq!(members[1].node, NodeId(9));
        host.shutdown();
        client.shutdown();
    }
}
