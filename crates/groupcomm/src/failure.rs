//! Liveness probing for group members.

use orb::core::OrbConfig;
use orb::{Ior, Orb};
use std::time::Duration;

/// Probes object liveness through the ORB.
///
/// Uses the CORBA built-in `_non_existent` operation with a short
/// timeout: a crashed node never answers, a live one answers `false`.
/// This is the unreliable-failure-detector end of the spectrum — exactly
/// what a 2001-era CORBA deployment had.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    orb: Orb,
    timeout: Duration,
}

impl FailureDetector {
    /// A detector probing through `orb` with the given per-probe timeout.
    pub fn new(orb: Orb, timeout: Duration) -> FailureDetector {
        FailureDetector { orb, timeout }
    }

    /// The configured probe timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Whether the object behind `ior` currently answers.
    pub fn is_alive(&self, ior: &Ior) -> bool {
        // A dedicated short-timeout probe ORB call: reuse the orb but
        // bound the wait ourselves via invoke_collect's timeout.
        match self.orb.invoke_collect(ior, "_non_existent", &[], None, 1, self.timeout) {
            Ok(replies) => replies.iter().any(|(_, r)| r.is_ok()),
            Err(_) => false,
        }
    }

    /// Partition `iors` into `(alive, dead)`.
    pub fn sweep<'a>(&self, iors: &'a [Ior]) -> (Vec<&'a Ior>, Vec<&'a Ior>) {
        let mut alive = Vec::new();
        let mut dead = Vec::new();
        for ior in iors {
            if self.is_alive(ior) {
                alive.push(ior);
            } else {
                dead.push(ior);
            }
        }
        (alive, dead)
    }
}

/// Convenience: a probe-friendly ORB configuration (short timeouts),
/// for dedicated prober ORBs.
pub fn probe_config() -> OrbConfig {
    OrbConfig { request_timeout: Duration::from_millis(250), ..OrbConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::{Any, OrbError, Servant};

    struct Noop;
    impl Servant for Noop {
        fn interface_id(&self) -> &str {
            "IDL:Noop:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            Err(OrbError::BadOperation(op.to_string()))
        }
    }

    #[test]
    fn detects_live_and_crashed_nodes() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("x", Box::new(Noop));
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        assert!(fd.is_alive(&ior));
        net.crash(server.node());
        assert!(!fd.is_alive(&ior));
        net.revive(server.node());
        assert!(fd.is_alive(&ior));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn deactivated_object_counts_as_dead() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("x", Box::new(Noop));
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        assert!(fd.is_alive(&ior));
        server.deactivate("x");
        assert!(!fd.is_alive(&ior));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn sweep_partitions_members() {
        let net = Network::new(1);
        let a = Orb::start(&net, "a");
        let b = Orb::start(&net, "b");
        let client = Orb::start(&net, "client");
        let ior_a = a.activate("x", Box::new(Noop));
        let ior_b = b.activate("x", Box::new(Noop));
        net.crash(b.node());
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        let iors = vec![ior_a.clone(), ior_b.clone()];
        let (alive, dead) = fd.sweep(&iors);
        assert_eq!(alive, vec![&ior_a]);
        assert_eq!(dead, vec![&ior_b]);
        a.shutdown();
        b.shutdown();
        client.shutdown();
    }
}
