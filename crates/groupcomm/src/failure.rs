//! Liveness probing for group members.

use orb::core::OrbConfig;
use orb::{Ior, Orb};
use std::time::Duration;

/// Probes object liveness through the ORB.
///
/// Uses the CORBA built-in `_non_existent` operation with a short
/// timeout: a crashed node never answers, a live one answers `false`.
/// This is the unreliable-failure-detector end of the spectrum — exactly
/// what a 2001-era CORBA deployment had.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    orb: Orb,
    timeout: Duration,
}

impl FailureDetector {
    /// A detector probing through `orb` with the given per-probe timeout.
    pub fn new(orb: Orb, timeout: Duration) -> FailureDetector {
        FailureDetector { orb, timeout }
    }

    /// The configured probe timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Whether the object behind `ior` currently answers.
    pub fn is_alive(&self, ior: &Ior) -> bool {
        // A probe-tagged `_non_existent` call: bounded by our own timeout
        // and counted under `orb.probe.*`, so detector chatter never
        // pollutes the request-path metrics availability is derived from.
        match self.orb.probe_collect(ior, self.timeout) {
            Ok(replies) => replies.iter().any(|(_, r)| r.is_ok()),
            Err(_) => false,
        }
    }

    /// Partition `iors` into `(alive, dead)`.
    pub fn sweep<'a>(&self, iors: &'a [Ior]) -> (Vec<&'a Ior>, Vec<&'a Ior>) {
        let mut alive = Vec::new();
        let mut dead = Vec::new();
        for ior in iors {
            if self.is_alive(ior) {
                alive.push(ior);
            } else {
                dead.push(ior);
            }
        }
        (alive, dead)
    }
}

/// Convenience: a probe-friendly ORB configuration (short timeouts),
/// for dedicated prober ORBs.
pub fn probe_config() -> OrbConfig {
    OrbConfig { request_timeout: Duration::from_millis(250), ..OrbConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::{Any, OrbError, Servant};

    struct Noop;
    impl Servant for Noop {
        fn interface_id(&self) -> &str {
            "IDL:Noop:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            Err(OrbError::BadOperation(op.to_string()))
        }
    }

    #[test]
    fn detects_live_and_crashed_nodes() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("x", Box::new(Noop));
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        assert!(fd.is_alive(&ior));
        net.crash(server.node());
        assert!(!fd.is_alive(&ior));
        net.revive(server.node());
        assert!(fd.is_alive(&ior));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn probes_stay_out_of_request_metrics() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("x", Box::new(Noop));
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        for _ in 0..3 {
            assert!(fd.is_alive(&ior));
        }
        assert_eq!(client.metrics().snapshot().counter("orb.requests_sent"), 0);
        assert_eq!(server.metrics().snapshot().counter("orb.requests_handled"), 0);
        assert_eq!(client.metrics().snapshot().counter("orb.probe.requests_sent"), 3);
        assert_eq!(server.metrics().snapshot().counter("orb.probe.requests_handled"), 3);
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn deactivated_object_counts_as_dead() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate("x", Box::new(Noop));
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        assert!(fd.is_alive(&ior));
        server.deactivate("x");
        assert!(!fd.is_alive(&ior));
        server.shutdown();
        client.shutdown();
    }

    #[test]
    fn sweep_partitions_members() {
        let net = Network::new(1);
        let a = Orb::start(&net, "a");
        let b = Orb::start(&net, "b");
        let client = Orb::start(&net, "client");
        let ior_a = a.activate("x", Box::new(Noop));
        let ior_b = b.activate("x", Box::new(Noop));
        net.crash(b.node());
        let fd = FailureDetector::new(client.clone(), Duration::from_millis(300));
        let iors = vec![ior_a.clone(), ior_b.clone()];
        let (alive, dead) = fd.sweep(&iors);
        assert_eq!(alive, vec![&ior_a]);
        assert_eq!(dead, vec![&ior_b]);
        a.shutdown();
        b.shutdown();
        client.shutdown();
    }
}
