//! A transport-level multicast QoS module (Fig. 3's "group communication
//! on the network layer").

use netsim::NodeId;
use orb::qos_binding::{Outbound, QosModule};
use orb::{Any, OrbError};
use parking_lot::RwLock;

/// Fans every outbound message out to all configured group member nodes.
///
/// Loaded into a client ORB's [`orb::QosTransport`] and bound to the
/// replicated object, it turns an ordinary invocation into a one-to-many
/// invocation; each replica replies individually and the caller gathers
/// replies with [`orb::Orb::invoke_collect`]. The member list is managed
/// through the module's dynamic interface (commands), which is exactly
/// how the paper expects QoS mechanisms to be configured at runtime:
///
/// * `set_members(sequence<ulong>)` — replace the member node list
/// * `add_member(ulong)` / `remove_member(ulong)`
/// * `members()` → `sequence<ulong>`
pub struct MulticastModule {
    name: String,
    members: RwLock<Vec<NodeId>>,
}

impl MulticastModule {
    /// A module named `name` (bindings and packets reference this name)
    /// with an initial member list.
    pub fn new(name: impl Into<String>, members: impl IntoIterator<Item = NodeId>) -> MulticastModule {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        MulticastModule { name: name.into(), members: RwLock::new(members) }
    }

    /// Current member nodes, sorted.
    pub fn members(&self) -> Vec<NodeId> {
        self.members.read().clone()
    }

    fn set_members(&self, nodes: Vec<NodeId>) {
        let mut m = self.members.write();
        *m = nodes;
        m.sort_unstable();
        m.dedup();
    }
}

fn nodes_from_any(v: &Any, ctx: &str) -> Result<Vec<NodeId>, OrbError> {
    let items = v
        .as_sequence()
        .ok_or_else(|| OrbError::BadParam(format!("{ctx}: expected sequence of node ids")))?;
    items
        .iter()
        .map(|item| {
            item.as_i64()
                .and_then(|v| u32::try_from(v).ok())
                .map(NodeId)
                .ok_or_else(|| OrbError::BadParam(format!("{ctx}: bad node id {item}")))
        })
        .collect()
}

impl QosModule for MulticastModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn command(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "set_members" => {
                let nodes = nodes_from_any(
                    args.first().unwrap_or(&Any::Sequence(vec![])),
                    "set_members",
                )?;
                self.set_members(nodes);
                Ok(Any::Void)
            }
            "add_member" => {
                let node = args
                    .first()
                    .and_then(Any::as_i64)
                    .and_then(|v| u32::try_from(v).ok())
                    .map(NodeId)
                    .ok_or_else(|| OrbError::BadParam("add_member(node)".to_string()))?;
                let mut m = self.members.write();
                if let Err(pos) = m.binary_search(&node) {
                    m.insert(pos, node);
                }
                Ok(Any::Void)
            }
            "remove_member" => {
                let node = args
                    .first()
                    .and_then(Any::as_i64)
                    .and_then(|v| u32::try_from(v).ok())
                    .map(NodeId)
                    .ok_or_else(|| OrbError::BadParam("remove_member(node)".to_string()))?;
                let mut m = self.members.write();
                if let Ok(pos) = m.binary_search(&node) {
                    m.remove(pos);
                }
                Ok(Any::Void)
            }
            "members" => Ok(Any::Sequence(
                self.members().into_iter().map(|n| Any::ULong(n.0)).collect(),
            )),
            other => Err(OrbError::BadOperation(format!("multicast command {other}"))),
        }
    }

    fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        let members = self.members.read();
        if members.is_empty() {
            // No group configured: degrade to unicast.
            return Ok(vec![(dst, bytes)]);
        }
        Ok(members.iter().map(|n| (*n, bytes.clone())).collect())
    }

    // `inbound` is the trait default: identity, zero-copy. Fan-out is
    // an outbound-only concern; receivers see ordinary GIOP bodies.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn outbound_fans_out_to_all_members() {
        let m = MulticastModule::new("mc", [n(1), n(2), n(3)]);
        let outs = m.outbound(n(9), vec![0xAB]).unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|(_, b)| b == &vec![0xAB]));
        let nodes: Vec<NodeId> = outs.iter().map(|(d, _)| *d).collect();
        assert_eq!(nodes, vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn empty_group_degrades_to_unicast() {
        let m = MulticastModule::new("mc", []);
        let outs = m.outbound(n(9), vec![1]).unwrap();
        assert_eq!(outs, vec![(n(9), vec![1])]);
    }

    #[test]
    fn member_management_commands() {
        let m = MulticastModule::new("mc", [n(5)]);
        m.command("add_member", &[Any::ULong(3)]).unwrap();
        m.command("add_member", &[Any::ULong(3)]).unwrap(); // idempotent
        assert_eq!(m.members(), vec![n(3), n(5)]);
        m.command("remove_member", &[Any::ULong(5)]).unwrap();
        assert_eq!(m.members(), vec![n(3)]);
        m.command(
            "set_members",
            &[Any::Sequence(vec![Any::ULong(8), Any::ULong(6), Any::ULong(8)])],
        )
        .unwrap();
        assert_eq!(m.members(), vec![n(6), n(8)]);
        let listed = m.command("members", &[]).unwrap();
        assert_eq!(listed, Any::Sequence(vec![Any::ULong(6), Any::ULong(8)]));
    }

    #[test]
    fn bad_commands_rejected() {
        let m = MulticastModule::new("mc", []);
        assert!(m.command("set_members", &[Any::Long(1)]).is_err());
        assert!(m.command("add_member", &[Any::from("x")]).is_err());
        assert!(m.command("add_member", &[Any::Long(-1)]).is_err());
        assert!(m.command("warp", &[]).is_err());
    }

    #[test]
    fn inbound_is_identity() {
        let m = MulticastModule::new("mc", [n(1)]);
        let got = m.inbound(n(1), &[9]).unwrap().unwrap();
        assert!(
            matches!(got, std::borrow::Cow::Borrowed(_)),
            "identity inbound must not copy"
        );
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn constructor_sorts_and_dedups() {
        let m = MulticastModule::new("mc", [n(4), n(2), n(4)]);
        assert_eq!(m.members(), vec![n(2), n(4)]);
    }
}
