//! Group communication substrate.
//!
//! The paper's fault-tolerance characteristic masks server crashes with
//! replica groups (§3.1, §6), reusing "a multicast on network layer …
//! for k-availability as well as for diversity through majority votes on
//! results". Electra-style group communication does not exist in our
//! stack, so this crate builds it on top of the [`orb`]:
//!
//! * [`GroupView`] / [`ViewTracker`] — versioned group membership with
//!   monotone view ids;
//! * [`GroupService`] — a membership service servant (join/leave/view),
//!   deployable on any node and reachable through the ORB like any other
//!   object;
//! * [`MulticastModule`] — a transport-level QoS module (pluggable into
//!   the [`orb::QosTransport`], Fig. 3) that fans one request out to all
//!   group members;
//! * [`FailureDetector`] — liveness probing via the built-in
//!   `_non_existent` operation with a short timeout;
//! * [`transfer_state`] — replica initialization: copy `_get_state` from
//!   a running member into a joining one (§3.1's motivating example for
//!   QoS-aspect integration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod failure;
mod membership;
mod multicast;
mod view;

pub use failure::{probe_config, FailureDetector};
pub use membership::{fetch_members, GroupService, GROUP_SERVICE_INTERFACE};
pub use multicast::MulticastModule;
pub use view::{GroupView, ViewTracker};

use orb::{Ior, Orb, OrbError};

/// Initialize a joining replica from a running one: read the state of
/// `source` and install it into `target` (both via the ORB, so the
/// transfer itself is just another pair of requests).
///
/// # Errors
///
/// Propagates failures of either the `_get_state` read or the
/// `_set_state` write.
pub fn transfer_state(orb: &Orb, source: &Ior, target: &Ior) -> Result<(), OrbError> {
    let state = orb.invoke(source, "_get_state", &[])?;
    orb.invoke(target, "_set_state", &[state])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::{Any, Servant};
    use parking_lot::Mutex;

    struct Register(Mutex<i64>);
    impl Servant for Register {
        fn interface_id(&self) -> &str {
            "IDL:Register:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "set" => {
                    *self.0.lock() = args[0].as_i64().unwrap_or(0);
                    Ok(Any::Void)
                }
                "get" => Ok(Any::LongLong(*self.0.lock())),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
        fn get_state(&self) -> Result<Any, OrbError> {
            Ok(Any::LongLong(*self.0.lock()))
        }
        fn set_state(&self, state: &Any) -> Result<(), OrbError> {
            *self.0.lock() = state.as_i64().ok_or_else(|| OrbError::BadParam("state".into()))?;
            Ok(())
        }
    }

    #[test]
    fn state_transfer_initializes_new_replica() {
        let net = Network::new(1);
        let a = Orb::start(&net, "a");
        let b = Orb::start(&net, "b");
        let client = Orb::start(&net, "client");
        let ior_a = a.activate("r", Box::new(Register(Mutex::new(0))));
        let ior_b = b.activate("r", Box::new(Register(Mutex::new(0))));
        client.invoke(&ior_a, "set", &[Any::LongLong(99)]).unwrap();
        transfer_state(&client, &ior_a, &ior_b).unwrap();
        assert_eq!(client.invoke(&ior_b, "get", &[]).unwrap(), Any::LongLong(99));
        a.shutdown();
        b.shutdown();
        client.shutdown();
    }
}
