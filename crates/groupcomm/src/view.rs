//! Versioned group membership views.

use netsim::NodeId;
use std::fmt;

/// An immutable snapshot of a group's membership at one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// Group name.
    pub group: String,
    /// Monotonically increasing view version (starts at 1).
    pub view_id: u64,
    /// Member nodes, sorted and deduplicated.
    pub members: Vec<NodeId>,
}

impl GroupView {
    /// A first view (`view_id == 1`) with the given members.
    pub fn initial(group: impl Into<String>, members: impl IntoIterator<Item = NodeId>) -> GroupView {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        GroupView { group: group.into(), view_id: 1, members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The majority quorum size (`⌊n/2⌋ + 1`), 0 for an empty view.
    pub fn quorum(&self) -> usize {
        if self.members.is_empty() {
            0
        } else {
            self.members.len() / 2 + 1
        }
    }
}

impl fmt::Display for GroupView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#v{}[", self.group, self.view_id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

/// Evolves a [`GroupView`] while preserving its invariants: view ids grow
/// by exactly one per change, membership stays sorted and unique, and
/// no-op changes do not create new views.
#[derive(Debug, Clone)]
pub struct ViewTracker {
    view: GroupView,
}

impl ViewTracker {
    /// Track `group` starting from an empty first view.
    pub fn new(group: impl Into<String>) -> ViewTracker {
        ViewTracker { view: GroupView::initial(group, []) }
    }

    /// The current view.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// Add a member. Returns `true` (and bumps the view) if it was new.
    pub fn join(&mut self, node: NodeId) -> bool {
        match self.view.members.binary_search(&node) {
            Ok(_) => false,
            Err(pos) => {
                self.view.members.insert(pos, node);
                self.view.view_id += 1;
                true
            }
        }
    }

    /// Remove a member. Returns `true` (and bumps the view) if present.
    pub fn leave(&mut self, node: NodeId) -> bool {
        match self.view.members.binary_search(&node) {
            Ok(pos) => {
                self.view.members.remove(pos);
                self.view.view_id += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Remove every member not in `alive`. Returns the number removed.
    pub fn retain_alive(&mut self, alive: &[NodeId]) -> usize {
        let before = self.view.members.len();
        self.view.members.retain(|m| alive.contains(m));
        let removed = before - self.view.members.len();
        if removed > 0 {
            self.view.view_id += 1;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn initial_view_sorts_and_dedups() {
        let v = GroupView::initial("g", [n(3), n(1), n(3), n(2)]);
        assert_eq!(v.members, vec![n(1), n(2), n(3)]);
        assert_eq!(v.view_id, 1);
        assert!(v.contains(n(2)));
        assert!(!v.contains(n(9)));
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(GroupView::initial("g", []).quorum(), 0);
        assert_eq!(GroupView::initial("g", [n(1)]).quorum(), 1);
        assert_eq!(GroupView::initial("g", [n(1), n(2)]).quorum(), 2);
        assert_eq!(GroupView::initial("g", [n(1), n(2), n(3)]).quorum(), 2);
        assert_eq!(GroupView::initial("g", (0..5).map(n)).quorum(), 3);
    }

    #[test]
    fn join_leave_bump_views_only_on_change() {
        let mut t = ViewTracker::new("g");
        assert!(t.join(n(1)));
        assert_eq!(t.view().view_id, 2);
        assert!(!t.join(n(1))); // duplicate join: no new view
        assert_eq!(t.view().view_id, 2);
        assert!(t.join(n(2)));
        assert!(t.leave(n(1)));
        assert_eq!(t.view().view_id, 4);
        assert!(!t.leave(n(1)));
        assert_eq!(t.view().view_id, 4);
        assert_eq!(t.view().members, vec![n(2)]);
    }

    #[test]
    fn retain_alive_removes_dead_members() {
        let mut t = ViewTracker::new("g");
        for i in 1..=4 {
            t.join(n(i));
        }
        let v_before = t.view().view_id;
        assert_eq!(t.retain_alive(&[n(1), n(3)]), 2);
        assert_eq!(t.view().members, vec![n(1), n(3)]);
        assert_eq!(t.view().view_id, v_before + 1);
        // All alive: no view change.
        assert_eq!(t.retain_alive(&[n(1), n(3)]), 0);
        assert_eq!(t.view().view_id, v_before + 1);
    }

    #[test]
    fn display_format() {
        let v = GroupView::initial("db", [n(1), n(2)]);
        assert_eq!(v.to_string(), "db#v1[n1,n2]");
    }
}
