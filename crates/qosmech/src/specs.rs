//! Canonical QIDL declarations of the five evaluated characteristics.
//!
//! Loading these into an [`qidl::InterfaceRepository`] lets interfaces be
//! declared `with qos Replication, Encryption, …` and gives the weaving
//! runtime the metadata to classify QoS operations.

/// QIDL source declaring the five §6 characteristics.
pub const QOS_SPECS: &str = r#"
qos Replication category fault_tolerance {
    param unsigned long replicas = 3;
    param string strategy = "failover";
    param double availability = 0.99;
    management {
        unsigned long replica_count();
        any stats();
    };
    peer {
        void sync_view(in unsigned long long view_id);
    };
    integration {
        any export_state();
        void import_state(in any state);
        string replica_role();
        void set_replica_role(in string role);
    };
};

qos LoadBalancing category performance {
    param string strategy = "round_robin";
    param unsigned long servers = 2;
    management {
        unsigned long server_count();
        sequence<unsigned long long> routed();
        long long load();
        unsigned long long served();
    };
};

qos Compression category performance {
    param long level = 6;
    param unsigned long min_bandwidth_kbps = 64;
    management {
        sequence<unsigned long long> stats();
        void reset_stats();
    };
};

qos Encryption category privacy {
    param string cipher = "xorshift-stream";
    param unsigned long long key_lifetime_ms = 60000;
    management {
        unsigned long long key_id();
        unsigned long long frames();
    };
    peer {
        void rekey(in unsigned long long key);
        unsigned long long exchange(in unsigned long long public_half);
    };
};

qos Actuality category timeliness {
    param unsigned long long validity_ms = 1000;
    management {
        void set_validity_ms(in long long ms);
        void invalidate();
        double hit_ratio();
        unsigned long long now_us();
        unsigned long long stamped();
    };
};
"#;

/// Compile [`QOS_SPECS`] and load it into a fresh repository.
///
/// # Panics
///
/// Panics if the embedded spec does not compile — that would be a bug in
/// this crate, caught by its tests.
pub fn standard_repository() -> qidl::InterfaceRepository {
    let spec = qidl::compile(QOS_SPECS).expect("embedded QoS spec must compile");
    let mut repo = qidl::InterfaceRepository::new();
    repo.load(&spec).expect("embedded QoS spec must load");
    repo
}

/// Names of the five standard characteristics.
pub const CHARACTERISTICS: [&str; 5] =
    ["Replication", "LoadBalancing", "Compression", "Encryption", "Actuality"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_compile_and_load() {
        let repo = standard_repository();
        for name in CHARACTERISTICS {
            assert!(repo.qos(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn categories_match_the_paper() {
        let repo = standard_repository();
        assert_eq!(repo.qos("Replication").unwrap().category.as_deref(), Some("fault_tolerance"));
        assert_eq!(repo.qos("LoadBalancing").unwrap().category.as_deref(), Some("performance"));
        assert_eq!(repo.qos("Compression").unwrap().category.as_deref(), Some("performance"));
        assert_eq!(repo.qos("Encryption").unwrap().category.as_deref(), Some("privacy"));
        assert_eq!(repo.qos("Actuality").unwrap().category.as_deref(), Some("timeliness"));
    }

    #[test]
    fn replication_has_all_three_responsibility_groups() {
        let repo = standard_repository();
        let r = repo.qos("Replication").unwrap();
        assert!(!r.management.is_empty());
        assert!(!r.peer.is_empty());
        assert!(!r.integration.is_empty());
        assert_eq!(r.params.len(), 3);
    }

    #[test]
    fn interfaces_can_assign_the_characteristics() {
        let mut repo = standard_repository();
        let spec = qidl::parser::parse(
            &qidl::lexer::lex("interface Bank with qos Replication, Encryption { long balance(); };")
                .unwrap(),
        )
        .unwrap();
        repo.load(&spec).unwrap();
        assert_eq!(repo.assigned_qos("Bank").len(), 2);
        assert!(repo.lookup_woven("Bank", "export_state").is_some());
        assert!(repo.lookup_woven("Bank", "rekey").is_some());
        assert!(repo.lookup_woven("Bank", "set_validity_ms").is_none());
    }
}
