//! The QoS mechanisms evaluated by the paper (§6).
//!
//! "So far the framework has been evaluated by implementing QoS
//! characteristics from diverse QoS categories, e.g. fault-tolerance
//! through replica groups, performance by load-balancing, compression
//! for channels with small bandwidth, actuality of data, and privacy
//! through encryption." This crate implements all five, each as the pair
//! the weaving architecture prescribes:
//!
//! | characteristic | client side (mediator) | server/transport side |
//! |---|---|---|
//! | [`replication`] | failover / majority-vote mediator | replica groups + state transfer; multicast transport module |
//! | [`loadbalance`] | strategy mediator (round-robin, random, least-loaded) | load-reporting QoS implementation |
//! | [`compress`] | binding mediator | LZ77-style transport module ([`compress::codec`]) |
//! | [`crypt`] | binding mediator + key exchange | stream-cipher transport module |
//! | [`actuality`] | bounded-staleness caching mediator | freshness-stamping QoS implementation |
//!
//! [`bandwidth`] adds the paper's own §4 module example — "reserve a
//! distinct bandwidth" — as token-bucket admission control, and
//! [`specs`] carries the canonical QIDL declarations of the
//! characteristics, ready to load into an interface repository.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuality;
pub mod bandwidth;
pub mod compress;
pub mod crypt;
pub mod loadbalance;
pub mod replication;
pub mod specs;
