//! Compression for small-bandwidth channels.
//!
//! The paper's performance-category example for transport-level QoS:
//! trade CPU for bytes on the wire. The codec is a from-scratch
//! LZ77-style compressor (the offline dependency set has no compression
//! crate); only the bytes-on-the-wire reduction matters for the
//! experiment, not codec strength.

use orb::sync::{LockRank, OrderedRwLock};
use orb::qos_binding::{Outbound, QosModule};
use orb::{Any, MetricsRegistry, OrbError};
use netsim::NodeId;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

/// The LZ77-style codec.
pub mod codec {
    /// Magic prefix of compressed buffers.
    pub const MAGIC: &[u8; 4] = b"MLZ1";

    const WINDOW: usize = 4096;
    const MIN_MATCH: usize = 4;
    const MAX_MATCH: usize = 255;

    /// Compress `input`.
    ///
    /// Output layout: `MAGIC`, then a token stream. Token first byte:
    /// `0x00, len(u16 le), bytes` = literal run; `0x01, dist(u16 le),
    /// len(u8)` = back-reference. Incompressible inputs grow by at most a
    /// few bytes per 64 KiB literal run plus the 4-byte magic.
    pub fn compress(input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        out.extend_from_slice(MAGIC);
        // Chained hash table over 4-byte prefixes for match finding.
        let mut head = vec![usize::MAX; 1 << 13];
        let mut prev = vec![usize::MAX; input.len().max(1)];
        let hash = |w: &[u8]| -> usize {
            let v = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
            (v.wrapping_mul(2654435761) >> 19) as usize & ((1 << 13) - 1)
        };
        let mut literals: Vec<u8> = Vec::new();
        let flush_literals = |out: &mut Vec<u8>, lits: &mut Vec<u8>| {
            let mut start = 0;
            while start < lits.len() {
                let run = (lits.len() - start).min(u16::MAX as usize);
                out.push(0x00);
                out.extend_from_slice(&(run as u16).to_le_bytes());
                out.extend_from_slice(&lits[start..start + run]);
                start += run;
            }
            lits.clear();
        };
        let mut i = 0;
        while i < input.len() {
            let mut best_len = 0;
            let mut best_dist = 0;
            if i + MIN_MATCH <= input.len() {
                let h = hash(&input[i..i + 4]);
                let mut cand = head[h];
                let mut chain = 0;
                while cand != usize::MAX && i - cand <= WINDOW && chain < 16 {
                    let mut l = 0;
                    let max = (input.len() - i).min(MAX_MATCH);
                    while l < max && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                    }
                    cand = prev[cand];
                    chain += 1;
                }
                prev[i] = head[h];
                head[h] = i;
            }
            if best_len >= MIN_MATCH {
                flush_literals(&mut out, &mut literals);
                out.push(0x01);
                out.extend_from_slice(&(best_dist as u16).to_le_bytes());
                out.push(best_len as u8);
                // Insert hash entries for the matched region (cheap, coarse).
                let end = i + best_len;
                let mut j = i + 1;
                while j + 4 <= input.len() && j < end {
                    let h = hash(&input[j..j + 4]);
                    prev[j] = head[h];
                    head[h] = j;
                    j += 1;
                }
                i = end;
            } else {
                literals.push(input[i]);
                i += 1;
            }
        }
        flush_literals(&mut out, &mut literals);
        out
    }

    /// Decompress a buffer produced by [`compress`].
    ///
    /// # Errors
    ///
    /// Returns a description of the corruption on malformed input.
    pub fn decompress(input: &[u8]) -> Result<Vec<u8>, String> {
        let body = input
            .strip_prefix(MAGIC.as_slice())
            .ok_or_else(|| "missing MLZ1 magic".to_string())?;
        let mut out = Vec::with_capacity(body.len() * 2);
        let mut i = 0;
        while i < body.len() {
            match body[i] {
                0x00 => {
                    if i + 3 > body.len() {
                        return Err("truncated literal header".to_string());
                    }
                    let len = u16::from_le_bytes([body[i + 1], body[i + 2]]) as usize;
                    i += 3;
                    if i + len > body.len() {
                        return Err("truncated literal run".to_string());
                    }
                    out.extend_from_slice(&body[i..i + len]);
                    i += len;
                }
                0x01 => {
                    if i + 4 > body.len() {
                        return Err("truncated match token".to_string());
                    }
                    let dist = u16::from_le_bytes([body[i + 1], body[i + 2]]) as usize;
                    let len = body[i + 3] as usize;
                    i += 4;
                    if dist == 0 || dist > out.len() {
                        return Err(format!("bad match distance {dist}"));
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                t => return Err(format!("bad token {t}")),
            }
        }
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn roundtrip(data: &[u8]) {
            let c = compress(data);
            assert_eq!(decompress(&c).unwrap(), data, "len={}", data.len());
        }

        #[test]
        fn roundtrips() {
            roundtrip(b"");
            roundtrip(b"a");
            roundtrip(b"hello world hello world hello world");
            roundtrip(&[0u8; 10_000]);
            roundtrip("the quick brown fox ".repeat(500).as_bytes());
            let noisy: Vec<u8> = (0..5_000u32).map(|i| (i.wrapping_mul(2654435761)) as u8).collect();
            roundtrip(&noisy);
        }

        #[test]
        fn repetitive_data_compresses_well() {
            let data = b"abcdefgh".repeat(1000);
            let c = compress(&data);
            assert!(c.len() < data.len() / 5, "got {} of {}", c.len(), data.len());
        }

        #[test]
        fn random_data_grows_only_slightly() {
            use rand::{RngCore, SeedableRng};
            let mut data = vec![0u8; 64 * 1024];
            rand::rngs::StdRng::seed_from_u64(1).fill_bytes(&mut data);
            let c = compress(&data);
            assert!(c.len() <= data.len() + 16, "got {} of {}", c.len(), data.len());
            assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn long_literal_runs_split_correctly() {
            use rand::{RngCore, SeedableRng};
            let mut data = vec![0u8; 70_000]; // > u16::MAX literal run
            rand::rngs::StdRng::seed_from_u64(2).fill_bytes(&mut data);
            roundtrip(&data);
        }

        #[test]
        fn corrupt_input_rejected() {
            assert!(decompress(b"nope").is_err());
            assert!(decompress(b"MLZ1\x00\xff\xff").is_err()); // truncated run
            assert!(decompress(b"MLZ1\x01\x01\x00\x05").is_err()); // dist > output
            assert!(decompress(b"MLZ1\x07").is_err()); // bad token
        }
    }
}

/// Transport-level compression QoS module.
///
/// Compresses every outbound GIOP body and decompresses inbound ones.
/// Dynamic interface: `stats()` → `[bytes_in, bytes_out]` (as
/// `ulonglong`s), `reset_stats()`.
#[derive(Debug)]
pub struct CompressionModule {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    metrics: OrderedRwLock<Option<MetricsRegistry>>,
}

impl Default for CompressionModule {
    fn default() -> CompressionModule {
        CompressionModule {
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            metrics: OrderedRwLock::new(LockRank::QosMechMetrics, None),
        }
    }
}

/// The module name compression binds under.
pub const COMPRESSION_MODULE: &str = "compression";

impl CompressionModule {
    /// A fresh module with zeroed statistics.
    pub fn new() -> CompressionModule {
        CompressionModule::default()
    }

    /// Mirror byte counts into `registry` as counters
    /// `qos.compression.bytes_in` (uncompressed) and
    /// `qos.compression.bytes_out` (on the wire), so the wire savings
    /// show up next to the request-path metrics.
    pub fn set_metrics(&self, registry: Option<MetricsRegistry>) {
        *self.metrics.write() = registry;
    }

    /// Uncompressed bytes seen on the outbound path.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Compressed bytes emitted on the outbound path.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Output/input ratio (1.0 when nothing was seen).
    pub fn ratio(&self) -> f64 {
        let i = self.bytes_in();
        if i == 0 {
            1.0
        } else {
            self.bytes_out() as f64 / i as f64
        }
    }
}

impl QosModule for CompressionModule {
    fn name(&self) -> &str {
        COMPRESSION_MODULE
    }

    fn command(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "stats" => Ok(Any::Sequence(vec![
                Any::ULongLong(self.bytes_in()),
                Any::ULongLong(self.bytes_out()),
            ])),
            "reset_stats" => {
                self.bytes_in.store(0, Ordering::Relaxed);
                self.bytes_out.store(0, Ordering::Relaxed);
                Ok(Any::Void)
            }
            other => Err(OrbError::BadOperation(format!("compression command {other}"))),
        }
    }

    fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        self.bytes_in.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let compressed = codec::compress(&bytes);
        self.bytes_out.fetch_add(compressed.len() as u64, Ordering::Relaxed);
        if let Some(m) = self.metrics.read().as_ref() {
            m.add("qos.compression.bytes_in", bytes.len() as u64);
            m.add("qos.compression.bytes_out", compressed.len() as u64);
        }
        Ok(vec![(dst, compressed)])
    }

    fn inbound<'a>(
        &self,
        _src: NodeId,
        bytes: &'a [u8],
    ) -> Result<Option<Cow<'a, [u8]>>, OrbError> {
        codec::decompress(bytes)
            .map(|v| Some(Cow::Owned(v)))
            .map_err(|e| OrbError::Marshal(format!("decompression failed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkModel, Network};
    use orb::qos_binding::BindingKey;
    use orb::giop::QosContext;
    use orb::{Orb, Servant};
    use std::sync::Arc;

    struct Blob;
    impl Servant for Blob {
        fn interface_id(&self) -> &str {
            "IDL:Blob:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => Ok(args[0].clone()),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    #[test]
    fn module_transforms_roundtrip() {
        let m = CompressionModule::new();
        let data = b"payload payload payload payload".to_vec();
        let out = m.outbound(NodeId(1), data.clone()).unwrap();
        assert_eq!(out.len(), 1);
        assert_ne!(out[0].1, data);
        let back = m.inbound(NodeId(1), &out[0].1).unwrap().unwrap();
        assert_eq!(back, data);
        assert!(m.bytes_out() < m.bytes_in());
        assert!(m.ratio() < 1.0);
    }

    #[test]
    fn byte_counters_mirror_into_metrics() {
        let m = CompressionModule::new();
        let registry = MetricsRegistry::new();
        m.set_metrics(Some(registry.clone()));
        m.outbound(NodeId(1), b"data ".repeat(100)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("qos.compression.bytes_in"), 500);
        let out = snap.counter("qos.compression.bytes_out");
        assert!(out > 0 && out < 500);
        m.set_metrics(None);
        m.outbound(NodeId(1), vec![7; 64]).unwrap();
        assert_eq!(registry.snapshot().counter("qos.compression.bytes_in"), 500);
    }

    #[test]
    fn corrupt_inbound_is_marshal_error() {
        let m = CompressionModule::new();
        assert!(matches!(
            m.inbound(NodeId(1), &[1, 2, 3]),
            Err(OrbError::Marshal(_))
        ));
    }

    #[test]
    fn stats_command() {
        let m = CompressionModule::new();
        m.outbound(NodeId(1), vec![7; 100]).unwrap();
        let stats = m.command("stats", &[]).unwrap();
        let items = stats.as_sequence().unwrap();
        assert_eq!(items[0], Any::ULongLong(100));
        assert!(items[1].as_i64().unwrap() < 100);
        m.command("reset_stats", &[]).unwrap();
        assert_eq!(m.bytes_in(), 0);
        assert!(m.command("zip", &[]).is_err());
    }

    #[test]
    fn end_to_end_compressed_channel_saves_wire_bytes() {
        let net = Network::new(1);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        net.set_link(client.node(), server.node(), LinkModel::narrowband(64));
        let ior = server.activate_with_tags("blob", Box::new(Blob), &["compression"]);

        // First: uncompressed baseline.
        let payload = Any::Bytes(b"data ".repeat(2000)); // highly compressible
        client.invoke(&ior, "echo", &[payload.clone()]).unwrap();
        let plain_bytes = net.stats().link(client.node(), server.node()).bytes_delivered;

        // Now bind the compression module on both sides.
        client.qos_transport().install(Arc::new(CompressionModule::new()));
        server.qos_transport().install(Arc::new(CompressionModule::new()));
        client
            .qos_transport()
            .bind(BindingKey { peer: None, key: ior.key.clone() }, COMPRESSION_MODULE)
            .unwrap();
        let qos = Some(QosContext::new("compression"));
        let reply = client.invoke_qos(&ior, "echo", &[payload.clone()], qos).unwrap();
        assert_eq!(reply, payload);
        let total = net.stats().link(client.node(), server.node()).bytes_delivered;
        let compressed_bytes = total - plain_bytes;
        assert!(
            compressed_bytes * 4 < plain_bytes,
            "compressed {compressed_bytes} vs plain {plain_bytes}"
        );
        server.shutdown();
        client.shutdown();
    }
}
