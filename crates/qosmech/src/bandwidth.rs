//! Bandwidth reservation — the paper's own example of a QoS module.
//!
//! §4: the module-specific dynamic interface exists to "e.g. reserve a
//! distinct bandwidth". This transport module implements reservation as
//! token-bucket admission control: a relationship reserves a rate; the
//! module meters outbound bytes against the reserved budget and rejects
//! sends that would exceed it (admission control being what a
//! reservation without a real RSVP substrate can honestly provide).
//! The budget refills continuously at the reserved rate, with a burst
//! allowance of one second's worth of tokens.

use orb::sync::{LockRank, OrderedMutex};
use netsim::NodeId;
use orb::qos_binding::{Outbound, QosModule};
use orb::{Any, OrbError};
use std::time::Instant;

/// The module name bandwidth reservation binds under.
pub const BANDWIDTH_MODULE: &str = "bandwidth";

struct Bucket {
    /// Reserved rate in bytes per second (None = unreserved: reject).
    rate_bps: Option<u64>,
    /// Available tokens (bytes).
    tokens: f64,
    /// Last refill instant.
    refilled: Instant,
}

/// Counters exposed by the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BandwidthStats {
    /// Messages admitted.
    pub admitted: u64,
    /// Messages rejected for lack of tokens or reservation.
    pub rejected: u64,
    /// Bytes admitted.
    pub bytes: u64,
}

/// Token-bucket bandwidth reservation module.
///
/// Dynamic interface (commands):
///
/// * `reserve(bits_per_second: ulonglong)` — install/replace the
///   reservation
/// * `release()` — drop the reservation (sends are rejected again)
/// * `reservation()` → `ulonglong` bits per second (0 = none)
/// * `stats()` → `[admitted, rejected, bytes]`
pub struct BandwidthReservationModule {
    bucket: OrderedMutex<Bucket>,
    stats: OrderedMutex<BandwidthStats>,
}

impl Default for BandwidthReservationModule {
    fn default() -> BandwidthReservationModule {
        BandwidthReservationModule::new()
    }
}

impl BandwidthReservationModule {
    /// A module with no reservation installed.
    pub fn new() -> BandwidthReservationModule {
        BandwidthReservationModule {
            bucket: OrderedMutex::new(
                LockRank::QosMechState,
                Bucket { rate_bps: None, tokens: 0.0, refilled: Instant::now() },
            ),
            stats: OrderedMutex::new(LockRank::QosMechStats, BandwidthStats::default()),
        }
    }

    /// A module with `bits_per_second` reserved from the start.
    pub fn with_reservation(bits_per_second: u64) -> BandwidthReservationModule {
        let m = BandwidthReservationModule::new();
        m.reserve(bits_per_second);
        m
    }

    /// Install or replace the reservation; the bucket starts full (one
    /// second of burst).
    pub fn reserve(&self, bits_per_second: u64) {
        let bytes_per_second = bits_per_second / 8;
        let mut b = self.bucket.lock();
        b.rate_bps = Some(bytes_per_second);
        b.tokens = bytes_per_second as f64;
        b.refilled = Instant::now();
    }

    /// Drop the reservation.
    pub fn release(&self) {
        let mut b = self.bucket.lock();
        b.rate_bps = None;
        b.tokens = 0.0;
    }

    /// The reserved rate in bits per second (0 if none).
    pub fn reservation_bps(&self) -> u64 {
        self.bucket.lock().rate_bps.map(|b| b * 8).unwrap_or(0)
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> BandwidthStats {
        *self.stats.lock()
    }

    fn admit(&self, bytes: usize) -> Result<(), OrbError> {
        let mut b = self.bucket.lock();
        let Some(rate) = b.rate_bps else {
            self.stats.lock().rejected += 1;
            return Err(OrbError::QosViolation(
                "no bandwidth reservation for this relationship".to_string(),
            ));
        };
        // Continuous refill, capped at one second of burst.
        let now = Instant::now();
        let elapsed = now.duration_since(b.refilled).as_secs_f64();
        b.refilled = now;
        b.tokens = (b.tokens + elapsed * rate as f64).min(rate as f64);
        if (bytes as f64) <= b.tokens {
            b.tokens -= bytes as f64;
            let mut stats = self.stats.lock();
            stats.admitted += 1;
            stats.bytes += bytes as u64;
            Ok(())
        } else {
            self.stats.lock().rejected += 1;
            Err(OrbError::QosViolation(format!(
                "reservation exceeded: need {bytes} B, {:.0} B available",
                b.tokens
            )))
        }
    }
}

impl QosModule for BandwidthReservationModule {
    fn name(&self) -> &str {
        BANDWIDTH_MODULE
    }

    fn command(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "reserve" => {
                let bps = args
                    .first()
                    .and_then(Any::as_i64)
                    .filter(|v| *v > 0)
                    .ok_or_else(|| OrbError::BadParam("reserve(bits_per_second)".to_string()))?;
                self.reserve(bps as u64);
                Ok(Any::Void)
            }
            "release" => {
                self.release();
                Ok(Any::Void)
            }
            "reservation" => Ok(Any::ULongLong(self.reservation_bps())),
            "stats" => {
                let s = self.stats();
                Ok(Any::Sequence(vec![
                    Any::ULongLong(s.admitted),
                    Any::ULongLong(s.rejected),
                    Any::ULongLong(s.bytes),
                ]))
            }
            other => Err(OrbError::BadOperation(format!("bandwidth command {other}"))),
        }
    }

    fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        self.admit(bytes.len())?;
        Ok(vec![(dst, bytes)])
    }

    // `inbound` is the trait default: identity, zero-copy. Policing
    // happens on the sending side only.
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use orb::giop::QosContext;
    use orb::qos_binding::BindingKey;
    use orb::{Orb, Servant};
    use std::sync::Arc;

    #[test]
    fn unreserved_relationship_is_rejected() {
        let m = BandwidthReservationModule::new();
        assert!(matches!(m.outbound(NodeId(1), vec![0; 10]), Err(OrbError::QosViolation(_))));
        assert_eq!(m.stats().rejected, 1);
    }

    #[test]
    fn admission_within_burst_then_rejection() {
        let m = BandwidthReservationModule::with_reservation(8_000); // 1000 B/s, 1000 B burst
        assert!(m.outbound(NodeId(1), vec![0; 600]).is_ok());
        assert!(m.outbound(NodeId(1), vec![0; 300]).is_ok());
        // Bucket nearly empty: a large send is rejected.
        assert!(m.outbound(NodeId(1), vec![0; 600]).is_err());
        let s = m.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.bytes, 900);
    }

    #[test]
    fn tokens_refill_over_time() {
        let m = BandwidthReservationModule::with_reservation(800_000); // 100 kB/s
        assert!(m.outbound(NodeId(1), vec![0; 100_000]).is_ok()); // drain burst
        assert!(m.outbound(NodeId(1), vec![0; 50_000]).is_err());
        std::thread::sleep(std::time::Duration::from_millis(600)); // ~60 kB refill
        assert!(m.outbound(NodeId(1), vec![0; 50_000]).is_ok());
    }

    #[test]
    fn release_revokes_admission() {
        let m = BandwidthReservationModule::with_reservation(1_000_000);
        assert!(m.outbound(NodeId(1), vec![0; 10]).is_ok());
        m.release();
        assert!(m.outbound(NodeId(1), vec![0; 10]).is_err());
        assert_eq!(m.reservation_bps(), 0);
    }

    #[test]
    fn command_interface() {
        let m = BandwidthReservationModule::new();
        m.command("reserve", &[Any::ULongLong(64_000)]).unwrap();
        assert_eq!(m.command("reservation", &[]).unwrap(), Any::ULongLong(64_000));
        m.outbound(NodeId(1), vec![0; 100]).unwrap();
        let stats = m.command("stats", &[]).unwrap();
        assert_eq!(stats.as_sequence().unwrap()[0], Any::ULongLong(1));
        m.command("release", &[]).unwrap();
        assert_eq!(m.command("reservation", &[]).unwrap(), Any::ULongLong(0));
        assert!(m.command("reserve", &[Any::Long(-5)]).is_err());
        assert!(m.command("reserve", &[]).is_err());
        assert!(m.command("warp", &[]).is_err());
    }

    struct Echo;
    impl Servant for Echo {
        fn interface_id(&self) -> &str {
            "IDL:Echo:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "echo" => Ok(args[0].clone()),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    #[test]
    fn end_to_end_reservation_via_remote_command() {
        let net = Network::new(44);
        let server = Orb::start(&net, "server");
        let client = Orb::start(&net, "client");
        let ior = server.activate_with_tags("echo", Box::new(Echo), &["Bandwidth"]);
        client.qos_transport().install(Arc::new(BandwidthReservationModule::new()));
        server.qos_transport().install(Arc::new(BandwidthReservationModule::with_reservation(
            10_000_000,
        )));
        client
            .qos_transport()
            .bind(BindingKey { peer: None, key: ior.key.clone() }, BANDWIDTH_MODULE)
            .unwrap();

        // Without a client-side reservation, sends fail locally.
        let err = client
            .invoke_qos(&ior, "echo", &[Any::Long(1)], Some(QosContext::new("Bandwidth")))
            .unwrap_err();
        assert!(matches!(err, OrbError::QosViolation(_)));

        // Reserve through the module's own dynamic interface (local
        // command here; remote commands work identically — see the
        // transport_modules integration tests).
        client
            .qos_transport()
            .module(BANDWIDTH_MODULE)
            .unwrap()
            .command("reserve", &[Any::ULongLong(1_000_000)])
            .unwrap();
        let r = client
            .invoke_qos(&ior, "echo", &[Any::Long(1)], Some(QosContext::new("Bandwidth")))
            .unwrap();
        assert_eq!(r, Any::Long(1));
        server.shutdown();
        client.shutdown();
    }
}
