//! Fault tolerance through replica groups (§3.1's running example).
//!
//! "Crashes of servers can be masked when using a group of replicas. As
//! long as there is one replica running, the service can be fulfilled."
//! Two client-side strategies are provided, matching the paper's closing
//! remark that one multicast mechanism serves both *k-availability* and
//! *diversity through majority votes on results*:
//!
//! * [`ReplicationStrategy::Failover`] — try replicas in order until one
//!   answers; masks crash faults with no redundancy on the wire.
//! * [`ReplicationStrategy::MajorityVote`] — invoke all replicas (either
//!   via a bound [`groupcomm::MulticastModule`] or by client-side
//!   fan-out) and answer with the value a majority agrees on; masks
//!   crash *and* value faults.
//!
//! The server side is [`ReplicationQosImpl`], whose QoS operations expose
//! the state-transfer integration interface the paper uses to motivate
//! why QoS is an aspect (replicas must be initializable from each other's
//! encapsulated state).

use orb::sync::{LockRank, OrderedRwLock};
use groupcomm::FailureDetector;
use netsim::NodeId;
use orb::giop::QosContext;
use orb::{Any, FlightEventKind, Ior, Orb, OrbError, Servant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use weaver::{Call, Mediator, Next, QosImplementation};

/// Characteristic name, matching [`crate::specs::QOS_SPECS`].
pub const REPLICATION_CHARACTERISTIC: &str = "Replication";

/// How the mediator uses the replica group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationStrategy {
    /// Sequential failover: first live replica answers.
    Failover,
    /// Fan out to all replicas and majority-vote on the results.
    MajorityVote,
}

impl ReplicationStrategy {
    /// Stable export name (`failover` / `majority_vote`).
    pub fn name(self) -> &'static str {
        match self {
            ReplicationStrategy::Failover => "failover",
            ReplicationStrategy::MajorityVote => "majority_vote",
        }
    }
}

/// Majority-vote over gathered replies: the value returned by at least
/// `quorum` replicas wins.
///
/// # Errors
///
/// [`OrbError::QosViolation`] if no value reaches the quorum.
pub fn majority_vote(
    replies: &[(NodeId, Result<Any, OrbError>)],
    quorum: usize,
) -> Result<Any, OrbError> {
    let mut counts: Vec<(&Any, usize)> = Vec::new();
    for (_, reply) in replies {
        if let Ok(value) = reply {
            match counts.iter_mut().find(|(v, _)| *v == value) {
                Some((_, n)) => *n += 1,
                None => counts.push((value, 1)),
            }
        }
    }
    counts
        .into_iter()
        .find(|(_, n)| *n >= quorum)
        .map(|(v, _)| v.clone())
        .ok_or_else(|| {
            OrbError::QosViolation(format!(
                "no majority among {} replies (quorum {quorum})",
                replies.len()
            ))
        })
}

/// Counters exposed by the replication mediator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Calls that succeeded on the first replica tried.
    pub first_try: u64,
    /// Failovers performed (a replica was skipped after an error).
    pub failovers: u64,
    /// Majority votes taken.
    pub votes: u64,
    /// Calls that exhausted all replicas / found no quorum.
    pub exhausted: u64,
}

/// The client-side replication mediator.
pub struct ReplicationMediator {
    orb: Orb,
    replicas: OrderedRwLock<Vec<Ior>>,
    strategy: OrderedRwLock<ReplicationStrategy>,
    vote_timeout: Duration,
    first_try: AtomicU64,
    failovers: AtomicU64,
    votes: AtomicU64,
    exhausted: AtomicU64,
}

impl ReplicationMediator {
    /// A mediator over `replicas` (all activations of the *same* object
    /// key on different nodes).
    pub fn new(orb: Orb, replicas: Vec<Ior>, strategy: ReplicationStrategy) -> ReplicationMediator {
        ReplicationMediator {
            orb,
            replicas: OrderedRwLock::new(LockRank::QosMechConfig, replicas),
            strategy: OrderedRwLock::new(LockRank::QosMechState, strategy),
            vote_timeout: Duration::from_secs(2),
            first_try: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            votes: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// Replace the replica list (after view changes).
    pub fn set_replicas(&self, replicas: Vec<Ior>) {
        *self.replicas.write() = replicas;
    }

    /// Switch the replication strategy at runtime. The adaptation engine
    /// uses this to degrade quorum voting to primary-only failover when
    /// the group can no longer reach a majority.
    pub fn set_strategy(&self, strategy: ReplicationStrategy) {
        let from = *self.strategy.read();
        *self.strategy.write() = strategy;
        if from != strategy {
            self.note(format!("strategy {}->{}", from.name(), strategy.name()));
        }
    }

    /// The strategy currently in effect.
    pub fn strategy(&self) -> ReplicationStrategy {
        *self.strategy.read()
    }

    /// The current replica list.
    pub fn replicas(&self) -> Vec<Ior> {
        self.replicas.read().clone()
    }

    /// Remove replicas the failure detector reports dead; returns how
    /// many were evicted.
    pub fn evict_dead(&self, detector: &FailureDetector) -> usize {
        let current = self.replicas();
        let (alive, dead) = detector.sweep(&current);
        let removed = dead.len();
        if removed > 0 {
            let alive: Vec<Ior> = alive.into_iter().cloned().collect();
            self.note(format!("evicted {removed} dead replica(s), {} alive", alive.len()));
            *self.replicas.write() = alive;
        }
        removed
    }

    /// Off-hot-path replication events (strategy switches, evictions,
    /// failovers, exhausted groups) land in the client ORB's black box.
    fn note(&self, detail: String) {
        self.orb.flight().record_detail(FlightEventKind::Replication, "replication", None, detail);
    }

    /// A snapshot of the mediator counters.
    pub fn stats(&self) -> ReplicationStats {
        ReplicationStats {
            first_try: self.first_try.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            votes: self.votes.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }

    fn failover(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        let replicas = self.replicas();
        if replicas.is_empty() {
            return Err(OrbError::QosViolation("replica group is empty".to_string()));
        }
        let mut last_err = None;
        for (i, replica) in replicas.iter().enumerate() {
            let mut attempt = call.clone();
            attempt.target = replica.clone();
            match next(attempt) {
                Ok(value) => {
                    if i == 0 {
                        self.first_try.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.failovers.fetch_add(i as u64, Ordering::Relaxed);
                        self.note(format!("failover to replica {i} for `{}`", call.operation));
                    }
                    return Ok(value);
                }
                Err(e) if e.is_retryable() || matches!(e, OrbError::ObjectNotExist(_)) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        self.note(format!("all {} replicas failed for `{}`", replicas.len(), call.operation));
        Err(last_err.unwrap_or_else(|| OrbError::QosViolation("all replicas failed".to_string())))
    }

    fn vote(&self, call: Call) -> Result<Any, OrbError> {
        let replicas = self.replicas();
        if replicas.is_empty() {
            return Err(OrbError::QosViolation("replica group is empty".to_string()));
        }
        let quorum = replicas.len() / 2 + 1;
        self.votes.fetch_add(1, Ordering::Relaxed);
        // If a multicast module is bound for this object, a single
        // invoke_collect fans out on the transport layer; otherwise fan
        // out client-side, one invocation per replica.
        let bound = self
            .orb
            .qos_transport()
            .bound_module(replicas[0].node, &replicas[0].key)
            .is_some();
        let mut replies: Vec<(NodeId, Result<Any, OrbError>)> = Vec::new();
        if bound {
            let qos = call
                .qos
                .clone()
                .unwrap_or_else(|| QosContext::new(REPLICATION_CHARACTERISTIC));
            match self.orb.invoke_collect(
                &replicas[0],
                &call.operation,
                &call.args,
                Some(qos),
                quorum,
                self.vote_timeout,
            ) {
                Ok(r) => replies = r,
                Err(e) => {
                    self.exhausted.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        } else {
            for replica in &replicas {
                let reply = self.orb.invoke_collect(
                    replica,
                    &call.operation,
                    &call.args,
                    call.qos.clone(),
                    1,
                    self.vote_timeout,
                );
                match reply {
                    Ok(mut r) if !r.is_empty() => replies.push(r.remove(0)),
                    Ok(_) => {}
                    Err(e) => replies.push((replica.node, Err(e))),
                }
            }
        }
        let result = majority_vote(&replies, quorum);
        if result.is_err() {
            self.exhausted.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

impl Mediator for ReplicationMediator {
    fn characteristic(&self) -> &str {
        REPLICATION_CHARACTERISTIC
    }

    fn around(&self, call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        match self.strategy() {
            ReplicationStrategy::Failover => self.failover(call, next),
            ReplicationStrategy::MajorityVote => self.vote(call),
        }
    }

    fn qos_op(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "replica_count" => Ok(Any::ULong(self.replicas().len() as u32)),
            "strategy" => Ok(Any::Str(
                match self.strategy() {
                    ReplicationStrategy::Failover => "failover",
                    ReplicationStrategy::MajorityVote => "majority_vote",
                }
                .to_string(),
            )),
            "stats" => {
                let s = self.stats();
                Ok(Any::Struct(
                    "ReplicationStats".to_string(),
                    vec![
                        ("first_try".to_string(), Any::ULongLong(s.first_try)),
                        ("failovers".to_string(), Any::ULongLong(s.failovers)),
                        ("votes".to_string(), Any::ULongLong(s.votes)),
                        ("exhausted".to_string(), Any::ULongLong(s.exhausted)),
                    ],
                ))
            }
            other => Err(OrbError::BadOperation(format!("replication qos op {other}"))),
        }
    }
}

/// Server-side QoS implementation for replication.
///
/// QoS operations: `export_state()`, `import_state(state)` (the §3.2
/// "aspect integration" interface into the encapsulated object state),
/// `replica_role()` / `set_replica_role(role)`.
#[derive(Debug)]
pub struct ReplicationQosImpl {
    role: OrderedRwLock<String>,
}

impl ReplicationQosImpl {
    /// A replica starting in the `"follower"` role.
    pub fn new() -> ReplicationQosImpl {
        ReplicationQosImpl { role: OrderedRwLock::new(LockRank::QosMechConfig, "follower".to_string()) }
    }
}

impl Default for ReplicationQosImpl {
    fn default() -> ReplicationQosImpl {
        ReplicationQosImpl::new()
    }
}

impl QosImplementation for ReplicationQosImpl {
    fn characteristic(&self) -> &str {
        REPLICATION_CHARACTERISTIC
    }

    fn qos_op(&self, op: &str, args: &[Any], server: &dyn Servant) -> Result<Any, OrbError> {
        match op {
            "export_state" => server.get_state(),
            "import_state" => {
                let state = args
                    .first()
                    .ok_or_else(|| OrbError::BadParam("import_state(state)".to_string()))?;
                server.set_state(state)?;
                Ok(Any::Void)
            }
            "replica_role" => Ok(Any::Str(self.role.read().clone())),
            "set_replica_role" => {
                let role = args
                    .first()
                    .and_then(Any::as_str)
                    .ok_or_else(|| OrbError::BadParam("set_replica_role(role)".to_string()))?;
                *self.role.write() = role.to_string();
                Ok(Any::Void)
            }
            other => Err(OrbError::BadOperation(format!("replication op {other}"))),
        }
    }
}

/// Deploy `n` replicas of servants produced by `factory` under the same
/// object key on fresh server ORBs; returns the ORBs and the replica
/// references.
pub fn deploy_replicas<F>(
    net: &netsim::Network,
    n: usize,
    key: &str,
    factory: F,
) -> (Vec<Orb>, Vec<Ior>)
where
    F: Fn(usize) -> Box<dyn Servant>,
{
    let mut orbs = Vec::with_capacity(n);
    let mut iors = Vec::with_capacity(n);
    for i in 0..n {
        let orb = Orb::start(net, &format!("replica-{i}"));
        let ior = orb.activate_with_tags(key, factory(i), &[REPLICATION_CHARACTERISTIC]);
        orbs.push(orb);
        iors.push(ior);
    }
    (orbs, iors)
}

/// Bring a late-joining replica up to date from the first live member,
/// then add it to the mediator's list.
///
/// # Errors
///
/// Propagates state-transfer failures; fails with
/// [`OrbError::QosViolation`] if no live source exists.
pub fn join_replica(
    mediator: &ReplicationMediator,
    detector: &FailureDetector,
    newcomer: Ior,
) -> Result<(), OrbError> {
    let current = mediator.replicas();
    let (alive, _) = detector.sweep(&current);
    let source = alive
        .first()
        .ok_or_else(|| OrbError::QosViolation("no live replica to copy state from".to_string()))?;
    groupcomm::transfer_state(&mediator.orb, source, &newcomer)?;
    let mut replicas = mediator.replicas();
    replicas.push(newcomer);
    mediator.set_replicas(replicas);
    Ok(())
}

/// Group replies by value for diagnostics (who answered what).
pub fn tally(replies: &[(NodeId, Result<Any, OrbError>)]) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    for (_, reply) in replies {
        let key = match reply {
            Ok(v) => format!("ok:{v}"),
            Err(e) => format!("err:{}", e.kind()),
        };
        *map.entry(key).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use weaver::ClientStub;

    struct Counter {
        value: Mutex<i64>,
        /// Fixed answer for "whoami" — lets vote tests inject divergence.
        id: i64,
    }
    impl Counter {
        fn boxed(id: i64) -> Box<dyn Servant> {
            Box::new(Counter { value: Mutex::new(0), id })
        }
    }
    impl Servant for Counter {
        fn interface_id(&self) -> &str {
            "IDL:Counter:1.0"
        }
        fn dispatch(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "add" => {
                    let mut v = self.value.lock();
                    *v += args.first().and_then(Any::as_i64).unwrap_or(0);
                    Ok(Any::LongLong(*v))
                }
                "get" => Ok(Any::LongLong(*self.value.lock())),
                "whoami" => Ok(Any::LongLong(self.id)),
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
        fn get_state(&self) -> Result<Any, OrbError> {
            Ok(Any::LongLong(*self.value.lock()))
        }
        fn set_state(&self, state: &Any) -> Result<(), OrbError> {
            *self.value.lock() = state.as_i64().unwrap_or(0);
            Ok(())
        }
    }

    fn fast_client(net: &Network) -> Orb {
        Orb::start_with(
            net,
            "client",
            orb::OrbConfig { request_timeout: Duration::from_millis(400), ..Default::default() },
        )
    }

    #[test]
    fn majority_vote_logic() {
        let ok = |v: i64| -> Result<Any, OrbError> { Ok(Any::LongLong(v)) };
        let replies = vec![
            (NodeId(1), ok(5)),
            (NodeId(2), ok(5)),
            (NodeId(3), ok(9)),
        ];
        assert_eq!(majority_vote(&replies, 2).unwrap(), Any::LongLong(5));
        assert!(majority_vote(&replies, 3).is_err());
        let split = vec![(NodeId(1), ok(1)), (NodeId(2), ok(2))];
        assert!(majority_vote(&split, 2).is_err());
        let with_errors = vec![
            (NodeId(1), Err(OrbError::Timeout("x".into()))),
            (NodeId(2), ok(7)),
            (NodeId(3), ok(7)),
        ];
        assert_eq!(majority_vote(&with_errors, 2).unwrap(), Any::LongLong(7));
        assert_eq!(tally(&with_errors)["ok:7"], 2);
        assert_eq!(tally(&with_errors)["err:TIMEOUT"], 1);
    }

    #[test]
    fn failover_masks_crashes() {
        let net = Network::new(1);
        let (orbs, iors) = deploy_replicas(&net, 3, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let mediator =
            Arc::new(ReplicationMediator::new(client.clone(), iors.clone(), ReplicationStrategy::Failover));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator.clone());

        assert_eq!(stub.invoke("whoami", &[]).unwrap(), Any::LongLong(0));
        assert_eq!(mediator.stats().first_try, 1);

        // Crash the first replica: calls now fail over to the second.
        net.crash(orbs[0].node());
        assert_eq!(stub.invoke("whoami", &[]).unwrap(), Any::LongLong(1));
        assert!(mediator.stats().failovers >= 1);

        // Crash all: the call exhausts the group.
        net.crash(orbs[1].node());
        net.crash(orbs[2].node());
        assert!(stub.invoke("whoami", &[]).is_err());
        assert_eq!(mediator.stats().exhausted, 1);
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }

    #[test]
    fn majority_vote_masks_value_fault() {
        let net = Network::new(1);
        // Replica 2 diverges on "whoami"? No — whoami differs per replica by
        // design; use a value-faulty replica for "get" instead: all values
        // start at 0, so "get" agrees; whoami disagrees everywhere.
        let (orbs, iors) = deploy_replicas(&net, 3, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let mediator = Arc::new(ReplicationMediator::new(
            client.clone(),
            iors.clone(),
            ReplicationStrategy::MajorityVote,
        ));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator.clone());

        // Agreement case.
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(0));
        // Full divergence: no quorum.
        assert!(matches!(stub.invoke("whoami", &[]), Err(OrbError::QosViolation(_))));
        assert_eq!(mediator.stats().votes, 2);
        assert_eq!(mediator.stats().exhausted, 1);
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }

    #[test]
    fn majority_vote_survives_one_crash() {
        let net = Network::new(1);
        let (orbs, iors) = deploy_replicas(&net, 3, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let mediator = Arc::new(ReplicationMediator::new(
            client.clone(),
            iors.clone(),
            ReplicationStrategy::MajorityVote,
        ));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator);
        net.crash(orbs[2].node());
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(0));
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }

    #[test]
    fn vote_via_multicast_module() {
        let net = Network::new(1);
        let (orbs, iors) = deploy_replicas(&net, 3, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let nodes: Vec<NodeId> = iors.iter().map(|i| i.node).collect();
        client
            .qos_transport()
            .install(Arc::new(groupcomm::MulticastModule::new("multicast", nodes)));
        // Servers need the module loaded too, to un-wrap inbound packets
        // (and to route replies back out through it).
        for orb in &orbs {
            orb.qos_transport()
                .install(Arc::new(groupcomm::MulticastModule::new("multicast", [])));
        }
        client
            .qos_transport()
            .bind(
                orb::qos_binding::BindingKey { peer: None, key: iors[0].key.clone() },
                "multicast",
            )
            .unwrap();
        let mediator = Arc::new(ReplicationMediator::new(
            client.clone(),
            iors.clone(),
            ReplicationStrategy::MajorityVote,
        ));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator);
        assert_eq!(stub.invoke("get", &[]).unwrap(), Any::LongLong(0));
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }

    #[test]
    fn eviction_and_join_with_state_transfer() {
        let net = Network::new(1);
        let (orbs, iors) = deploy_replicas(&net, 2, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let mediator = Arc::new(ReplicationMediator::new(
            client.clone(),
            iors.clone(),
            ReplicationStrategy::Failover,
        ));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator.clone());
        // Write through the first replica only (failover => only first).
        stub.invoke("add", &[Any::LongLong(42)]).unwrap();

        // A new replica joins and is initialized from a live member.
        let new_orb = Orb::start(&net, "replica-new");
        let new_ior = new_orb.activate_with_tags("ctr", Counter::boxed(99), &["Replication"]);
        let detector = FailureDetector::new(client.clone(), Duration::from_millis(300));
        join_replica(&mediator, &detector, new_ior.clone()).unwrap();
        assert_eq!(mediator.replicas().len(), 3);
        assert_eq!(client.invoke(&new_ior, "get", &[]).unwrap(), Any::LongLong(42));

        // Crash one; eviction shrinks the group.
        net.crash(orbs[1].node());
        assert_eq!(mediator.evict_dead(&detector), 1);
        assert_eq!(mediator.replicas().len(), 2);
        for o in &orbs {
            o.shutdown();
        }
        new_orb.shutdown();
        client.shutdown();
    }

    #[test]
    fn strategy_degrades_at_runtime() {
        let net = Network::new(1);
        let (orbs, iors) = deploy_replicas(&net, 3, "ctr", |i| Counter::boxed(i as i64));
        let client = fast_client(&net);
        let mediator = Arc::new(ReplicationMediator::new(
            client.clone(),
            iors.clone(),
            ReplicationStrategy::MajorityVote,
        ));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator.clone());
        // Divergent replies: quorum voting cannot answer "whoami".
        assert!(stub.invoke("whoami", &[]).is_err());
        assert_eq!(mediator.qos_op("strategy", &[]).unwrap(), Any::Str("majority_vote".into()));
        // Degrade to primary-only failover: the first replica answers.
        mediator.set_strategy(ReplicationStrategy::Failover);
        assert_eq!(mediator.strategy(), ReplicationStrategy::Failover);
        assert_eq!(stub.invoke("whoami", &[]).unwrap(), Any::LongLong(0));
        assert_eq!(mediator.qos_op("strategy", &[]).unwrap(), Any::Str("failover".into()));
        for o in &orbs {
            o.shutdown();
        }
        client.shutdown();
    }

    #[test]
    fn qos_impl_operations() {
        let qi = ReplicationQosImpl::new();
        let servant = Counter { value: Mutex::new(7), id: 0 };
        assert_eq!(qi.qos_op("export_state", &[], &servant).unwrap(), Any::LongLong(7));
        qi.qos_op("import_state", &[Any::LongLong(3)], &servant).unwrap();
        assert_eq!(*servant.value.lock(), 3);
        assert_eq!(qi.qos_op("replica_role", &[], &servant).unwrap(), Any::Str("follower".into()));
        qi.qos_op("set_replica_role", &[Any::from("primary")], &servant).unwrap();
        assert_eq!(qi.qos_op("replica_role", &[], &servant).unwrap(), Any::Str("primary".into()));
        assert!(qi.qos_op("nope", &[], &servant).is_err());
        assert!(qi.qos_op("import_state", &[], &servant).is_err());
    }

    #[test]
    fn mediator_qos_ops() {
        let net = Network::new(1);
        let client = fast_client(&net);
        let m = ReplicationMediator::new(client.clone(), vec![], ReplicationStrategy::Failover);
        assert_eq!(m.qos_op("replica_count", &[]).unwrap(), Any::ULong(0));
        let stats = m.qos_op("stats", &[]).unwrap();
        assert_eq!(stats.field("votes"), Some(&Any::ULongLong(0)));
        assert!(m.qos_op("x", &[]).is_err());
        client.shutdown();
    }

    #[test]
    fn empty_group_is_a_qos_violation() {
        let net = Network::new(1);
        let client = fast_client(&net);
        for strategy in [ReplicationStrategy::Failover, ReplicationStrategy::MajorityVote] {
            let m = ReplicationMediator::new(client.clone(), vec![], strategy);
            let stub = ClientStub::new(
                client.clone(),
                Ior::new("IDL:X:1.0", client.node(), "ghost"),
            );
            stub.set_mediator(Arc::new(m));
            assert!(matches!(stub.invoke("get", &[]), Err(OrbError::QosViolation(_))));
        }
        client.shutdown();
    }
}
