//! Privacy through encryption.
//!
//! The paper's privacy-category characteristic: requests and replies are
//! encrypted on the wire, with "on the fly change of encryption keys" as
//! the canonical QoS-to-QoS communication example (§3.2). The cipher is
//! a from-scratch xorshift-keystream stream cipher with a per-message
//! nonce and an integrity checksum.
//!
//! **This cipher is a simulation artifact, not cryptography.** It
//! exercises the exact code path (transform on send, inverse on receive,
//! key agreement over the middleware) with realistic per-byte cost; do
//! not use it to protect anything.

use orb::sync::{LockRank, OrderedRwLock};
use netsim::NodeId;
use orb::qos_binding::{Outbound, QosModule};
use orb::{Any, OrbError};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

/// The module name encryption binds under.
pub const ENCRYPTION_MODULE: &str = "encryption";

/// Wire magic of encrypted frames.
pub const MAGIC: &[u8; 4] = b"MENC";

fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A keystream generator seeded from key and nonce.
#[derive(Debug, Clone)]
pub struct KeyStream {
    state: u64,
}

impl KeyStream {
    /// A stream for `key`/`nonce`.
    pub fn new(key: u64, nonce: u64) -> KeyStream {
        // Mix key and nonce; avoid the all-zero fixed point.
        let mixed = key ^ nonce.rotate_left(32) ^ 0x9E37_79B9_7F4A_7C15;
        KeyStream { state: if mixed == 0 { 1 } else { mixed } }
    }

    /// XOR `data` in place with the keystream.
    pub fn apply(&mut self, data: &mut [u8]) {
        let mut chunk = [0u8; 8];
        for block in data.chunks_mut(8) {
            self.state = xorshift64(self.state);
            chunk.copy_from_slice(&self.state.to_le_bytes());
            for (b, k) in block.iter_mut().zip(chunk.iter()) {
                *b ^= k;
            }
        }
    }
}

/// FNV-1a checksum, the integrity tag of encrypted frames.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Encrypt `plain` under `key` with the given `nonce`.
///
/// Frame: `MAGIC | nonce(8) | checksum-of-plain(8) | ciphertext`.
pub fn seal(key: u64, nonce: u64, plain: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plain.len() + 20);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(&checksum(plain).to_le_bytes());
    let mut body = plain.to_vec();
    KeyStream::new(key, nonce).apply(&mut body);
    out.extend_from_slice(&body);
    out
}

/// Decrypt a frame produced by [`seal`].
///
/// # Errors
///
/// Returns a description on bad magic, truncation or checksum mismatch
/// (wrong key or tampering).
pub fn open(key: u64, frame: &[u8]) -> Result<Vec<u8>, String> {
    let body = frame.strip_prefix(MAGIC.as_slice()).ok_or("missing MENC magic")?;
    if body.len() < 16 {
        return Err("truncated encrypted frame".to_string());
    }
    let nonce = u64::from_le_bytes(body[0..8].try_into().expect("sliced"));
    let want = u64::from_le_bytes(body[8..16].try_into().expect("sliced"));
    let mut plain = body[16..].to_vec();
    KeyStream::new(key, nonce).apply(&mut plain);
    if checksum(&plain) != want {
        return Err("checksum mismatch (wrong key or tampered frame)".to_string());
    }
    Ok(plain)
}

/// Toy Diffie-Hellman-style key agreement over `u64` (modexp modulo a
/// 61-bit Mersenne prime). Same caveat as the cipher: shape, not
/// security.
pub mod keyex {
    /// The group modulus (2^61 - 1).
    pub const P: u128 = (1 << 61) - 1;
    /// The generator.
    pub const G: u128 = 5;

    fn modpow(mut base: u128, mut exp: u64, modulus: u128) -> u128 {
        let mut acc: u128 = 1;
        base %= modulus;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * base % modulus;
            }
            base = base * base % modulus;
            exp >>= 1;
        }
        acc
    }

    /// Public half for a secret.
    pub fn public(secret: u64) -> u64 {
        modpow(G, secret, P) as u64
    }

    /// Shared key from our secret and the peer's public half.
    pub fn shared(secret: u64, peer_public: u64) -> u64 {
        modpow(peer_public as u128, secret, P) as u64
    }
}

/// Transport-level encryption QoS module.
///
/// Dynamic interface: `rekey(key: ulonglong)` (install a new key — the
/// QoS-to-QoS rekeying path), `key_id()` → checksum of the current key,
/// `frames()` → frames processed.
pub struct EncryptionModule {
    key: OrderedRwLock<u64>,
    nonce: AtomicU64,
    frames: AtomicU64,
}

impl EncryptionModule {
    /// A module using `key` until rekeyed.
    pub fn new(key: u64) -> EncryptionModule {
        EncryptionModule {
            key: OrderedRwLock::new(LockRank::QosMechConfig, key),
            nonce: AtomicU64::new(1),
            frames: AtomicU64::new(0),
        }
    }

    /// Install a new key (affects subsequent frames only).
    pub fn rekey(&self, key: u64) {
        *self.key.write() = key;
    }

    /// Frames processed (both directions).
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }
}

impl QosModule for EncryptionModule {
    fn name(&self) -> &str {
        ENCRYPTION_MODULE
    }

    fn command(&self, op: &str, args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "rekey" => {
                let key = args
                    .first()
                    .and_then(Any::as_i64)
                    .map(|v| v as u64)
                    .or_else(|| match args.first() {
                        Some(Any::ULongLong(v)) => Some(*v),
                        _ => None,
                    })
                    .ok_or_else(|| OrbError::BadParam("rekey(key)".to_string()))?;
                self.rekey(key);
                Ok(Any::Void)
            }
            "key_id" => Ok(Any::ULongLong(checksum(&self.key.read().to_le_bytes()))),
            "frames" => Ok(Any::ULongLong(self.frames())),
            other => Err(OrbError::BadOperation(format!("encryption command {other}"))),
        }
    }

    fn outbound(&self, dst: NodeId, bytes: Vec<u8>) -> Result<Outbound, OrbError> {
        self.frames.fetch_add(1, Ordering::Relaxed);
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        Ok(vec![(dst, seal(*self.key.read(), nonce, &bytes))])
    }

    fn inbound<'a>(
        &self,
        _src: NodeId,
        bytes: &'a [u8],
    ) -> Result<Option<Cow<'a, [u8]>>, OrbError> {
        self.frames.fetch_add(1, Ordering::Relaxed);
        open(*self.key.read(), bytes)
            .map(|v| Some(Cow::Owned(v)))
            .map_err(|e| OrbError::NoPermission(format!("decryption failed: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        for data in [&b""[..], b"x", b"hello world", &[0u8; 4096]] {
            let frame = seal(42, 7, data);
            assert_eq!(open(42, &frame).unwrap(), data);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext_and_varies_with_nonce() {
        let frame1 = seal(42, 1, b"secret message!!");
        let frame2 = seal(42, 2, b"secret message!!");
        assert_ne!(&frame1[20..], b"secret message!!");
        assert_ne!(frame1[20..], frame2[20..]);
    }

    #[test]
    fn wrong_key_fails_checksum() {
        let frame = seal(42, 7, b"secret");
        assert!(open(43, &frame).is_err());
    }

    #[test]
    fn tampering_detected() {
        let mut frame = seal(42, 7, b"secret money transfer");
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(open(42, &frame).is_err());
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(open(42, b"junk").is_err());
        assert!(open(42, b"MENC\x01\x02").is_err());
    }

    #[test]
    fn key_exchange_agrees() {
        let (a, b) = (123_456_789u64, 987_654_321u64);
        let shared_a = keyex::shared(a, keyex::public(b));
        let shared_b = keyex::shared(b, keyex::public(a));
        assert_eq!(shared_a, shared_b);
        assert_ne!(shared_a, 0);
        // Different secrets agree on different keys.
        let other = keyex::shared(a, keyex::public(b + 1));
        assert_ne!(shared_a, other);
    }

    #[test]
    fn module_roundtrip_and_rekey() {
        let tx = EncryptionModule::new(5);
        let rx = EncryptionModule::new(5);
        let out = tx.outbound(NodeId(1), b"payload".to_vec()).unwrap();
        assert_eq!(rx.inbound(NodeId(0), &out[0].1).unwrap().unwrap(), &b"payload"[..]);
        // Rekey only one side: traffic fails until the other side follows.
        tx.rekey(6);
        let out = tx.outbound(NodeId(1), b"payload".to_vec()).unwrap();
        assert!(rx.inbound(NodeId(0), &out[0].1).is_err());
        rx.command("rekey", &[Any::ULongLong(6)]).unwrap();
        let out = tx.outbound(NodeId(1), b"payload".to_vec()).unwrap();
        assert_eq!(rx.inbound(NodeId(0), &out[0].1).unwrap().unwrap(), &b"payload"[..]);
        assert!(tx.frames() >= 3);
    }

    #[test]
    fn module_commands() {
        let m = EncryptionModule::new(5);
        let id1 = m.command("key_id", &[]).unwrap();
        m.command("rekey", &[Any::ULongLong(9)]).unwrap();
        let id2 = m.command("key_id", &[]).unwrap();
        assert_ne!(id1, id2);
        assert!(m.command("rekey", &[Any::from("nope")]).is_err());
        assert!(m.command("sign", &[]).is_err());
    }

    #[test]
    fn keystream_is_deterministic_per_key_nonce() {
        let mut a = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut b = a;
        KeyStream::new(7, 9).apply(&mut a);
        KeyStream::new(7, 9).apply(&mut b);
        assert_eq!(a, b);
        let mut c = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        KeyStream::new(7, 10).apply(&mut c);
        assert_ne!(a, c);
    }
}
