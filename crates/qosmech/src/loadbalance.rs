//! Performance through load balancing.
//!
//! The paper's performance-category application-layer mechanism: the
//! client-side mediator spreads invocations over a set of equivalent
//! servers. Three strategies are provided so experiment E5 can compare
//! them; the server-side QoS implementation reports its current load
//! through QoS operations (management responsibility).

use orb::sync::{LockRank, OrderedMutex, OrderedRwLock};
use netsim::NodeId;
use orb::{Any, Ior, Orb, OrbError, Servant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;
use weaver::{Call, Mediator, Next, QosImplementation};

/// Characteristic name, matching [`crate::specs::QOS_SPECS`].
pub const LOAD_BALANCING_CHARACTERISTIC: &str = "LoadBalancing";

/// Server-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Cycle through servers in order.
    RoundRobin,
    /// Pick uniformly at random (seeded, deterministic).
    Random,
    /// Pick the server with the lowest smoothed response time.
    LeastLoaded,
}

struct ServerSlot {
    ior: Ior,
    /// Exponentially weighted moving average of response time (µs).
    ewma_us: f64,
    /// Requests routed to this server.
    routed: u64,
}

/// The client-side load-balancing mediator.
pub struct LoadBalancingMediator {
    servers: OrderedRwLock<Vec<ServerSlot>>,
    strategy: Strategy,
    cursor: AtomicU64,
    rng: OrderedMutex<StdRng>,
}

impl LoadBalancingMediator {
    /// A mediator over equivalent `servers` using `strategy`. `seed`
    /// makes the [`Strategy::Random`] choice reproducible.
    pub fn new(servers: Vec<Ior>, strategy: Strategy, seed: u64) -> LoadBalancingMediator {
        LoadBalancingMediator {
            servers: OrderedRwLock::new(
                LockRank::QosMechConfig,
                servers
                    .into_iter()
                    .map(|ior| ServerSlot { ior, ewma_us: 0.0, routed: 0 })
                    .collect(),
            ),
            strategy,
            cursor: AtomicU64::new(0),
            rng: OrderedMutex::new(LockRank::QosMechState, StdRng::seed_from_u64(seed)),
        }
    }

    /// Requests routed per server, in server order.
    pub fn routed(&self) -> Vec<u64> {
        self.servers.read().iter().map(|s| s.routed).collect()
    }

    /// Smoothed response times (µs) per server, in server order.
    pub fn ewma_us(&self) -> Vec<f64> {
        self.servers.read().iter().map(|s| s.ewma_us).collect()
    }

    fn pick(&self) -> Result<usize, OrbError> {
        let servers = self.servers.read();
        if servers.is_empty() {
            return Err(OrbError::QosViolation("server set is empty".to_string()));
        }
        Ok(match self.strategy {
            Strategy::RoundRobin => {
                (self.cursor.fetch_add(1, Ordering::Relaxed) % servers.len() as u64) as usize
            }
            Strategy::Random => self.rng.lock().gen_range(0..servers.len()),
            Strategy::LeastLoaded => {
                // Unprobed servers (ewma 0) come first; among servers
                // within 50% of the best estimate, rotate round-robin so
                // equally fast servers share the load instead of the
                // minimum capturing everything (the band absorbs
                // scheduling jitter in the response-time samples).
                if let Some(unprobed) = servers.iter().position(|s| s.ewma_us == 0.0) {
                    unprobed
                } else {
                    let turn = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
                    // Every 8th pick explores round-robin over *all*
                    // servers, so a stale estimate (one unlucky sample)
                    // cannot permanently exclude a server.
                    if turn % 8 == 7 {
                        (turn / 8) % servers.len()
                    } else {
                        let best = servers
                            .iter()
                            .map(|s| s.ewma_us)
                            .fold(f64::INFINITY, f64::min);
                        let candidates: Vec<usize> = servers
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.ewma_us <= best * 1.5)
                            .map(|(i, _)| i)
                            .collect();
                        candidates[turn % candidates.len()]
                    }
                }
            }
        })
    }
}

impl Mediator for LoadBalancingMediator {
    fn characteristic(&self) -> &str {
        LOAD_BALANCING_CHARACTERISTIC
    }

    fn around(&self, mut call: Call, next: Next<'_>) -> Result<Any, OrbError> {
        let index = self.pick()?;
        call.target = self.servers.read()[index].ior.clone();
        let start = Instant::now();
        let result = next(call);
        let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        {
            let mut servers = self.servers.write();
            if let Some(slot) = servers.get_mut(index) {
                slot.routed += 1;
                // Penalize failures so LeastLoaded steers away from them.
                let sample = if result.is_ok() { elapsed_us } else { elapsed_us * 10.0 };
                slot.ewma_us =
                    if slot.ewma_us == 0.0 { sample } else { 0.8 * slot.ewma_us + 0.2 * sample };
            }
        }
        result
    }

    fn qos_op(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
        match op {
            "server_count" => Ok(Any::ULong(self.servers.read().len() as u32)),
            "routed" => Ok(Any::Sequence(
                self.routed().into_iter().map(Any::ULongLong).collect(),
            )),
            other => Err(OrbError::BadOperation(format!("load balancing op {other}"))),
        }
    }
}

/// Server-side QoS implementation: counts in-flight and served requests,
/// exposing them as QoS operations (`load`, `served`).
#[derive(Debug, Default)]
pub struct LoadReportingQosImpl {
    in_flight: AtomicI64,
    served: AtomicU64,
}

impl LoadReportingQosImpl {
    /// A fresh, idle reporter.
    pub fn new() -> LoadReportingQosImpl {
        LoadReportingQosImpl::default()
    }

    /// Requests currently being processed.
    pub fn load(&self) -> i64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Requests completed so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

impl QosImplementation for LoadReportingQosImpl {
    fn characteristic(&self) -> &str {
        LOAD_BALANCING_CHARACTERISTIC
    }

    fn prolog(&self, _op: &str, _args: &[Any]) -> Result<(), OrbError> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn epilog(&self, _op: &str, _args: &[Any], _result: &mut Result<Any, OrbError>) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    fn qos_op(&self, op: &str, _args: &[Any], _server: &dyn Servant) -> Result<Any, OrbError> {
        match op {
            "load" => Ok(Any::LongLong(self.load())),
            "served" => Ok(Any::ULongLong(self.served())),
            other => Err(OrbError::BadOperation(format!("load reporting op {other}"))),
        }
    }
}

/// Deploy `n` equivalent servers via `factory` on fresh ORBs. Returns
/// `(orbs, iors)`; all servers share the object key `key`.
pub fn deploy_servers<F>(
    net: &netsim::Network,
    n: usize,
    key: &str,
    factory: F,
) -> (Vec<Orb>, Vec<Ior>)
where
    F: Fn(usize) -> Box<dyn Servant>,
{
    let mut orbs = Vec::with_capacity(n);
    let mut iors = Vec::with_capacity(n);
    for i in 0..n {
        let orb = Orb::start(net, &format!("server-{i}"));
        let ior = orb.activate_with_tags(key, factory(i), &[LOAD_BALANCING_CHARACTERISTIC]);
        orbs.push(orb);
        iors.push(ior);
    }
    (orbs, iors)
}

/// Summarize per-server routing counts as fractions (for experiment E5).
pub fn distribution(routed: &[u64]) -> HashMap<usize, f64> {
    let total: u64 = routed.iter().sum();
    routed
        .iter()
        .enumerate()
        .map(|(i, &n)| (i, if total == 0 { 0.0 } else { n as f64 / total as f64 }))
        .collect()
}

/// Identify which server node actually answered (diagnostics in tests).
pub fn answered_by(replies: &[(NodeId, Result<Any, OrbError>)]) -> Vec<NodeId> {
    replies.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use std::sync::Arc;
    use weaver::ClientStub;

    struct Sleeper {
        id: i64,
        delay_ms: u64,
    }
    impl Servant for Sleeper {
        fn interface_id(&self) -> &str {
            "IDL:Sleeper:1.0"
        }
        fn dispatch(&self, op: &str, _args: &[Any]) -> Result<Any, OrbError> {
            match op {
                "work" => {
                    if self.delay_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
                    }
                    Ok(Any::LongLong(self.id))
                }
                _ => Err(OrbError::BadOperation(op.to_string())),
            }
        }
    }

    fn run(strategy: Strategy, calls: usize, delays: &[u64]) -> (Vec<u64>, Vec<i64>) {
        let net = Network::new(7);
        let delays = delays.to_vec();
        let (orbs, iors) = deploy_servers(&net, delays.len(), "w", |i| {
            Box::new(Sleeper { id: i as i64, delay_ms: delays[i] })
        });
        let client = Orb::start(&net, "client");
        let mediator = Arc::new(LoadBalancingMediator::new(iors.clone(), strategy, 99));
        let stub = ClientStub::new(client.clone(), iors[0].clone());
        stub.set_mediator(mediator.clone());
        let mut answers = Vec::new();
        for _ in 0..calls {
            answers.push(stub.invoke("work", &[]).unwrap().as_i64().unwrap());
        }
        let routed = mediator.routed();
        for o in orbs {
            o.shutdown();
        }
        client.shutdown();
        (routed, answers)
    }

    #[test]
    fn round_robin_is_uniform() {
        let (routed, answers) = run(Strategy::RoundRobin, 12, &[0, 0, 0]);
        assert_eq!(routed, vec![4, 4, 4]);
        // Answers cycle 0,1,2,0,1,2,...
        assert_eq!(&answers[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_covers_all_servers() {
        let (routed, _) = run(Strategy::Random, 60, &[0, 0, 0]);
        assert_eq!(routed.iter().sum::<u64>(), 60);
        assert!(routed.iter().all(|&n| n > 5), "skewed: {routed:?}");
    }

    #[test]
    fn least_loaded_avoids_slow_server() {
        // Server 2 is 30x slower; LeastLoaded should route most traffic
        // to the fast ones after the initial probes.
        let (routed, _) = run(Strategy::LeastLoaded, 30, &[1, 1, 30]);
        let slow = routed[2];
        assert!(slow <= 5, "slow server got {slow} of 30: {routed:?}");
    }

    #[test]
    fn least_loaded_spreads_over_uniform_servers() {
        let (routed, _) = run(Strategy::LeastLoaded, 60, &[1, 1, 1, 1]);
        assert_eq!(routed.iter().sum::<u64>(), 60);
        // Scheduling jitter may briefly exclude a server from the
        // near-best band, so require participation, not perfect shares.
        assert!(routed.iter().all(|&n| n >= 3), "uniform servers must share: {routed:?}");
    }

    #[test]
    fn empty_server_set_is_qos_violation() {
        let m = LoadBalancingMediator::new(vec![], Strategy::RoundRobin, 0);
        assert!(m.pick().is_err());
    }

    #[test]
    fn load_reporting_prolog_epilog() {
        let qi = LoadReportingQosImpl::new();
        struct Nothing;
        impl Servant for Nothing {
            fn interface_id(&self) -> &str {
                "IDL:N:1.0"
            }
            fn dispatch(&self, op: &str, _a: &[Any]) -> Result<Any, OrbError> {
                Err(OrbError::BadOperation(op.to_string()))
            }
        }
        qi.prolog("work", &[]).unwrap();
        assert_eq!(qi.load(), 1);
        assert_eq!(qi.qos_op("load", &[], &Nothing).unwrap(), Any::LongLong(1));
        let mut result = Ok(Any::Void);
        qi.epilog("work", &[], &mut result);
        assert_eq!(qi.load(), 0);
        assert_eq!(qi.served(), 1);
        assert_eq!(qi.qos_op("served", &[], &Nothing).unwrap(), Any::ULongLong(1));
        assert!(qi.qos_op("frob", &[], &Nothing).is_err());
    }

    #[test]
    fn mediator_qos_ops() {
        let m = LoadBalancingMediator::new(vec![], Strategy::RoundRobin, 0);
        assert_eq!(m.qos_op("server_count", &[]).unwrap(), Any::ULong(0));
        assert_eq!(m.qos_op("routed", &[]).unwrap(), Any::Sequence(vec![]));
        assert!(m.qos_op("x", &[]).is_err());
    }

    #[test]
    fn distribution_sums_to_one() {
        let d = distribution(&[10, 30, 60]);
        assert!((d[&0] - 0.1).abs() < 1e-9);
        assert!((d[&1] - 0.3).abs() < 1e-9);
        assert!((d[&2] - 0.6).abs() < 1e-9);
        assert!(distribution(&[0, 0]).values().all(|&v| v == 0.0));
    }
}
